#!/usr/bin/env bash
# Regenerates every committed artifact the CI guards compare against:
#
#   * tests/golden/*.json      — the report JSON schema snapshots
#                                (golden-freshness guard in the `test` job)
#   * BENCH_*.json             — the quick cost trajectories, the
#                                scenario-library load replay BENCH_load.json
#                                and its per-scenario telemetry snapshots
#                                BENCH_load_metrics.json
#                                (`expts --check-trend` in the `bench` job)
#
# Run this after any intentional change to the report schemas, to a
# pipeline's communication cost, or to the committed scenarios/*.json load
# library, then commit the result. Bump the report schema tags
# (BATCH_REPORT_SCHEMA / STREAM_REPORT_SCHEMA / bcc-bench/v1) if a schema
# change is not purely additive.
#
# BENCH_pipelines.json points also carry a `wall_ns` wall-clock field (the
# median of WALL_CLOCK_REPEATS deterministic repeats, see
# docs/PERFORMANCE.md). Those values are a fingerprint of the machine that
# ran this script — the trend check validates only their presence and
# shape, never their magnitude, so regenerating on a slower box is fine.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== regenerating tests/golden/*.json =="
UPDATE_GOLDEN=1 cargo test -q --test batch --test stream --test config golden

echo "== regenerating BENCH_*.json (quick trajectories + load scenarios) =="
cargo run -p bench --release --bin expts -- --quick-json

echo "== done; review and commit the diff =="
git --no-pager diff --stat -- tests/golden 'BENCH_*.json' || true
