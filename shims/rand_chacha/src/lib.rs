//! Offline stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate: a faithful implementation of the ChaCha8 stream cipher (Bernstein,
//! 2008) behind the [`rand::RngCore`] / [`rand::SeedableRng`] traits.
//!
//! The keystream follows RFC 7539 word layout (constants, 256-bit key, 64-bit
//! block counter, 64-bit stream id) with 8 rounds. Output is consumed as
//! little-endian 32-bit words of consecutive blocks, so every seed yields one
//! deterministic, platform-independent stream. See `shims/README.md` for why
//! this crate exists; it is *not* guaranteed to be bit-identical to the
//! upstream `rand_chacha` stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const WORDS_PER_BLOCK: usize = 16;

/// The ChaCha quarter round.
#[inline]
fn quarter_round(state: &mut [u32; WORDS_PER_BLOCK], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A deterministic random number generator backed by the ChaCha cipher with 8
/// rounds.
///
/// # Examples
///
/// ```
/// use rand::{Rng, SeedableRng};
/// use rand_chacha::ChaCha8Rng;
///
/// let mut a = ChaCha8Rng::seed_from_u64(42);
/// let mut b = ChaCha8Rng::seed_from_u64(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, key, block counter, stream id.
    input: [u32; WORDS_PER_BLOCK],
    /// Keystream of the current block.
    buffer: [u32; WORDS_PER_BLOCK],
    /// Next unconsumed word of `buffer`; `WORDS_PER_BLOCK` forces a refill.
    index: usize,
}

impl ChaCha8Rng {
    const ROUNDS: usize = 8;

    fn refill(&mut self) {
        let mut working = self.input;
        for _ in 0..Self::ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, inp)) in self.buffer.iter_mut().zip(working.iter().zip(&self.input)) {
            *out = w.wrapping_add(*inp);
        }
        // Advance the 64-bit block counter (words 12 and 13).
        let counter = (u64::from(self.input[13]) << 32 | u64::from(self.input[12])).wrapping_add(1);
        self.input[12] = counter as u32;
        self.input[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    /// The 64-bit word position within the keystream (consumed words).
    pub fn word_pos(&self) -> u128 {
        let counter = u64::from(self.input[13]) << 32 | u64::from(self.input[12]);
        // `counter` counts blocks already generated; subtract the unconsumed
        // remainder of the current buffer.
        (counter as u128) * WORDS_PER_BLOCK as u128 - (WORDS_PER_BLOCK - self.index) as u128
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut input = [0u32; WORDS_PER_BLOCK];
        // "expand 32-byte k"
        input[0] = 0x6170_7865;
        input[1] = 0x3320_646E;
        input[2] = 0x7962_2D32;
        input[3] = 0x6B20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            input[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Block counter (12, 13) and stream id (14, 15) start at zero.
        let mut rng = ChaCha8Rng {
            input,
            buffer: [0; WORDS_PER_BLOCK],
            index: WORDS_PER_BLOCK,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index == WORDS_PER_BLOCK {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32();
        let hi = self.next_u32();
        u64::from(hi) << 32 | u64::from(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn keystream_crosses_block_boundaries() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // 16 words per block; draw 40 words and check the position tracker.
        for _ in 0..40 {
            let _ = rng.next_u32();
        }
        assert_eq!(rng.word_pos(), 40);
    }

    #[test]
    fn uniformity_smoke_test() {
        // Mean of uniform [0,1) draws concentrates near 1/2.
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        // Bits of next_u32 are balanced.
        let ones: u32 = (0..1000).map(|_| rng.next_u32().count_ones()).sum();
        let frac = ones as f64 / (1000.0 * 32.0);
        assert!((frac - 0.5).abs() < 0.02, "bit fraction {frac}");
    }

    #[test]
    fn reference_quarter_round_vector() {
        // RFC 7539 §2.1.1 test vector.
        let mut state = [0u32; 16];
        state[0] = 0x11111111;
        state[1] = 0x01020304;
        state[2] = 0x9b8d6f43;
        state[3] = 0x01234567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a92f4);
        assert_eq!(state[1], 0xcb1cf8ce);
        assert_eq!(state[2], 0x4581472e);
        assert_eq!(state[3], 0x5881c4bb);
    }
}
