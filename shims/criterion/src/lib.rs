//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the subset of the criterion API the `bench` crate uses —
//! benchmark groups, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId` and the `criterion_group!` / `criterion_main!` macros — with
//! a simple mean-of-samples timer instead of criterion's statistical engine.
//! Each benchmark prints `group/id: <mean> per iteration over <n> samples`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting benchmark work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Measures one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times repeated executions of `body`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        black_box(body());
        self.total += start.elapsed();
        self.iterations += 1;
    }
}

/// The benchmark driver (a drastically simplified `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        run_benchmark("", &id.into(), sample_size, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_benchmark(&self.name, &id.into(), self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&self.name, &id.into(), self.sample_size, |b| f(b, input));
        self
    }

    /// Finishes the group (printing is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &BenchmarkId,
    sample_size: usize,
    mut f: F,
) {
    let mut bencher = Bencher::default();
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if bencher.iterations == 0 {
        println!("{label}: no iterations recorded");
        return;
    }
    let mean = bencher.total / bencher.iterations as u32;
    println!(
        "{label}: {mean:?} per iteration over {} samples",
        bencher.iterations
    );
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares a `main` that runs the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_render() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn groups_run_their_benchmarks() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        let mut runs = 0;
        group.sample_size(3);
        group.bench_function("count", |b| {
            runs += 1;
            b.iter(|| black_box(2 + 2));
        });
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(2);
        let mut seen = 0;
        group.bench_with_input(BenchmarkId::from_parameter(5), &5usize, |b, &n| {
            seen = n;
            b.iter(|| black_box(n * 2));
        });
        group.finish();
        assert_eq!(seen, 5);
    }
}
