//! Offline stand-in for the [`serde_json`](https://crates.io/crates/serde_json)
//! crate: JSON text for the shim `serde::Value` data model.
//!
//! Provides exactly the entry points the workspace uses — [`to_string`],
//! [`to_string_pretty`] and [`from_str`] — over a strict recursive-descent
//! parser and an escaping printer. Numbers are emitted so that a round trip
//! preserves `u64` exactly (no silent float conversion) and floats keep full
//! `f64` precision via the shortest-representation formatter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde::{Error, Number, Value};

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Returns [`Error`] when the value contains a non-finite float (JSON has no
/// representation for `NaN`/`±∞`).
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON text.
///
/// # Errors
///
/// Same conditions as [`to_string`].
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text and deserializes it into `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or when the parsed value does not have
/// the shape `T` expects.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_str(text)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Printer.
// ---------------------------------------------------------------------------

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(Number::UInt(v)) => out.push_str(&v.to_string()),
        Value::Number(Number::Int(v)) => out.push_str(&v.to_string()),
        Value::Number(Number::Float(v)) => {
            if !v.is_finite() {
                return Err(Error::custom(format!("cannot serialize {v} as JSON")));
            }
            let text = v.to_string();
            out.push_str(&text);
            // Keep a float marker so the round trip stays a float.
            if !text.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            if !fields.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_str(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::String(self.string()?)),
            b't' if self.consume_literal("true") => Ok(Value::Bool(true)),
            b'f' if self.consume_literal("false") => Ok(Value::Bool(false)),
            b'n' if self.consume_literal("null") => Ok(Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` in object, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` in array, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error::custom("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let escape = *rest
                        .get(1)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 2;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 character.
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("non-empty string");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(|v| Value::Number(Number::Float(v)))
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(|v| Value::Number(Number::Int(v)))
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(|v| Value::Number(Number::UInt(v)))
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        // Whole floats keep a float marker.
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line\nbreak \"quoted\" back\\slash\ttab".to_string();
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![(String::from("a"), 1u64), (String::from("b"), 2)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, r#"[["a",1],["b",2]]"#);
        assert_eq!(from_str::<Vec<(String, u64)>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_indented_and_parses_back() {
        let value = Value::Object(vec![
            ("x".to_string(), Value::Number(Number::UInt(1))),
            (
                "y".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let pretty = {
            let mut out = String::new();
            super::write_value(&mut out, &value, Some(2), 0).unwrap();
            out
        };
        assert!(pretty.contains("\n  \"x\": 1"));
        assert_eq!(parse_value_str(&pretty).unwrap(), value);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("42 junk").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
