//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in environments without access to crates.io, so the
//! random-number API the algorithms rely on is provided by this small crate
//! with the same package name and the same call-site surface:
//!
//! * [`RngCore`] — raw 32/64-bit and byte-filling generator interface.
//! * [`SeedableRng`] — seed construction, including the SplitMix64-based
//!   [`SeedableRng::seed_from_u64`] expansion.
//! * [`Rng`] — the ergonomic extension trait (`gen`, `gen_range`, `gen_bool`),
//!   blanket-implemented for every `RngCore`.
//!
//! Streams are deterministic and high quality (the companion `rand_chacha`
//! shim implements the real ChaCha8 stream cipher) but are **not** guaranteed
//! to be bit-identical to the upstream `rand` crate. All in-repo tests assume
//! only determinism and statistical quality, never specific upstream streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: uniformly random words and bytes.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it into a full seed with
    /// the SplitMix64 generator (the same construction upstream `rand_core`
    /// uses, so low-entropy seeds still produce well-mixed states).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut splitmix = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            splitmix = splitmix.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = splitmix;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from a generator's raw output.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64, usize => next_u64);
impl_standard_uint!(i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64, isize => next_u64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 31) == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a uniform value can be drawn from (`a..b` and `a..=b`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-sampled uniform value in `[0, width)`, bias-free.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    debug_assert!(width > 0);
    if width.is_power_of_two() {
        return rng.next_u64() & (width - 1);
    }
    let zone = u64::MAX - (u64::MAX % width);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % width;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                let offset = uniform_below(rng, width);
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample from empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return <$t as Standard>::sample(rng);
                }
                let offset = uniform_below(rng, width as u64);
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Ergonomic sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic xorshift generator for trait tests.
    struct XorShift(u64);

    impl RngCore for XorShift {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn unit_f64_is_in_unit_interval() {
        let mut rng = XorShift(0x1234_5678_9ABC_DEF0);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_cover_and_respect_bounds() {
        let mut rng = XorShift(42);
        let mut seen = [false; 6];
        for _ in 0..500 {
            let v = rng.gen_range(2usize..8);
            assert!((2..8).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 2..8 appear");
        for _ in 0..500 {
            let v = rng.gen_range(1i64..=3);
            assert!((1..=3).contains(&v));
            let f = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = XorShift(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = XorShift(1);
        let _ = rng.gen_range(5usize..5);
    }
}
