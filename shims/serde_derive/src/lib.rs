//! Offline stand-in for the [`serde_derive`](https://crates.io/crates/serde_derive)
//! proc-macro crate, written directly against `proc_macro` (the real crate's
//! dependencies `syn`/`quote` are unavailable without network access).
//!
//! Supported input shapes — which cover every `#[derive(Serialize,
//! Deserialize)]` in this workspace:
//!
//! * non-generic **structs with named fields** → serialized as an object;
//! * non-generic **enums with unit and struct variants** → unit variants
//!   serialize as the variant-name string, struct variants as a single-key
//!   object `{"Variant": {fields...}}` (serde's external tagging).
//!
//! Tuple structs/variants and generics produce a compile error pointing here,
//! so a future change that needs them fails loudly instead of misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

/// Derives the shim `serde::Serialize` (conversion into `serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives the shim `serde::Deserialize` (conversion from `serde::Value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let generated = match parse_input(input) {
        Ok(Input::Struct(parsed)) => match mode {
            Mode::Serialize => struct_serialize(&parsed),
            Mode::Deserialize => struct_deserialize(&parsed),
        },
        Ok(Input::Enum(parsed)) => match mode {
            Mode::Serialize => enum_serialize(&parsed),
            Mode::Deserialize => enum_deserialize(&parsed),
        },
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    generated.parse().expect("generated code parses")
}

// ---------------------------------------------------------------------------
// Code generation.
// ---------------------------------------------------------------------------

fn object_literal(fields: &[String], access_prefix: &str) -> String {
    let pushes: String = fields
        .iter()
        .map(|f| {
            format!(
                "fields.push(({f:?}.to_string(), serde::Serialize::to_value({access_prefix}{f})));\n"
            )
        })
        .collect();
    format!(
        "{{ let mut fields: Vec<(String, serde::Value)> = Vec::new();\n\
            {pushes}\
            serde::Value::Object(fields) }}"
    )
}

fn struct_serialize(parsed: &NamedStruct) -> String {
    let name = &parsed.name;
    let body = object_literal(&parsed.fields, "&self.");
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
}

fn struct_deserialize(parsed: &NamedStruct) -> String {
    let name = &parsed.name;
    let reads: String = parsed
        .fields
        .iter()
        .map(|f| format!("{f}: serde::__field(value, {f:?})?,\n"))
        .collect();
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {{\n\
                 if value.as_object().is_none() {{\n\
                     return Err(serde::Error::custom(\
                         format!(\"expected object for struct `{name}`\")));\n\
                 }}\n\
                 Ok({name} {{ {reads} }})\n\
             }}\n\
         }}"
    )
}

fn enum_serialize(parsed: &Enum) -> String {
    let name = &parsed.name;
    let arms: String = parsed
        .variants
        .iter()
        .map(|variant| {
            let v = &variant.name;
            match &variant.fields {
                None => format!("{name}::{v} => serde::Value::String({v:?}.to_string()),\n"),
                Some(fields) => {
                    let bindings = fields.join(", ");
                    let inner = object_literal(fields, "");
                    format!(
                        "{name}::{v} {{ {bindings} }} => serde::Value::Object(vec![\
                             ({v:?}.to_string(), {inner})]),\n"
                    )
                }
            }
        })
        .collect();
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}"
    )
}

fn enum_deserialize(parsed: &Enum) -> String {
    let name = &parsed.name;
    let unit_arms: String = parsed
        .variants
        .iter()
        .filter(|v| v.fields.is_none())
        .map(|v| format!("{0:?} => return Ok({name}::{0}),\n", v.name))
        .collect();
    let struct_arms: String = parsed
        .variants
        .iter()
        .filter_map(|variant| {
            let fields = variant.fields.as_ref()?;
            let v = &variant.name;
            let reads: String = fields
                .iter()
                .map(|f| format!("{f}: serde::__field(inner, {f:?})?,\n"))
                .collect();
            Some(format!("{v:?} => return Ok({name}::{v} {{ {reads} }}),\n"))
        })
        .collect();
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {{\n\
                 if let serde::Value::String(tag) = value {{\n\
                     match tag.as_str() {{\n\
                         {unit_arms}\
                         other => return Err(serde::Error::custom(\
                             format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
                     }}\n\
                 }}\n\
                 if let Some(entries) = value.as_object() {{\n\
                     if entries.len() == 1 {{\n\
                         let (tag, inner) = &entries[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                             {struct_arms}\
                             other => return Err(serde::Error::custom(\
                                 format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
                         }}\n\
                     }}\n\
                 }}\n\
                 Err(serde::Error::custom(\
                     format!(\"expected enum `{name}` as a string or single-key object\")))\n\
             }}\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

enum Input {
    Struct(NamedStruct),
    Enum(Enum),
}

struct NamedStruct {
    name: String,
    fields: Vec<String>,
}

struct Enum {
    name: String,
    variants: Vec<Variant>,
}

struct Variant {
    name: String,
    /// `None` for unit variants, field names for struct variants.
    fields: Option<Vec<String>>,
}

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Skips attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &mut Tokens) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) / pub(super)
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut tokens: Tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!(
                    "serde shim derive does not support generic type `{name}` \
                     (see shims/README.md)"
                ))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde shim derive does not support tuple struct `{name}` \
                     (see shims/README.md)"
                ))
            }
            Some(_) => continue,
            None => return Err(format!("type `{name}` has no body")),
        }
    };
    match kind.as_str() {
        "struct" => Ok(Input::Struct(NamedStruct {
            fields: parse_named_fields(&name, body.stream())?,
            name,
        })),
        "enum" => Ok(Input::Enum(Enum {
            variants: parse_variants(&name, body.stream())?,
            name,
        })),
        other => Err(format!(
            "serde shim derive supports only structs and enums, found `{other}`"
        )),
    }
}

/// Parses `field: Type, ...` from the body of a struct or struct variant.
fn parse_named_fields(owner: &str, stream: TokenStream) -> Result<Vec<String>, String> {
    let mut tokens: Tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let field = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => return Ok(fields),
            other => return Err(format!("expected field name in `{owner}`, found {other:?}")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{field}` of `{owner}` \
                     (tuple fields are unsupported, see shims/README.md), found {other:?}"
                ))
            }
        }
        fields.push(field);
        // Consume the type up to the next comma at angle-bracket depth 0.
        // Parenthesized/bracketed sub-trees arrive as single groups, so only
        // `<`/`>` need explicit depth tracking.
        let mut angle_depth = 0i32;
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
                None => return Ok(fields),
            }
        }
    }
}

/// Parses `Variant, Variant { field: Type, ... }, ...` from an enum body.
fn parse_variants(owner: &str, stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut tokens: Tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => return Ok(variants),
            other => {
                return Err(format!(
                    "expected variant name in enum `{owner}`, found {other:?}"
                ))
            }
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let stream = g.stream();
                tokens.next();
                Some(parse_named_fields(&format!("{owner}::{name}"), stream)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde shim derive does not support tuple variant `{owner}::{name}` \
                     (see shims/README.md)"
                ))
            }
            _ => None,
        };
        variants.push(Variant {
            name: name.clone(),
            fields,
        });
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "serde shim derive does not support explicit discriminants in `{owner}`"
                ))
            }
            Some(other) => {
                return Err(format!(
                    "unexpected token after variant `{owner}::{name}`: {other:?}"
                ))
            }
            None => return Ok(variants),
        }
    }
}
