//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! Supports the subset of the API the repository's property tests use:
//!
//! * [`Strategy`] — value generators with [`Strategy::prop_map`], implemented
//!   for integer ranges, [`any`] and tuples of strategies.
//! * [`proptest!`] — expands `#[test] fn name(x in strategy, ...) { ... }`
//!   items into `#[test]` functions that run the body over
//!   [`ProptestConfig::cases`] generated inputs.
//! * `prop_assert!` / `prop_assert_eq!` — assertion forms.
//!
//! Differences from upstream: **no shrinking** (a failing case reports the
//! assertion directly) and deterministic per-test seeding (derived from the
//! test function name), so failures reproduce across runs instead of flaking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestRng,
    };
}

/// The generator driving a property test (a deterministic ChaCha8 stream).
pub type TestRng = ChaCha8Rng;

/// Configuration of a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy generating any value of `T` (uniform over the whole domain).
pub struct Any<T>(PhantomData<T>);

/// Generates uniformly distributed values covering all of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value covering the whole domain of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Derives the deterministic seed of a named property test.
#[doc(hidden)]
pub fn __test_seed(name: &str) -> u64 {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Builds the deterministic generator of a named property test.
#[doc(hidden)]
pub fn __test_rng(name: &str) -> TestRng {
    rand::SeedableRng::seed_from_u64(__test_seed(name))
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)` item
/// becomes a `#[test]` that runs its body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        #[test]
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::__test_rng(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_and_any_generate_in_domain() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let _full: u64 = any::<u64>().generate(&mut rng);
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let strategy = (1usize..4, 10u64..20).prop_map(|(a, b)| a as u64 + b);
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!((11..23).contains(&v));
        }
    }

    #[test]
    fn test_seeds_differ_by_name() {
        assert_ne!(__test_seed("a"), __test_seed("b"));
        assert_eq!(__test_seed("a"), __test_seed("a"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_and_runs(x in 0usize..10, y in any::<u64>()) {
            prop_assert!(x < 10);
            prop_assert_eq!(y, y);
        }
    }
}
