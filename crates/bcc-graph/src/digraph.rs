//! Directed graphs with capacities and costs — the input of the minimum cost
//! maximum flow problem (Section 2.4 of the paper).

use serde::{Deserialize, Serialize};

/// A directed arc with an integral capacity and cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arc {
    /// Tail (the arc leaves this vertex).
    pub from: usize,
    /// Head (the arc enters this vertex).
    pub to: usize,
    /// Capacity `c_e ≥ 1`.
    pub capacity: i64,
    /// Cost `q_e` (may be negative in general min-cost-flow instances; the
    /// paper assumes `q ∈ Z`, bounded by `M` in magnitude).
    pub cost: i64,
}

/// A directed multigraph on vertices `0..n` with integral capacities and
/// costs.
///
/// # Examples
///
/// ```
/// use bcc_graph::DiGraph;
///
/// let mut g = DiGraph::new(3);
/// g.add_arc(0, 1, 4, 1);
/// g.add_arc(1, 2, 3, 2);
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.m(), 2);
/// assert_eq!(g.out_arcs(0).len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DiGraph {
    n: usize,
    arcs: Vec<Arc>,
    out: Vec<Vec<usize>>,
    into: Vec<Vec<usize>>,
}

impl DiGraph {
    /// Creates an empty directed graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        DiGraph {
            n,
            arcs: Vec::new(),
            out: vec![Vec::new(); n],
            into: vec![Vec::new(); n],
        }
    }

    /// Builds a directed graph from `(from, to, capacity, cost)` tuples.
    pub fn from_arcs(n: usize, arcs: impl IntoIterator<Item = (usize, usize, i64, i64)>) -> Self {
        let mut g = DiGraph::new(n);
        for (from, to, capacity, cost) in arcs {
            g.add_arc(from, to, capacity, cost);
        }
        g
    }

    /// Adds an arc and returns its index.
    ///
    /// # Panics
    ///
    /// Panics for self-loops, out-of-range endpoints, or non-positive
    /// capacities.
    pub fn add_arc(&mut self, from: usize, to: usize, capacity: i64, cost: i64) -> usize {
        assert!(from < self.n && to < self.n, "arc endpoint out of range");
        assert_ne!(from, to, "self-loops are not allowed");
        assert!(capacity > 0, "capacities must be positive, got {capacity}");
        let idx = self.arcs.len();
        self.arcs.push(Arc {
            from,
            to,
            capacity,
            cost,
        });
        self.out[from].push(idx);
        self.into[to].push(idx);
        idx
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of arcs.
    pub fn m(&self) -> usize {
        self.arcs.len()
    }

    /// The arc with index `a`.
    pub fn arc(&self, a: usize) -> Arc {
        self.arcs[a]
    }

    /// All arcs in insertion order.
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// Indices of arcs leaving `v`.
    pub fn out_arcs(&self, v: usize) -> &[usize] {
        &self.out[v]
    }

    /// Indices of arcs entering `v`.
    pub fn in_arcs(&self, v: usize) -> &[usize] {
        &self.into[v]
    }

    /// Largest capacity (`‖c‖_∞`), or 0 for an arcless graph.
    pub fn max_capacity(&self) -> i64 {
        self.arcs.iter().map(|a| a.capacity).max().unwrap_or(0)
    }

    /// Largest absolute cost (`‖q‖_∞`), or 0 for an arcless graph.
    pub fn max_cost(&self) -> i64 {
        self.arcs.iter().map(|a| a.cost.abs()).max().unwrap_or(0)
    }

    /// The bound `M ≥ max(‖c‖_∞, ‖q‖_∞)` used by Theorem 1.1, at least 1.
    pub fn magnitude_bound(&self) -> i64 {
        self.max_capacity().max(self.max_cost()).max(1)
    }
}

/// A minimum cost maximum flow instance: a directed graph together with
/// designated source and sink vertices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowInstance {
    /// The capacitated, cost-labelled directed graph.
    pub graph: DiGraph,
    /// Source vertex `s`.
    pub source: usize,
    /// Sink vertex `t`.
    pub sink: usize,
}

impl FlowInstance {
    /// Creates an instance.
    ///
    /// # Panics
    ///
    /// Panics if `source == sink` or either is out of range.
    pub fn new(graph: DiGraph, source: usize, sink: usize) -> Self {
        assert!(
            source < graph.n() && sink < graph.n(),
            "terminal out of range"
        );
        assert_ne!(source, sink, "source and sink must differ");
        FlowInstance {
            graph,
            source,
            sink,
        }
    }

    /// Checks whether `flow` (one value per arc) is a feasible `s`-`t` flow:
    /// capacity constraints, non-negativity and conservation at every vertex
    /// other than the terminals.
    pub fn is_feasible(&self, flow: &[f64], tolerance: f64) -> bool {
        if flow.len() != self.graph.m() {
            return false;
        }
        for (i, a) in self.graph.arcs().iter().enumerate() {
            if flow[i] < -tolerance || flow[i] > a.capacity as f64 + tolerance {
                return false;
            }
        }
        for v in 0..self.graph.n() {
            if v == self.source || v == self.sink {
                continue;
            }
            let net = self.net_outflow(flow, v);
            if net.abs() > tolerance {
                return false;
            }
        }
        true
    }

    /// Net outflow `Σ_out f − Σ_in f` at vertex `v`.
    pub fn net_outflow(&self, flow: &[f64], v: usize) -> f64 {
        let out: f64 = self.graph.out_arcs(v).iter().map(|&a| flow[a]).sum();
        let inn: f64 = self.graph.in_arcs(v).iter().map(|&a| flow[a]).sum();
        out - inn
    }

    /// The value of a flow (net outflow at the source).
    pub fn value(&self, flow: &[f64]) -> f64 {
        self.net_outflow(flow, self.source)
    }

    /// The cost `qᵀ f` of a flow.
    pub fn cost(&self, flow: &[f64]) -> f64 {
        self.graph
            .arcs()
            .iter()
            .zip(flow)
            .map(|(a, &f)| a.cost as f64 * f)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> FlowInstance {
        // 0 -> 1 -> 3 and 0 -> 2 -> 3.
        let g = DiGraph::from_arcs(4, [(0, 1, 2, 1), (1, 3, 2, 1), (0, 2, 3, 5), (2, 3, 3, 5)]);
        FlowInstance::new(g, 0, 3)
    }

    #[test]
    fn digraph_accessors() {
        let inst = diamond();
        let g = &inst.graph;
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.out_arcs(0), &[0, 2]);
        assert_eq!(g.in_arcs(3), &[1, 3]);
        assert_eq!(g.max_capacity(), 3);
        assert_eq!(g.max_cost(), 5);
        assert_eq!(g.magnitude_bound(), 5);
        assert_eq!(g.arc(0).to, 1);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        DiGraph::from_arcs(2, [(0, 1, 0, 1)]);
    }

    #[test]
    fn feasibility_checks_conservation_and_capacity() {
        let inst = diamond();
        let good = vec![2.0, 2.0, 3.0, 3.0];
        assert!(inst.is_feasible(&good, 1e-9));
        assert_eq!(inst.value(&good), 5.0);
        assert_eq!(inst.cost(&good), 2.0 + 2.0 + 15.0 + 15.0);

        let over_capacity = vec![3.0, 3.0, 0.0, 0.0];
        assert!(!inst.is_feasible(&over_capacity, 1e-9));

        let violates_conservation = vec![2.0, 1.0, 0.0, 0.0];
        assert!(!inst.is_feasible(&violates_conservation, 1e-9));

        let negative = vec![-1.0, -1.0, 0.0, 0.0];
        assert!(!inst.is_feasible(&negative, 1e-9));
    }

    #[test]
    fn empty_graph_bounds_default_to_one() {
        assert_eq!(DiGraph::new(3).magnitude_bound(), 1);
    }
}
