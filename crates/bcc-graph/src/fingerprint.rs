//! Deterministic graph fingerprints.
//!
//! A [`GraphFingerprint`] is a 128-bit digest of a [`Graph`]'s topology and
//! weights, designed as a cache key for preprocessing that depends only on
//! the graph (e.g. the sparsifier a Laplacian solver builds once and reuses
//! for every right-hand side). The digest is
//!
//! * **deterministic** — a pure function of the graph, stable across runs,
//!   platforms and processes (no `RandomState`);
//! * **edge-order independent** — the edge *multiset* is canonicalized
//!   (endpoints sorted within each edge, edges sorted by endpoints and weight
//!   bits) before hashing, so two graphs built by inserting the same edges in
//!   different orders collide on purpose;
//! * **weight exact** — weights are hashed by their IEEE-754 bit pattern, so
//!   any representable perturbation changes the fingerprint.
//!
//! Collisions between *distinct* graphs are possible in principle (the digest
//! is 128 bits) but are negligible for cache-keying purposes; the FNV-1a
//! construction below is not cryptographic and must not be used against
//! adversarial inputs.

use crate::graph::Graph;

/// A 128-bit digest identifying a graph up to edge order.
///
/// # Examples
///
/// ```
/// use bcc_graph::{fingerprint, Graph};
///
/// let a = Graph::from_edges(3, [(0, 1, 1.0), (1, 2, 2.0)]);
/// let b = Graph::from_edges(3, [(2, 1, 2.0), (0, 1, 1.0)]);
/// assert_eq!(fingerprint(&a), fingerprint(&b)); // order / orientation independent
///
/// let c = Graph::from_edges(3, [(0, 1, 1.0), (1, 2, 2.5)]);
/// assert_ne!(fingerprint(&a), fingerprint(&c)); // weights matter
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GraphFingerprint(u128);

impl GraphFingerprint {
    /// The raw 128-bit digest.
    pub fn as_u128(&self) -> u128 {
        self.0
    }

    /// The digest as a fixed-width lowercase hex string (32 characters) —
    /// the serialized form used in `BENCH_*.json` reports.
    pub fn to_hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// A shard index in `0..shards` derived from the digest's low bits.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn shard(&self, shards: usize) -> usize {
        assert!(shards > 0, "shard count must be positive");
        (self.0 % shards as u128) as usize
    }
}

impl std::fmt::Display for GraphFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

/// 128-bit FNV-1a over a stream of `u64` words.
#[derive(Debug, Clone, Copy)]
struct Fnv128(u128);

impl Fnv128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

    fn new() -> Self {
        Fnv128(Self::OFFSET)
    }

    fn write_u64(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u128::from(byte);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn finish(self) -> u128 {
        self.0
    }
}

/// Computes the [`GraphFingerprint`] of a graph.
///
/// Runs in `O(m log m)` time for the canonical edge sort.
pub fn fingerprint(graph: &Graph) -> GraphFingerprint {
    // Canonical multiset: each edge as (min endpoint, max endpoint, weight
    // bits), sorted. Ties (parallel edges with equal weight) are harmless —
    // equal triples hash equally in any order.
    let mut canonical: Vec<(usize, usize, u64)> = graph
        .edges()
        .iter()
        .map(|e| {
            let (u, v) = e.key();
            (u, v, e.weight.to_bits())
        })
        .collect();
    canonical.sort_unstable();

    let mut hash = Fnv128::new();
    hash.write_u64(graph.n() as u64);
    hash.write_u64(canonical.len() as u64);
    for (u, v, w) in canonical {
        hash.write_u64(u as u64);
        hash.write_u64(v as u64);
        hash.write_u64(w);
    }
    GraphFingerprint(hash.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_graphs_have_equal_fingerprints() {
        let a = Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 0.5)]);
        let b = Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 0.5)]);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn edge_order_and_orientation_do_not_matter() {
        let a = Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 0.5)]);
        let b = Graph::from_edges(4, [(3, 2, 0.5), (2, 1, 2.0), (1, 0, 1.0)]);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn weight_and_topology_perturbations_change_the_fingerprint() {
        let base = Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 2.0)]);
        let reweighted = Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 2.0 + 1e-12)]);
        assert_ne!(fingerprint(&base), fingerprint(&reweighted));
        let rewired = Graph::from_edges(4, [(0, 1, 1.0), (1, 3, 2.0)]);
        assert_ne!(fingerprint(&base), fingerprint(&rewired));
        let extra_vertex = Graph::from_edges(5, [(0, 1, 1.0), (1, 2, 2.0)]);
        assert_ne!(fingerprint(&base), fingerprint(&extra_vertex));
    }

    #[test]
    fn parallel_edge_multiplicity_is_part_of_the_identity() {
        let single = Graph::from_edges(2, [(0, 1, 1.0)]);
        let double = Graph::from_edges(2, [(0, 1, 1.0), (0, 1, 1.0)]);
        assert_ne!(fingerprint(&single), fingerprint(&double));
    }

    #[test]
    fn hex_form_is_stable_and_32_chars() {
        let g = Graph::from_edges(3, [(0, 1, 1.0), (1, 2, 2.0)]);
        let fp = fingerprint(&g);
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(hex, fingerprint(&g).to_hex());
        assert_eq!(fp.to_string(), hex);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn shards_partition_the_digest_space() {
        let g = Graph::from_edges(3, [(0, 1, 1.0), (1, 2, 2.0)]);
        let fp = fingerprint(&g);
        assert!(fp.shard(8) < 8);
        assert_eq!(fp.shard(1), 0);
        assert_eq!(fp.as_u128() % 8, fp.shard(8) as u128);
    }

    #[test]
    #[should_panic]
    fn zero_shards_rejected() {
        let g = Graph::from_edges(2, [(0, 1, 1.0)]);
        let _ = fingerprint(&g).shard(0);
    }
}
