//! Undirected weighted graphs.
//!
//! The graph type used throughout the reproduction: vertices are `0..n`,
//! edges carry positive real weights, and parallel edges are allowed (they
//! arise naturally when sparsifiers re-weight and merge edge sets).

use serde::{Deserialize, Serialize};

/// An undirected weighted edge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// One endpoint.
    pub u: usize,
    /// The other endpoint.
    pub v: usize,
    /// Positive weight.
    pub weight: f64,
}

impl Edge {
    /// Creates an edge; endpoints are stored as given.
    pub fn new(u: usize, v: usize, weight: f64) -> Self {
        Edge { u, v, weight }
    }

    /// The endpoint different from `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of this edge.
    pub fn other(&self, x: usize) -> usize {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!(
                "vertex {x} is not an endpoint of edge ({}, {})",
                self.u, self.v
            )
        }
    }

    /// Endpoints as an ordered pair `(min, max)`.
    pub fn key(&self) -> (usize, usize) {
        (self.u.min(self.v), self.u.max(self.v))
    }
}

/// An undirected weighted multigraph on vertices `0..n`.
///
/// # Examples
///
/// ```
/// use bcc_graph::Graph;
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1, 1.0);
/// g.add_edge(1, 2, 2.0);
/// g.add_edge(2, 3, 1.0);
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 3);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.is_connected());
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
    /// adjacency[v] = list of edge indices incident to v.
    adjacency: Vec<Vec<usize>>,
}

impl Graph {
    /// Creates an empty graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            edges: Vec::new(),
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range, an edge is a self-loop, or a
    /// weight is not strictly positive (see [`Graph::add_edge`]).
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize, f64)>) -> Self {
        let mut g = Graph::new(n);
        for (u, v, w) in edges {
            g.add_edge(u, v, w);
        }
        g
    }

    /// Adds an undirected edge of weight `weight` and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if `u == v`, if an endpoint is `≥ n`, or if the weight is not a
    /// strictly positive finite number.
    pub fn add_edge(&mut self, u: usize, v: usize, weight: f64) -> usize {
        assert!(u < self.n && v < self.n, "edge endpoint out of range");
        assert_ne!(u, v, "self-loops are not allowed");
        assert!(
            weight.is_finite() && weight > 0.0,
            "edge weights must be positive and finite, got {weight}"
        );
        let idx = self.edges.len();
        self.edges.push(Edge::new(u, v, weight));
        self.adjacency[u].push(idx);
        self.adjacency[v].push(idx);
        idx
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// The edge with index `e`.
    pub fn edge(&self, e: usize) -> Edge {
        self.edges[e]
    }

    /// All edges in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Indices of the edges incident to `v`.
    pub fn incident_edges(&self, v: usize) -> &[usize] {
        &self.adjacency[v]
    }

    /// Neighbors of `v` (with multiplicity for parallel edges).
    pub fn neighbors(&self, v: usize) -> Vec<usize> {
        self.adjacency[v]
            .iter()
            .map(|&e| self.edges[e].other(v))
            .collect()
    }

    /// Degree of `v` (number of incident edges).
    pub fn degree(&self, v: usize) -> usize {
        self.adjacency[v].len()
    }

    /// Weighted degree of `v` (sum of incident edge weights) — the diagonal
    /// entry `L_{vv}` of the Laplacian.
    pub fn weighted_degree(&self, v: usize) -> f64 {
        self.adjacency[v]
            .iter()
            .map(|&e| self.edges[e].weight)
            .sum()
    }

    /// Largest edge weight, or `0.0` for an edgeless graph.
    pub fn max_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).fold(0.0, f64::max)
    }

    /// Smallest edge weight, or `0.0` for an edgeless graph.
    pub fn min_weight(&self) -> f64 {
        self.edges
            .iter()
            .map(|e| e.weight)
            .fold(f64::INFINITY, f64::min)
            .min(f64::INFINITY)
            .pipe_finite()
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Simple adjacency lists (deduplicated neighbors), suitable for
    /// constructing a CONGEST communication topology.
    pub fn adjacency_lists(&self) -> Vec<Vec<usize>> {
        (0..self.n)
            .map(|v| {
                let mut nbrs = self.neighbors(v);
                nbrs.sort_unstable();
                nbrs.dedup();
                nbrs
            })
            .collect()
    }

    /// Returns `true` if the graph is connected (an edgeless single-vertex
    /// graph counts as connected, an empty graph does too).
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        let order = crate::traversal::bfs_order(self, 0);
        order.len() == self.n
    }

    /// A new graph with the same vertex set and the edges produced by `f`
    /// applied to each edge (e.g. reweighting).
    pub fn map_weights(&self, mut f: impl FnMut(&Edge) -> f64) -> Graph {
        let mut g = Graph::new(self.n);
        for e in &self.edges {
            g.add_edge(e.u, e.v, f(e));
        }
        g
    }

    /// A new graph containing only the edges whose indices are in `keep`
    /// (weights unchanged).
    pub fn subgraph(&self, keep: &[usize]) -> Graph {
        let mut g = Graph::new(self.n);
        for &e in keep {
            let edge = self.edges[e];
            g.add_edge(edge.u, edge.v, edge.weight);
        }
        g
    }
}

trait PipeFinite {
    fn pipe_finite(self) -> f64;
}

impl PipeFinite for f64 {
    fn pipe_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_other_and_key() {
        let e = Edge::new(3, 1, 2.0);
        assert_eq!(e.other(3), 1);
        assert_eq!(e.other(1), 3);
        assert_eq!(e.key(), (1, 3));
    }

    #[test]
    #[should_panic]
    fn edge_other_panics_for_non_endpoint() {
        Edge::new(0, 1, 1.0).other(2);
    }

    #[test]
    fn basic_accessors() {
        let g = Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (1, 3, 3.0)]);
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.weighted_degree(1), 6.0);
        assert_eq!(g.max_weight(), 3.0);
        assert_eq!(g.min_weight(), 1.0);
        assert_eq!(g.total_weight(), 6.0);
        assert_eq!(g.neighbors(1), vec![0, 2, 3]);
        assert_eq!(g.edge(2).key(), (1, 3));
    }

    #[test]
    fn parallel_edges_are_supported() {
        let g = Graph::from_edges(2, [(0, 1, 1.0), (0, 1, 2.0)]);
        assert_eq!(g.m(), 2);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.weighted_degree(0), 3.0);
        // adjacency_lists deduplicates.
        assert_eq!(g.adjacency_lists()[0], vec![1]);
    }

    #[test]
    #[should_panic]
    fn self_loops_rejected() {
        Graph::from_edges(2, [(1, 1, 1.0)]);
    }

    #[test]
    #[should_panic]
    fn non_positive_weights_rejected() {
        Graph::from_edges(2, [(0, 1, 0.0)]);
    }

    #[test]
    fn connectivity() {
        let connected = Graph::from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)]);
        assert!(connected.is_connected());
        let disconnected = Graph::from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)]);
        assert!(!disconnected.is_connected());
        assert!(Graph::new(1).is_connected());
        assert!(Graph::new(0).is_connected());
        assert!(!Graph::new(2).is_connected());
    }

    #[test]
    fn map_weights_and_subgraph() {
        let g = Graph::from_edges(3, [(0, 1, 1.0), (1, 2, 2.0)]);
        let scaled = g.map_weights(|e| 4.0 * e.weight);
        assert_eq!(scaled.edge(1).weight, 8.0);
        let sub = g.subgraph(&[1]);
        assert_eq!(sub.m(), 1);
        assert_eq!(sub.edge(0).key(), (1, 2));
        assert_eq!(sub.n(), 3);
    }

    #[test]
    fn min_weight_of_empty_graph_is_zero() {
        assert_eq!(Graph::new(3).min_weight(), 0.0);
        assert_eq!(Graph::new(3).max_weight(), 0.0);
    }
}
