//! # bcc-graph
//!
//! Graph data structures and generators for the reproduction of *"The
//! Laplacian Paradigm in the Broadcast Congested Clique"* (Forster & de Vos,
//! PODC 2022).
//!
//! * [`Graph`] — undirected weighted multigraphs (the input of spanner,
//!   sparsifier and Laplacian-solver algorithms).
//! * [`DiGraph`] / [`FlowInstance`] — directed capacitated, cost-labelled
//!   graphs (the input of the minimum cost maximum flow problem).
//! * [`laplacian`] — matrix-free Laplacian and incidence operators
//!   (`L = Bᵀ W B`, Section 2.2 of the paper).
//! * [`mod@fingerprint`] — deterministic, edge-order-independent 128-bit graph
//!   digests used as cache keys by batch-serving layers.
//! * [`generators`] — deterministic and seeded-random graph families used by
//!   the experiments in EXPERIMENTS.md.
//! * [`traversal`] — centralized BFS/Dijkstra ground truth used for
//!   verification (e.g. spanner stretch checks).
//!
//! ## Example
//!
//! ```
//! use bcc_graph::{generators, laplacian};
//!
//! let g = generators::grid(3, 3);
//! let x: Vec<f64> = (0..9).map(|i| i as f64).collect();
//! let energy = laplacian::quadratic_form(&g, &x);
//! assert!(energy > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digraph;
pub mod fingerprint;
pub mod generators;
pub mod graph;
pub mod laplacian;
pub mod traversal;

pub use digraph::{Arc, DiGraph, FlowInstance};
pub use fingerprint::{fingerprint, GraphFingerprint};
pub use graph::{Edge, Graph};
