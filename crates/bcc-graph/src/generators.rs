//! Graph and flow-network generators used by tests, examples and the
//! experiment harness.
//!
//! All random generators take an explicit `&mut impl Rng` so that every
//! experiment in EXPERIMENTS.md is reproducible from its seed.

use rand::Rng;

use crate::digraph::{DiGraph, FlowInstance};
use crate::graph::Graph;

/// A path `0 − 1 − ⋯ − (n−1)` with unit weights.
pub fn path(n: usize) -> Graph {
    Graph::from_edges(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1, 1.0)))
}

/// A cycle on `n ≥ 3` vertices with unit weights.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n, 1.0)))
}

/// A star with center 0 and `n − 1` leaves, unit weights.
pub fn star(n: usize) -> Graph {
    Graph::from_edges(n, (1..n).map(|i| (0, i, 1.0)))
}

/// The complete graph `K_n` with unit weights.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v, 1.0);
        }
    }
    g
}

/// A `rows × cols` grid with unit weights.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut g = Graph::new(n);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1), 1.0);
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c), 1.0);
            }
        }
    }
    g
}

/// A "barbell": two cliques of size `k` joined by a path of length
/// `bridge_len` — the classic hard instance for spectral methods (tiny
/// conductance).
pub fn barbell(k: usize, bridge_len: usize) -> Graph {
    assert!(k >= 2, "each bell needs at least 2 vertices");
    let n = 2 * k + bridge_len;
    let mut g = Graph::new(n);
    for u in 0..k {
        for v in (u + 1)..k {
            g.add_edge(u, v, 1.0);
        }
    }
    let offset = k + bridge_len;
    for u in 0..k {
        for v in (u + 1)..k {
            g.add_edge(offset + u, offset + v, 1.0);
        }
    }
    // Bridge path connecting vertex k-1 of the first bell to vertex `offset`
    // of the second.
    let mut prev = k - 1;
    for i in 0..bridge_len {
        g.add_edge(prev, k + i, 1.0);
        prev = k + i;
    }
    g.add_edge(prev, offset, 1.0);
    g
}

/// Erdős–Rényi graph `G(n, p)` with weights drawn uniformly from
/// `1..=max_weight` (as integers, stored as `f64`).
pub fn erdos_renyi(n: usize, p: f64, max_weight: u64, rng: &mut impl Rng) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    assert!(max_weight >= 1);
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen::<f64>() < p {
                let w = rng.gen_range(1..=max_weight) as f64;
                g.add_edge(u, v, w);
            }
        }
    }
    g
}

/// A connected weighted random graph: a random spanning tree (to guarantee
/// connectivity) plus `G(n, p)` extra edges, weights in `1..=max_weight`.
pub fn random_connected(n: usize, p: f64, max_weight: u64, rng: &mut impl Rng) -> Graph {
    assert!(n >= 1);
    let mut g = Graph::new(n);
    let mut seen: std::collections::BTreeSet<(usize, usize)> = std::collections::BTreeSet::new();
    // Random spanning tree: attach vertex v to a uniformly random earlier vertex.
    for v in 1..n {
        let u = rng.gen_range(0..v);
        let w = rng.gen_range(1..=max_weight) as f64;
        g.add_edge(u, v, w);
        seen.insert((u.min(v), u.max(v)));
    }
    for u in 0..n {
        for v in (u + 1)..n {
            if seen.contains(&(u, v)) {
                continue;
            }
            if rng.gen::<f64>() < p {
                let w = rng.gen_range(1..=max_weight) as f64;
                g.add_edge(u, v, w);
            }
        }
    }
    g
}

/// An approximately `d`-regular random graph built from `d/2` random
/// Hamiltonian-cycle-style permutations (a standard light-weight expander
/// construction). `d` must be even and `≥ 2`.
pub fn random_regularish(n: usize, d: usize, rng: &mut impl Rng) -> Graph {
    assert!(
        d >= 2 && d.is_multiple_of(2),
        "degree must be even and >= 2"
    );
    assert!(n >= 3);
    let mut g = Graph::new(n);
    let mut seen: std::collections::BTreeSet<(usize, usize)> = std::collections::BTreeSet::new();
    for _ in 0..(d / 2) {
        // Random cyclic permutation.
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        for i in 0..n {
            let u = perm[i];
            let v = perm[(i + 1) % n];
            let key = (u.min(v), u.max(v));
            if u != v && !seen.contains(&key) {
                seen.insert(key);
                g.add_edge(u, v, 1.0);
            }
        }
    }
    g
}

/// A random capacitated, cost-labelled flow instance that is guaranteed to
/// admit at least one `s`-`t` path: a random DAG-ish backbone from `s = 0` to
/// `t = n−1` plus random extra arcs. Capacities and absolute costs are drawn
/// from `1..=max_magnitude`.
pub fn random_flow_instance(
    n: usize,
    extra_arc_probability: f64,
    max_magnitude: i64,
    rng: &mut impl Rng,
) -> FlowInstance {
    assert!(n >= 2);
    assert!(max_magnitude >= 1);
    let mut g = DiGraph::new(n);
    // Backbone path 0 -> 1 -> ... -> n-1 guarantees an s-t path.
    for v in 0..n - 1 {
        let cap = rng.gen_range(1..=max_magnitude);
        let cost = rng.gen_range(1..=max_magnitude);
        g.add_arc(v, v + 1, cap, cost);
    }
    for u in 0..n {
        for v in 0..n {
            if u == v || (v == u + 1) {
                continue;
            }
            if rng.gen::<f64>() < extra_arc_probability {
                let cap = rng.gen_range(1..=max_magnitude);
                let cost = rng.gen_range(1..=max_magnitude);
                g.add_arc(u, v, cap, cost);
            }
        }
    }
    FlowInstance::new(g, 0, n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn deterministic_generators_have_expected_sizes() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(cycle(5).m(), 5);
        assert_eq!(star(5).m(), 4);
        assert_eq!(complete(5).m(), 10);
        assert_eq!(grid(3, 4).n(), 12);
        assert_eq!(grid(3, 4).m(), 3 * 3 + 2 * 4);
        assert!(path(5).is_connected());
        assert!(grid(3, 4).is_connected());
    }

    #[test]
    fn barbell_is_connected_and_has_two_cliques() {
        let g = barbell(4, 2);
        assert_eq!(g.n(), 10);
        assert!(g.is_connected());
        // Two K_4 (6 edges each) + bridge of length 2 (3 edges).
        assert_eq!(g.m(), 6 + 6 + 3);
    }

    #[test]
    fn erdos_renyi_density_tracks_p() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = erdos_renyi(60, 0.3, 8, &mut rng);
        let expected = 0.3 * (60.0 * 59.0 / 2.0);
        assert!((g.m() as f64) > 0.5 * expected && (g.m() as f64) < 1.5 * expected);
        assert!(g.max_weight() <= 8.0);
        assert!(g.min_weight() >= 1.0);
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert_eq!(erdos_renyi(10, 0.0, 1, &mut rng).m(), 0);
        assert_eq!(erdos_renyi(10, 1.0, 1, &mut rng).m(), 45);
    }

    #[test]
    fn random_connected_is_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for n in [1, 2, 5, 33] {
            let g = random_connected(n, 0.05, 10, &mut rng);
            assert!(g.is_connected(), "n = {n}");
            assert!(g.m() >= n.saturating_sub(1));
        }
    }

    #[test]
    fn regularish_has_bounded_degree() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = random_regularish(30, 6, &mut rng);
        assert!(g.is_connected());
        for v in 0..30 {
            assert!(g.degree(v) <= 6);
            assert!(g.degree(v) >= 2);
        }
    }

    #[test]
    fn random_flow_instance_has_backbone() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let inst = random_flow_instance(8, 0.2, 16, &mut rng);
        assert_eq!(inst.source, 0);
        assert_eq!(inst.sink, 7);
        assert!(inst.graph.m() >= 7);
        assert!(inst.graph.max_capacity() <= 16);
        assert!(inst.graph.max_cost() <= 16);
        // Backbone means a positive max flow exists; check arc 0 -> 1 exists.
        assert!(inst
            .graph
            .out_arcs(0)
            .iter()
            .any(|&a| inst.graph.arc(a).to == 1));
    }

    #[test]
    #[should_panic]
    fn cycle_requires_three_vertices() {
        let _ = cycle(2);
    }
}
