//! Graph traversal: BFS, Dijkstra and connected components.
//!
//! These centralized routines are used as ground truth by the tests and by
//! the spanner stretch-verification utilities; they are not part of the
//! distributed algorithms themselves.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::graph::Graph;

/// Vertices reachable from `source`, in BFS order.
pub fn bfs_order(g: &Graph, source: usize) -> Vec<usize> {
    assert!(source < g.n(), "source out of range");
    let mut visited = vec![false; g.n()];
    let mut queue = std::collections::VecDeque::new();
    let mut order = Vec::new();
    visited[source] = true;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for u in g.neighbors(v) {
            if !visited[u] {
                visited[u] = true;
                queue.push_back(u);
            }
        }
    }
    order
}

/// Hop distances from `source` (`usize::MAX` for unreachable vertices).
pub fn bfs_distances(g: &Graph, source: usize) -> Vec<usize> {
    assert!(source < g.n(), "source out of range");
    let mut dist = vec![usize::MAX; g.n()];
    let mut queue = std::collections::VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        for u in g.neighbors(v) {
            if dist[u] == usize::MAX {
                dist[u] = dist[v] + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Weighted shortest-path distances from `source` (`f64::INFINITY` for
/// unreachable vertices). Edge weights must be non-negative, which the
/// [`Graph`] type already guarantees.
pub fn dijkstra(g: &Graph, source: usize) -> Vec<f64> {
    assert!(source < g.n(), "source out of range");
    let mut dist = vec![f64::INFINITY; g.n()];
    let mut heap: BinaryHeap<Reverse<(OrderedF64, usize)>> = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(Reverse((OrderedF64(0.0), source)));
    while let Some(Reverse((OrderedF64(d), v))) = heap.pop() {
        if d > dist[v] {
            continue;
        }
        for &e in g.incident_edges(v) {
            let edge = g.edge(e);
            let u = edge.other(v);
            let nd = d + edge.weight;
            if nd < dist[u] {
                dist[u] = nd;
                heap.push(Reverse((OrderedF64(nd), u)));
            }
        }
    }
    dist
}

/// Connected-component label (in `0..#components`) of every vertex.
pub fn connected_components(g: &Graph) -> Vec<usize> {
    let mut label = vec![usize::MAX; g.n()];
    let mut next = 0;
    for s in 0..g.n() {
        if label[s] != usize::MAX {
            continue;
        }
        for v in bfs_order_from(g, s) {
            label[v] = next;
        }
        next += 1;
    }
    label
}

fn bfs_order_from(g: &Graph, source: usize) -> Vec<usize> {
    bfs_order(g, source)
}

/// Total-order wrapper for finite `f64` keys in the Dijkstra heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("distances are finite")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1, 1.0)))
    }

    #[test]
    fn bfs_on_path() {
        let g = path_graph(5);
        assert_eq!(bfs_order(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_unreachable_is_max() {
        let g = Graph::from_edges(4, [(0, 1, 1.0)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], usize::MAX);
        assert_eq!(d[3], usize::MAX);
    }

    #[test]
    fn dijkstra_prefers_light_paths() {
        // 0 -1- 1 -1- 2  and a heavy direct edge 0 -5- 2.
        let g = Graph::from_edges(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)]);
        let d = dijkstra(&g, 0);
        assert_eq!(d, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn dijkstra_unreachable_is_infinite() {
        let g = Graph::from_edges(3, [(0, 1, 1.0)]);
        let d = dijkstra(&g, 0);
        assert!(d[2].is_infinite());
    }

    #[test]
    fn components_are_labeled_consecutively() {
        let g = Graph::from_edges(5, [(0, 1, 1.0), (2, 3, 1.0)]);
        let labels = connected_components(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[4], labels[0]);
        assert_ne!(labels[4], labels[2]);
        assert_eq!(*labels.iter().max().unwrap(), 2);
    }
}
