//! Laplacian and incidence-matrix operators.
//!
//! The Laplacian of a weighted graph `G` is `L = Bᵀ W B` where `B` is the
//! edge–vertex incidence matrix and `W` the diagonal weight matrix
//! (Section 2.2 of the paper). This module exposes the Laplacian as a
//! *matrix-free operator* — `apply`, `quadratic_form`, `triplets` — because
//! that is how the distributed algorithms use it: a vertex only ever needs
//! the rows corresponding to its incident edges.

use crate::graph::Graph;

/// Applies the Laplacian of `g` to a vector: `(L x)_u = Σ_v w(u,v)(x_u − x_v)`.
///
/// # Panics
///
/// Panics if `x.len() != g.n()`.
pub fn laplacian_apply(g: &Graph, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; g.n()];
    laplacian_apply_into(g, x, &mut y);
    y
}

/// Allocation-free variant of [`laplacian_apply`]: writes `L x` into `out`.
/// Bit-identical to the allocating form (same edge-accumulation order).
///
/// # Panics
///
/// Panics if `x.len() != g.n()` or `out.len() != g.n()`.
pub fn laplacian_apply_into(g: &Graph, x: &[f64], out: &mut [f64]) {
    assert_eq!(x.len(), g.n(), "dimension mismatch");
    assert_eq!(out.len(), g.n(), "dimension mismatch");
    out.fill(0.0);
    for e in g.edges() {
        let d = x[e.u] - x[e.v];
        out[e.u] += e.weight * d;
        out[e.v] -= e.weight * d;
    }
}

/// The Laplacian quadratic form `xᵀ L x = Σ_{(u,v)∈E} w(u,v)(x_u − x_v)²`.
pub fn quadratic_form(g: &Graph, x: &[f64]) -> f64 {
    assert_eq!(x.len(), g.n(), "dimension mismatch");
    g.edges()
        .iter()
        .map(|e| {
            let d = x[e.u] - x[e.v];
            e.weight * d * d
        })
        .sum()
}

/// The Laplacian seminorm `‖x‖_{L} = sqrt(xᵀ L x)` used in the solver error
/// guarantees of Theorem 1.3.
pub fn laplacian_norm(g: &Graph, x: &[f64]) -> f64 {
    quadratic_form(g, x).max(0.0).sqrt()
}

/// The Laplacian as COO triplets `(row, col, value)`, including the diagonal.
/// Parallel edges are merged.
pub fn laplacian_triplets(g: &Graph) -> Vec<(usize, usize, f64)> {
    let n = g.n();
    let mut diag = vec![0.0; n];
    let mut off: std::collections::BTreeMap<(usize, usize), f64> =
        std::collections::BTreeMap::new();
    for e in g.edges() {
        diag[e.u] += e.weight;
        diag[e.v] += e.weight;
        *off.entry(e.key()).or_insert(0.0) += e.weight;
    }
    let mut triplets = Vec::with_capacity(n + 2 * off.len());
    for (v, &d) in diag.iter().enumerate() {
        if d != 0.0 {
            triplets.push((v, v, d));
        }
    }
    for ((u, v), w) in off {
        triplets.push((u, v, -w));
        triplets.push((v, u, -w));
    }
    triplets
}

/// The dense Laplacian as a row-major `n × n` matrix (ground truth for small
/// instances).
pub fn laplacian_dense(g: &Graph) -> Vec<Vec<f64>> {
    let n = g.n();
    let mut m = vec![vec![0.0; n]; n];
    for (r, c, v) in laplacian_triplets(g) {
        m[r][c] += v;
    }
    m
}

/// Applies the edge–vertex incidence matrix `B ∈ R^{m×n}`: `(B x)_e =
/// x_{head(e)} − x_{tail(e)}`, with the convention `head = u`, `tail = v` for
/// an edge stored as `(u, v)`.
pub fn incidence_apply(g: &Graph, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), g.n(), "dimension mismatch");
    g.edges().iter().map(|e| x[e.u] - x[e.v]).collect()
}

/// Applies the transpose of the incidence matrix: `(Bᵀ y)_v = Σ_{e: head(e)=v}
/// y_e − Σ_{e: tail(e)=v} y_e`.
pub fn incidence_transpose_apply(g: &Graph, y: &[f64]) -> Vec<f64> {
    assert_eq!(y.len(), g.m(), "dimension mismatch");
    let mut x = vec![0.0; g.n()];
    for (i, e) in g.edges().iter().enumerate() {
        x[e.u] += y[i];
        x[e.v] -= y[i];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)])
    }

    #[test]
    fn laplacian_of_triangle_matches_hand_computation() {
        let g = triangle();
        let dense = laplacian_dense(&g);
        let expected = [
            vec![4.0, -1.0, -3.0],
            vec![-1.0, 3.0, -2.0],
            vec![-3.0, -2.0, 5.0],
        ];
        for i in 0..3 {
            for j in 0..3 {
                assert!((dense[i][j] - expected[i][j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn apply_agrees_with_dense_matrix() {
        let g = triangle();
        let x = vec![1.0, -2.0, 0.5];
        let y = laplacian_apply(&g, &x);
        let dense = laplacian_dense(&g);
        for i in 0..3 {
            let expect: f64 = (0..3).map(|j| dense[i][j] * x[j]).sum();
            assert!((y[i] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn quadratic_form_is_consistent_with_apply() {
        let g = triangle();
        let x = vec![0.3, 1.7, -0.4];
        let lx = laplacian_apply(&g, &x);
        let xlx: f64 = x.iter().zip(&lx).map(|(a, b)| a * b).sum();
        assert!((quadratic_form(&g, &x) - xlx).abs() < 1e-12);
        assert!((laplacian_norm(&g, &x) - xlx.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn constant_vectors_are_in_the_kernel() {
        let g = triangle();
        let ones = vec![5.0; 3];
        assert!(laplacian_apply(&g, &ones).iter().all(|&v| v.abs() < 1e-12));
        assert!(quadratic_form(&g, &ones).abs() < 1e-12);
    }

    #[test]
    fn laplacian_row_sums_are_zero() {
        let g = Graph::from_edges(4, [(0, 1, 1.5), (1, 2, 2.5), (2, 3, 0.5), (0, 3, 1.0)]);
        let dense = laplacian_dense(&g);
        for row in dense {
            let s: f64 = row.iter().sum();
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_edges_merge_in_triplets() {
        let g = Graph::from_edges(2, [(0, 1, 1.0), (0, 1, 2.0)]);
        let dense = laplacian_dense(&g);
        assert!((dense[0][1] + 3.0).abs() < 1e-12);
        assert!((dense[0][0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn incidence_and_transpose_compose_to_laplacian_for_unit_weights() {
        let g = Graph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 1.0)]);
        let x = vec![1.0, 2.0, -1.0, 0.0];
        let bx = incidence_apply(&g, &x);
        let btbx = incidence_transpose_apply(&g, &bx);
        let lx = laplacian_apply(&g, &x);
        for (a, b) in btbx.iter().zip(&lx) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
