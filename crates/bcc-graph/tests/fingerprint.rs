//! Property tests of the graph fingerprint: equal graphs fingerprint equally,
//! the digest ignores edge order and orientation, and any weight or topology
//! perturbation produces a distinct digest.

use bcc_graph::{fingerprint, Graph};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A random weighted edge list on `n` vertices (possibly with parallel
/// edges, as sparsifiers produce them).
fn random_edges(n: usize, m: usize, seed: u64) -> Vec<(usize, usize, f64)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..m)
        .map(|_| {
            let u = rng.gen_range(0..n);
            let mut v = rng.gen_range(0..n - 1);
            if v >= u {
                v += 1;
            }
            let w = 0.25 + rng.gen::<f64>() * 4.0;
            (u, v, w)
        })
        .collect()
}

/// Fisher–Yates shuffle driven by a seeded generator.
fn shuffled<T: Clone>(items: &[T], seed: u64) -> Vec<T> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = items.to_vec();
    for i in (1..out.len()).rev() {
        let j = rng.gen_range(0..=i);
        out.swap(i, j);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn equal_edge_multisets_fingerprint_equally(
        n in 2usize..24,
        m in 1usize..40,
        seed in any::<u64>(),
    ) {
        let edges = random_edges(n, m, seed);
        let a = Graph::from_edges(n, edges.clone());
        let b = Graph::from_edges(n, edges);
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn fingerprint_is_edge_order_and_orientation_independent(
        n in 2usize..24,
        m in 1usize..40,
        seed in any::<u64>(),
        shuffle_seed in any::<u64>(),
    ) {
        let edges = random_edges(n, m, seed);
        let reference = Graph::from_edges(n, edges.clone());
        // Shuffle the insertion order and flip every edge's orientation.
        let permuted: Vec<(usize, usize, f64)> = shuffled(&edges, shuffle_seed)
            .into_iter()
            .map(|(u, v, w)| (v, u, w))
            .collect();
        let reordered = Graph::from_edges(n, permuted);
        prop_assert_eq!(fingerprint(&reference), fingerprint(&reordered));
    }

    #[test]
    fn weight_perturbation_changes_the_fingerprint(
        n in 2usize..24,
        m in 1usize..40,
        seed in any::<u64>(),
        which in 0usize..40,
        bump in 1u64..1_000_000,
    ) {
        let edges = random_edges(n, m, seed);
        let base = Graph::from_edges(n, edges.clone());
        // Perturb one weight by a representable amount (ULP stepping keeps
        // the new weight finite, positive and distinct).
        let mut perturbed = edges;
        let target = which % perturbed.len();
        let old = perturbed[target].2;
        perturbed[target].2 = f64::from_bits(old.to_bits() + bump);
        prop_assert!(perturbed[target].2 != old);
        let changed = Graph::from_edges(n, perturbed);
        prop_assert!(fingerprint(&base) != fingerprint(&changed));
    }

    #[test]
    fn edge_change_changes_the_fingerprint(
        n in 3usize..24,
        m in 1usize..40,
        seed in any::<u64>(),
        which in 0usize..40,
    ) {
        let edges = random_edges(n, m, seed);
        let base = Graph::from_edges(n, edges.clone());

        // Dropping an edge changes the multiset, hence the digest.
        let mut dropped = edges.clone();
        dropped.remove(which % edges.len());
        let smaller = Graph::from_edges(n, dropped);
        prop_assert!(fingerprint(&base) != fingerprint(&smaller));

        // Rewiring an endpoint of one edge changes the digest too.
        let mut rewired = edges.clone();
        let target = which % edges.len();
        let (u, v, w) = rewired[target];
        let mut v2 = (v + 1) % n;
        if v2 == u {
            v2 = (v2 + 1) % n;
        }
        rewired[target] = (u, v2, w);
        let moved = Graph::from_edges(n, rewired);
        // The rewired multiset differs unless an identical parallel edge
        // already existed at the new location AND one at the old location —
        // rule that out by comparing canonical multisets first.
        let canon = |g: &Graph| {
            let mut c: Vec<(usize, usize, u64)> = g
                .edges()
                .iter()
                .map(|e| {
                    let (a, b) = e.key();
                    (a, b, e.weight.to_bits())
                })
                .collect();
            c.sort_unstable();
            c
        };
        if canon(&base) != canon(&moved) {
            prop_assert!(fingerprint(&base) != fingerprint(&moved));
        }
    }
}
