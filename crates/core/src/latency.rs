//! Latency percentile aggregation for the streaming service layer.
//!
//! Workers timestamp every job against the engine's [`crate::clock::Clock`]
//! (admission, dispatch, completion); at the end of a serve scope those
//! per-ticket timestamps are folded into per-class **queue-wait** and
//! **end-to-end** percentiles ([`LatencyReport`], surfaced on
//! [`crate::stream::StreamOutput::latency`]). The same types carry the
//! simulated percentiles of the `bench` crate's load harness into
//! `BENCH_load.json`.
//!
//! All figures are integer nanoseconds, so serialized reports are
//! byte-stable wherever the underlying timestamps are deterministic (e.g.
//! under a [`crate::clock::VirtualClock`]). Percentiles use the
//! **nearest-rank** rule on the sorted samples: the p-th percentile is the
//! `ceil(p/100 × n)`-th smallest sample, so every reported value is an
//! actually observed latency.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Percentiles over one set of latency samples, in integer nanoseconds.
/// An empty sample set reports all zeros with `samples = 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyPercentiles {
    /// Number of samples aggregated.
    pub samples: u64,
    /// Median (nearest-rank 50th percentile), nanoseconds.
    pub p50_ns: u64,
    /// Nearest-rank 95th percentile, nanoseconds.
    pub p95_ns: u64,
    /// Nearest-rank 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// Largest sample, nanoseconds.
    pub max_ns: u64,
}

impl LatencyPercentiles {
    /// Aggregates a set of nanosecond samples (order irrelevant — the
    /// samples are sorted internally).
    pub fn from_ns_samples(mut samples: Vec<u64>) -> Self {
        samples.sort_unstable();
        let nearest_rank = |p: u64| -> u64 {
            if samples.is_empty() {
                return 0;
            }
            // ceil(p/100 × n), 1-based rank, clamped into the sample range.
            let rank = (p * samples.len() as u64).div_ceil(100).max(1);
            samples[(rank - 1).min(samples.len() as u64 - 1) as usize]
        };
        LatencyPercentiles {
            samples: samples.len() as u64,
            p50_ns: nearest_rank(50),
            p95_ns: nearest_rank(95),
            p99_ns: nearest_rank(99),
            max_ns: samples.last().copied().unwrap_or(0),
        }
    }

    /// The median as a [`Duration`].
    pub fn p50(&self) -> Duration {
        Duration::from_nanos(self.p50_ns)
    }

    /// The 95th percentile as a [`Duration`].
    pub fn p95(&self) -> Duration {
        Duration::from_nanos(self.p95_ns)
    }

    /// The 99th percentile as a [`Duration`].
    pub fn p99(&self) -> Duration {
        Duration::from_nanos(self.p99_ns)
    }

    /// The largest sample as a [`Duration`].
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }
}

/// Latency percentiles of one scheduling class: how long its dispatched
/// jobs waited in the queue, and how long from admission to completion.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassLatency {
    /// Class name ([`crate::stream::Priority::label`]).
    pub class: String,
    /// Admission → dispatch, over the class's dispatched jobs.
    pub queue_wait: LatencyPercentiles,
    /// Admission → completion, over the class's completed jobs. Expired
    /// submissions never dispatch and are excluded from both distributions
    /// (they are counted in the scheduler's `expired` counters instead).
    pub end_to_end: LatencyPercentiles,
}

/// Per-class latency percentiles of one serve scope (or one simulated load
/// run), in deterministic class order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct LatencyReport {
    /// One entry per scheduling class, built-ins first, then customs by id.
    pub classes: Vec<ClassLatency>,
}

impl LatencyReport {
    /// The latency of one class, by its label (`"interactive"`, `"bulk"`,
    /// `"custom-<id>"`).
    pub fn class(&self, label: &str) -> Option<&ClassLatency> {
        self.classes.iter().find(|c| c.class == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_samples_report_zeros() {
        let p = LatencyPercentiles::from_ns_samples(Vec::new());
        assert_eq!(p.samples, 0);
        assert_eq!(p.p50_ns, 0);
        assert_eq!(p.p99_ns, 0);
        assert_eq!(p.max_ns, 0);
    }

    #[test]
    fn nearest_rank_percentiles_are_observed_samples() {
        // 1..=100: p50 is the 50th smallest, p95 the 95th, p99 the 99th.
        let samples: Vec<u64> = (1..=100).rev().collect();
        let p = LatencyPercentiles::from_ns_samples(samples);
        assert_eq!(p.samples, 100);
        assert_eq!(p.p50_ns, 50);
        assert_eq!(p.p95_ns, 95);
        assert_eq!(p.p99_ns, 99);
        assert_eq!(p.max_ns, 100);
        assert_eq!(p.p99(), Duration::from_nanos(99));
    }

    #[test]
    fn one_sample_is_every_percentile() {
        let p = LatencyPercentiles::from_ns_samples(vec![7]);
        assert_eq!(p.samples, 1);
        assert_eq!(p.p50_ns, 7);
        assert_eq!(p.p95_ns, 7);
        assert_eq!(p.p99_ns, 7);
        assert_eq!(p.max_ns, 7);
    }

    #[test]
    fn all_equal_samples_collapse_every_percentile() {
        // Nearest-rank on a constant distribution must pick the constant at
        // every percentile — no interpolation artifacts.
        let p = LatencyPercentiles::from_ns_samples(vec![42; 1000]);
        assert_eq!(p.samples, 1000);
        assert_eq!(p.p50_ns, 42);
        assert_eq!(p.p95_ns, 42);
        assert_eq!(p.p99_ns, 42);
        assert_eq!(p.max_ns, 42);
    }

    #[test]
    fn report_lookup_by_label() {
        let report = LatencyReport {
            classes: vec![ClassLatency {
                class: "interactive".to_string(),
                queue_wait: LatencyPercentiles::from_ns_samples(vec![1, 2]),
                end_to_end: LatencyPercentiles::from_ns_samples(vec![3, 4]),
            }],
        };
        assert!(report.class("interactive").is_some());
        assert!(report.class("bulk").is_none());
        assert_eq!(report.class("interactive").unwrap().queue_wait.max_ns, 2);
    }
}
