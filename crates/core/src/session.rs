//! The `Session` pipeline API: typed, fallible, reusable entry points for the
//! paper's four theorems.
//!
//! A [`Session`] owns the execution environment — a [`ModelConfig`], a master
//! seed and a cumulative [`bcc_runtime::RoundLedger`] — and serves requests:
//!
//! * [`Session::sparsify`] — Theorem 1.2 (Broadcast CONGEST);
//! * [`Session::laplacian`] — Theorem 1.3, split into a preprocessing stage
//!   ([`LaplacianRequest::preprocess`]) and arbitrarily many amortized solves
//!   ([`PreparedLaplacian::solve`], [`PreparedLaplacian::solve_many`]);
//! * [`Session::lp`] — Theorem 1.4;
//! * [`Session::min_cost_max_flow`] — Theorem 1.1.
//!
//! Every entry point validates its input and returns
//! `Result<Outcome<T>, Error>` — no panic is reachable from malformed input —
//! and every [`Outcome`] carries a structured [`RoundReport`] covering
//! exactly that request, so serving systems can meter communication cost by
//! summing outcome reports.
//!
//! [`GramChoice::Sdd`] routes the LP's inner solves through the
//! Gremban/Laplacian reduction, which requires `AᵀDA` to be symmetric
//! diagonally dominant (true for the flow LPs of Section 5). On an LP
//! without that structure the solve returns
//! `Error::Lp(LpError::GramSolve { .. })` — like every other malformed
//! input, a typed error rather than a panic — so [`GramChoice::Dense`]
//! remains the right default for general LPs.

use bcc_flow::{try_min_cost_max_flow_bcc, McmfOptions, McmfResult};
use bcc_graph::{FlowInstance, Graph};
use bcc_laplacian::{LaplacianSolve, LaplacianSolver, ScratchArena};
use bcc_lp::{try_lp_solve, DenseGramSolver, GramSolver, LpInstance, LpOptions, LpSolution};
use bcc_runtime::{ModelConfig, Network, RoundLedger};
use bcc_sparsifier::{try_sparsify_ad_hoc, SparsifierConfig, SparsifierOutput};

use crate::error::Error;
use crate::report::RoundReport;

/// The result of a pipeline request: the value plus the communication-cost
/// report of the run that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome<T> {
    /// The computed result.
    pub value: T,
    /// Structured per-phase round accounting of the run.
    pub report: RoundReport,
}

impl<T> Outcome<T> {
    /// Maps the value, keeping the report.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Outcome<U> {
        Outcome {
            value: f(self.value),
            report: self.report,
        }
    }
}

/// Builder of a [`Session`].
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    model: ModelConfig,
    seed: u64,
    epsilon: f64,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder {
            model: ModelConfig::bcc(),
            seed: 2022,
            epsilon: 1e-6,
        }
    }
}

impl SessionBuilder {
    /// Sets the clique model configuration used by the Laplacian, LP and flow
    /// pipelines (default: the Broadcast Congested Clique).
    pub fn model(mut self, model: ModelConfig) -> Self {
        self.model = model;
        self
    }

    /// Sets the master seed all pipelines derive their randomness from.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the default solve accuracy `ε` (default `1e-6`).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> Session {
        Session {
            model: self.model,
            seed: self.seed,
            epsilon: self.epsilon,
            ledger: RoundLedger::new(),
        }
    }
}

/// A reusable pipeline server for the paper's four theorems.
///
/// # Examples
///
/// ```
/// use bcc_core::Session;
///
/// let mut session = Session::builder().seed(42).build();
/// let graph = bcc_core::graph::generators::grid(4, 4);
///
/// // Theorem 1.3: preprocess once, solve many right-hand sides.
/// let mut prepared = session.laplacian(&graph).preprocess().unwrap();
/// let mut b = vec![0.0; graph.n()];
/// b[0] = 1.0;
/// b[15] = -1.0;
/// let solve = prepared.solve(&b).unwrap();
/// assert_eq!(solve.value.solution.len(), graph.n());
/// // The outcome's report covers this solve alone; the handle's cumulative
/// // report shows preprocessing charged exactly once underneath.
/// assert!(solve.report.has_phase("laplacian solve"));
/// assert!(prepared.preprocessing_report().total_rounds > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Session {
    model: ModelConfig,
    seed: u64,
    epsilon: f64,
    ledger: RoundLedger,
}

impl Default for Session {
    fn default() -> Self {
        Session::builder().build()
    }
}

impl Session {
    /// Starts a builder with laboratory defaults (BCC model, seed 2022,
    /// `ε = 1e-6`).
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// A session with default configuration.
    pub fn new() -> Self {
        Session::default()
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The clique model configuration.
    pub fn model(&self) -> ModelConfig {
        self.model
    }

    /// The default solve accuracy.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Cumulative communication cost of every request this session served
    /// (prepared Laplacian handles contribute when they are
    /// [`PreparedLaplacian::finish`]ed back into the session).
    pub fn cumulative_report(&self) -> RoundReport {
        RoundReport::from_ledger(&self.ledger)
    }

    fn absorb(&mut self, net: &Network) -> RoundReport {
        self.ledger.absorb(net.ledger());
        RoundReport::from_ledger(net.ledger())
    }

    /// Merges an externally produced cost report into this session's
    /// cumulative ledger, phase by phase — the plumbing batch engines use to
    /// account work they executed on worker sessions (e.g. a
    /// [`crate::batch::BatchReport`] total) against one serving session.
    pub fn absorb_report(&mut self, report: &RoundReport) {
        for (name, stats) in &report.breakdown {
            self.ledger.charge_phase(name, *stats);
        }
    }

    // ------------------------------------------------------------------
    // Theorem 1.2 — spectral sparsification.
    // ------------------------------------------------------------------

    /// Computes a `(1 ± ε)`-spectral sparsifier of `graph` in the Broadcast
    /// CONGEST model (Theorem 1.2; the algorithm communicates over the edges
    /// of the input graph, so the model is fixed by the theorem).
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidEpsilon`] — `epsilon` is not positive and finite.
    /// * [`Error::Runtime`] — the graph's adjacency lists do not form a valid
    ///   topology.
    /// * [`Error::Sparsifier`] — the graph has no edges.
    pub fn sparsify(
        &mut self,
        graph: &Graph,
        epsilon: f64,
    ) -> Result<Outcome<SparsifierOutput>, Error> {
        if !(epsilon > 0.0 && epsilon.is_finite()) {
            return Err(Error::InvalidEpsilon { epsilon });
        }
        let config = SparsifierConfig::laboratory(graph.n(), graph.m().max(2), epsilon, self.seed);
        let mut net = Network::on_graph(ModelConfig::broadcast_congest(), graph.adjacency_lists())?;
        let output = try_sparsify_ad_hoc(&mut net, graph, &config)?;
        let report = self.absorb(&net);
        Ok(Outcome {
            value: output,
            report,
        })
    }

    // ------------------------------------------------------------------
    // Theorem 1.3 — Laplacian solving.
    // ------------------------------------------------------------------

    /// Starts a Laplacian request on `graph` (Theorem 1.3). Returns a builder
    /// that preprocesses once and then serves arbitrarily many right-hand
    /// sides at `O(log(1/ε))` rounds each.
    pub fn laplacian<'a>(&self, graph: &'a Graph) -> LaplacianRequest<'a> {
        LaplacianRequest {
            graph,
            model: self.model,
            epsilon: self.epsilon.min(0.5),
            config: SparsifierConfig::laboratory(graph.n(), graph.m().max(2), 0.5, self.seed)
                .with_t(6)
                .with_k(2),
            exact_preconditioner: false,
        }
    }

    // ------------------------------------------------------------------
    // Theorem 1.4 — linear programming.
    // ------------------------------------------------------------------

    /// Solves `min { cᵀx : Aᵀx = b, l ≤ x ≤ u }` with the Lee–Sidford
    /// interior point method (Theorem 1.4).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Lp`] when the instance is malformed, the starting
    /// point is not strictly interior / not on the equality manifold, or the
    /// inner Gram oracle rejects a system ([`GramChoice::Sdd`] on an LP whose
    /// `AᵀDA` is not symmetric diagonally dominant).
    pub fn lp(
        &mut self,
        instance: &LpInstance,
        request: &LpRequest,
    ) -> Result<Outcome<LpSolution>, Error> {
        let mut net = Network::clique(self.model, instance.n().max(2));
        let gram = request.gram_solver();
        let solution = try_lp_solve(
            &mut net,
            instance,
            &request.x0,
            &request.options,
            gram.as_ref(),
        )?;
        let report = self.absorb(&net);
        Ok(Outcome {
            value: solution,
            report,
        })
    }

    // ------------------------------------------------------------------
    // Theorem 1.1 — minimum cost maximum flow.
    // ------------------------------------------------------------------

    /// Computes an exact minimum cost maximum flow (Theorem 1.1) with
    /// laboratory options derived from the session seed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Flow`] when the instance is empty or its LP encoding
    /// is rejected.
    pub fn min_cost_max_flow(
        &mut self,
        instance: &FlowInstance,
    ) -> Result<Outcome<McmfResult>, Error> {
        let options = McmfOptions {
            seed: self.seed,
            ..McmfOptions::default()
        };
        self.min_cost_max_flow_with(instance, &options)
    }

    /// [`Session::min_cost_max_flow`] with explicit [`McmfOptions`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Flow`] when the instance is empty or its LP encoding
    /// is rejected.
    pub fn min_cost_max_flow_with(
        &mut self,
        instance: &FlowInstance,
        options: &McmfOptions,
    ) -> Result<Outcome<McmfResult>, Error> {
        let mut net = Network::clique(self.model, instance.graph.n());
        let result = try_min_cost_max_flow_bcc(&mut net, instance, options)?;
        let report = self.absorb(&net);
        Ok(Outcome {
            value: result,
            report,
        })
    }
}

/// How [`Session::lp`] solves the inner `(AᵀDA)⁻¹` systems.
#[derive(Debug, Clone)]
pub enum GramChoice {
    /// Centralized dense solves (every vertex knows `A`; free local
    /// computation, the laboratory default).
    Dense,
    /// The Gremban/Laplacian route of Lemma 5.1 at the given precision —
    /// requires `AᵀDA` to be symmetric diagonally dominant, as flow LPs are.
    Sdd {
        /// Relative accuracy of each SDD solve.
        precision: f64,
    },
}

/// Parameters of one [`Session::lp`] request.
#[derive(Debug, Clone)]
pub struct LpRequest {
    /// Strictly interior starting point with `Aᵀx₀ = b`.
    pub x0: Vec<f64>,
    /// Interior-point options (accuracy, weight strategy, path tuning).
    pub options: LpOptions,
    /// Inner linear-system solver.
    pub gram: GramChoice,
}

impl LpRequest {
    /// A request from a starting point and options, solving Gram systems
    /// centrally (the laboratory default).
    pub fn new(x0: Vec<f64>, options: LpOptions) -> Self {
        LpRequest {
            x0,
            options,
            gram: GramChoice::Dense,
        }
    }

    /// Routes the inner Gram solves through the Gremban/Laplacian reduction
    /// (Lemma 5.1).
    pub fn with_sdd_gram(mut self, precision: f64) -> Self {
        self.gram = GramChoice::Sdd { precision };
        self
    }

    fn gram_solver(&self) -> Box<dyn GramSolver> {
        match self.gram {
            GramChoice::Dense => Box::new(DenseGramSolver::new()),
            GramChoice::Sdd { precision } => Box::new(bcc_flow::SddGramSolver::new(precision)),
        }
    }
}

/// A Laplacian request being configured (Theorem 1.3). Created by
/// [`Session::laplacian`]; finish with [`LaplacianRequest::preprocess`].
#[derive(Debug, Clone)]
pub struct LaplacianRequest<'a> {
    graph: &'a Graph,
    model: ModelConfig,
    epsilon: f64,
    config: SparsifierConfig,
    exact_preconditioner: bool,
}

impl LaplacianRequest<'_> {
    /// Sets the per-solve accuracy `ε ∈ (0, 1/2]`.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Overrides the preprocessing sparsifier parameters.
    pub fn config(mut self, config: SparsifierConfig) -> Self {
        self.config = config;
        self
    }

    /// Skips sparsifier preprocessing and preconditions with the graph's own
    /// Laplacian (zero preprocessing rounds; baseline/testing mode).
    pub fn exact_preconditioner(mut self) -> Self {
        self.exact_preconditioner = true;
        self
    }

    /// Runs the preprocessing stage (a `(1 ± 1/2)`-spectral sparsifier every
    /// vertex learns in full) and returns the reusable solver handle. The
    /// preprocessing rounds are charged exactly once, no matter how many
    /// right-hand sides are solved afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Laplacian`] when the graph is disconnected.
    pub fn preprocess(self) -> Result<PreparedLaplacian, Error> {
        let mut net = Network::clique(self.model, self.graph.n());
        let solver = if self.exact_preconditioner {
            LaplacianSolver::try_exact_preconditioner(self.graph)?
        } else {
            LaplacianSolver::try_preprocess(&mut net, self.graph, &self.config)?
        };
        let preprocessing = RoundReport::from_ledger(net.ledger());
        Ok(PreparedLaplacian {
            solver,
            net,
            preprocessing,
            epsilon: self.epsilon,
            solves: 0,
        })
    }
}

/// A preprocessed Laplacian solver (Theorem 1.3): one sparsifier, many
/// right-hand sides. The handle owns its network, so its
/// [`PreparedLaplacian::report`] shows the preprocessing phases charged
/// exactly once with per-solve rounds accumulating on top — the amortization
/// the theorem separates.
#[derive(Debug, Clone)]
pub struct PreparedLaplacian {
    solver: LaplacianSolver,
    net: Network,
    preprocessing: RoundReport,
    epsilon: f64,
    solves: u64,
}

impl PreparedLaplacian {
    fn solve_inner(&mut self, b: &[f64], epsilon: f64) -> Result<LaplacianSolve, Error> {
        let solve = self.solver.try_solve(&mut self.net, b, epsilon)?;
        self.solves += 1;
        Ok(solve)
    }

    /// Solves `L_G x = b` at the request's accuracy.
    ///
    /// The returned [`Outcome::report`] covers **this solve alone** (like
    /// every other `Session` outcome, so per-request metering sums cleanly);
    /// preprocessing lives in [`PreparedLaplacian::preprocessing_report`] and
    /// the cumulative [`PreparedLaplacian::report`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Laplacian`] when `b` has the wrong length or the
    /// accuracy is invalid.
    pub fn solve(&mut self, b: &[f64]) -> Result<Outcome<LaplacianSolve>, Error> {
        let epsilon = self.epsilon;
        self.solve_with_epsilon(b, epsilon)
    }

    /// Solves `L_G x = b` at an explicit accuracy `ε ∈ (0, 1/2]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Laplacian`] when `b` has the wrong length or the
    /// accuracy is invalid.
    pub fn solve_with_epsilon(
        &mut self,
        b: &[f64],
        epsilon: f64,
    ) -> Result<Outcome<LaplacianSolve>, Error> {
        let before = self.report();
        let solve = self.solve_inner(b, epsilon)?;
        Ok(Outcome {
            report: self.report().since(&before),
            value: solve,
        })
    }

    /// Solves one system per right-hand side, reusing the preprocessing
    /// across the whole batch (the key amortization for repeated traffic on a
    /// fixed graph). The returned [`Outcome::report`] covers the batch's
    /// solves alone; the cumulative [`PreparedLaplacian::report`] shows the
    /// preprocessing phases charged exactly once underneath them.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Laplacian`] on the first malformed right-hand side;
    /// solves before it remain charged on [`PreparedLaplacian::report`].
    pub fn solve_many(
        &mut self,
        rhs_batch: &[Vec<f64>],
    ) -> Result<Outcome<Vec<LaplacianSolve>>, Error> {
        let before = self.report();
        let epsilon = self.epsilon;
        let mut solutions = Vec::with_capacity(rhs_batch.len());
        for b in rhs_batch {
            solutions.push(self.solve_inner(b, epsilon)?);
        }
        Ok(Outcome {
            report: self.report().since(&before),
            value: solutions,
        })
    }

    /// Solves `L_G x = b` **without mutating this handle**: the solve runs on
    /// a fresh per-request network (so the returned [`Outcome::report`]
    /// covers this solve alone, exactly as [`PreparedLaplacian::solve`]'s
    /// delta report does) and reuses the caller's [`ScratchArena`] work
    /// vectors. This is the engines' hot path: many workers can serve solves
    /// from one shared prepared handle without cloning the preprocessing
    /// state per request.
    ///
    /// `epsilon` of `None` uses the request's configured accuracy.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Laplacian`] when `b` has the wrong length or the
    /// accuracy is invalid.
    pub fn solve_shared(
        &self,
        b: &[f64],
        epsilon: Option<f64>,
        arena: &mut ScratchArena,
    ) -> Result<Outcome<LaplacianSolve>, Error> {
        let mut net = Network::clique(self.net.config(), self.net.n());
        let solve =
            self.solver
                .try_solve_with(&mut net, b, epsilon.unwrap_or(self.epsilon), arena)?;
        Ok(Outcome {
            report: RoundReport::from_ledger(net.ledger()),
            value: solve,
        })
    }

    /// The underlying solver state (sparsifier, κ, certificates).
    pub fn solver(&self) -> &LaplacianSolver {
        &self.solver
    }

    /// Number of right-hand sides solved so far.
    pub fn solves(&self) -> u64 {
        self.solves
    }

    /// Cumulative report of this handle: preprocessing charged once plus all
    /// solves so far.
    pub fn report(&self) -> RoundReport {
        RoundReport::from_ledger(self.net.ledger())
    }

    /// Snapshot of the cost of the preprocessing stage alone, charged exactly
    /// once no matter how many solves follow.
    pub fn preprocessing_report(&self) -> &RoundReport {
        &self.preprocessing
    }

    /// Merges this handle's communication cost into `session`'s cumulative
    /// ledger and returns the final report.
    pub fn finish(self, session: &mut Session) -> RoundReport {
        session.absorb(&self.net)
    }
}
