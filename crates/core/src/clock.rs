//! Injectable time sources for the streaming service layer.
//!
//! Every time-dependent decision a [`crate::stream::StreamEngine`] makes —
//! anchoring a submission's deadline, sweeping expired jobs before dispatch,
//! timestamping jobs for the latency percentiles, measuring wall-clock
//! service time for the cost model's calibrated service rate — reads one
//! [`Clock`] instead of calling [`Instant::now`] directly. Production
//! engines run on the default [`SystemClock`]; deterministic harnesses (the
//! load harness in the `bench` crate, tests) inject a [`VirtualClock`] they
//! advance explicitly, which makes deadline expiry, latency samples and
//! service observations pure functions of the test script instead of the
//! host's scheduler.
//!
//! A clock reports time as the [`Duration`] since its own epoch (engine
//! construction for [`SystemClock`], zero for a fresh [`VirtualClock`]);
//! only differences of readings are ever interpreted, so the epoch itself
//! is arbitrary. Clocks must be monotone: a reading is never smaller than
//! an earlier one. A **frozen** virtual clock is legal and useful — time
//! simply never passes, so queued deadlines never expire and every latency
//! sample is exactly zero; note that observed service times are then zero
//! too, which leaves the cost model's service rate effectively uncalibrated
//! (deadline admission admits everything, exactly like a fresh engine).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotone time source, read as the duration since the clock's epoch.
///
/// Implementations must be cheap to read and safe to share across worker
/// threads. See the [module documentation](self) for the contract.
pub trait Clock: Send + Sync + fmt::Debug {
    /// The current time: the duration elapsed since the clock's epoch.
    fn now(&self) -> Duration;
}

/// The default production clock: wall-clock time measured from the moment
/// the clock was created (via [`Instant`], so it is monotone even across
/// system clock adjustments).
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A system clock whose epoch is the moment of this call.
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// A manually driven clock for deterministic tests and simulations: time
/// stands still until [`VirtualClock::advance`] (or [`VirtualClock::set`])
/// moves it. Readings are nanosecond-precise and shared across threads.
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock frozen at its epoch (time zero).
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Advances the clock by `by` (saturating at the `u64` nanosecond
    /// range, ~584 years).
    pub fn advance(&self, by: Duration) {
        let by = u64::try_from(by.as_nanos()).unwrap_or(u64::MAX);
        // Saturating add via CAS: fetch_add could wrap past u64::MAX.
        let mut current = self.nanos.load(Ordering::SeqCst);
        loop {
            let next = current.saturating_add(by);
            match self
                .nanos
                .compare_exchange(current, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Moves the clock forward to `to` (a duration since the epoch). A
    /// target in the past is ignored — the clock stays monotone.
    pub fn set(&self, to: Duration) {
        let to = u64::try_from(to.as_nanos()).unwrap_or(u64::MAX);
        self.nanos.fetch_max(to, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotone_and_starts_near_zero() {
        let clock = SystemClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
        assert!(a < Duration::from_secs(60), "epoch is the creation moment");
    }

    #[test]
    fn virtual_clock_only_moves_when_driven() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.advance(Duration::from_millis(5));
        assert_eq!(clock.now(), Duration::from_millis(5));
        clock.advance(Duration::from_nanos(1));
        assert_eq!(clock.now(), Duration::from_nanos(5_000_001));
        clock.set(Duration::from_secs(1));
        assert_eq!(clock.now(), Duration::from_secs(1));
        // Setting backwards is ignored: the clock is monotone.
        clock.set(Duration::from_millis(1));
        assert_eq!(clock.now(), Duration::from_secs(1));
    }

    #[test]
    fn virtual_clock_saturates_instead_of_wrapping() {
        let clock = VirtualClock::new();
        clock.advance(Duration::from_nanos(u64::MAX));
        clock.advance(Duration::from_secs(1));
        assert_eq!(clock.now(), Duration::from_nanos(u64::MAX));
    }
}
