//! Batch serving of pipeline requests — a concurrent engine on top of
//! [`Session`].
//!
//! A [`BatchEngine`] accepts a queue of heterogeneous [`Request`]s (one per
//! paper pipeline: sparsify / Laplacian solve / LP / min-cost max-flow),
//! executes them across a pool of scoped worker threads and routes every
//! Laplacian solve through the **sharded, bounded, fingerprint-keyed
//! [`crate::session::PreparedLaplacian`] cache** of [`crate::cache`] — so
//! repeated solves on
//! the same topology pay the sparsifier preprocessing of Theorem 1.3 once
//! across the whole batch, no matter which worker serves them. The same
//! request/cache machinery also powers the incremental front-end of
//! [`crate::stream`].
//!
//! # Determinism contract
//!
//! Scheduling never leaks into results. Each request runs on its own
//! [`Session`] whose seed is a pure function of the engine's master seed and
//! the request index ([`BatchEngine::request_seed`]), and Laplacian
//! preprocessing is seeded by the master seed alone (that is exactly what
//! makes it shareable across the batch). Concretely, [`BatchEngine::run`] is
//! bit-identical to this sequential loop:
//!
//! ```text
//! for (i, request) in requests.iter().enumerate() {
//!     match request {
//!         // sparsify / lp / min-cost max-flow:
//!         _ => Session::builder().model(model).seed(engine.request_seed(i))
//!             .epsilon(epsilon).build().serve(request),
//!         // laplacian solve: one prepared handle per distinct graph,
//!         // preprocessed at the master seed, solves in index order:
//!         Laplacian { graph, b, .. } => prepared_for(graph).solve(b),
//!     }
//! }
//! ```
//!
//! `tests/batch.rs` enforces this equivalence for all four pipelines. The
//! contract survives cache eviction too: a prepared solver is a pure
//! function of `(master seed, graph)`, so a bounded cache
//! ([`BatchEngineBuilder::cache_capacity`]) only re-pays preprocessing, it
//! never changes a result.
//!
//! # Example
//!
//! ```
//! use bcc_core::batch::{BatchEngine, Request};
//! use bcc_core::graph::generators;
//!
//! let grid = generators::grid(4, 4);
//! let mut b1 = vec![0.0; grid.n()];
//! b1[0] = 1.0;
//! b1[15] = -1.0;
//! let mut b2 = vec![0.0; grid.n()];
//! b2[3] = 1.0;
//! b2[12] = -1.0;
//!
//! let mut engine = BatchEngine::builder().seed(2022).build();
//! let output = engine.run(&[
//!     Request::laplacian(grid.clone(), b1),
//!     Request::laplacian(grid.clone(), b2), // same graph: preprocessing cached
//!     Request::sparsify(generators::complete(12), 0.5),
//! ]);
//! assert!(output.results.iter().all(|r| r.is_ok()));
//! // The two solves share one preprocessing pass.
//! assert_eq!(output.report.preprocessing.len(), 1);
//! assert_eq!(output.report.cache_hits, 1);
//! assert_eq!(output.report.cache.misses, 1);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use bcc_graph::{fingerprint, GraphFingerprint};
use bcc_laplacian::ScratchArena;
use bcc_runtime::{ModelConfig, RoundLedger};
use serde::{Deserialize, Serialize};

use crate::cache::{CacheEntry, CacheStats, EvictionPolicy};
use crate::config::{ConfigError, EngineConfig};
use crate::cost::{CostDims, CostModel};
use crate::error::Error;
use crate::report::RoundReport;
use crate::serve::{EngineCore, RequestRecord};
use crate::session::{Outcome, Session};
use crate::telemetry::TelemetrySink;

pub use crate::serve::{Request, Response};

/// Cost accounting of one distinct Laplacian preprocessing in a batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreprocessingCost {
    /// Hex form of the graph fingerprint keying the cache entry.
    pub fingerprint: String,
    /// Number of requests in this batch routed through the entry.
    pub requests: u64,
    /// Whether the entry predated this batch (its preprocessing was charged
    /// by an earlier batch and is *not* part of this report's totals).
    pub cached: bool,
    /// Communication cost of the preprocessing stage (sparsifier build).
    pub report: RoundReport,
}

/// Cost accounting of one request in a batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestCost {
    /// Position in the submitted batch.
    pub index: u64,
    /// Pipeline name ([`Request::kind`]).
    pub kind: String,
    /// The derived per-request seed ([`BatchEngine::request_seed`]).
    pub seed: u64,
    /// Hex fingerprint of the request's graph (Laplacian requests only).
    pub fingerprint: Option<String>,
    /// Whether the request reused a prepared solver built for an earlier
    /// request (or an earlier batch) instead of paying preprocessing itself.
    pub cache_hit: bool,
    /// Whether the request succeeded.
    pub ok: bool,
    /// The display form of the error, for failed requests.
    pub error: Option<String>,
    /// Communication cost of this request alone (for Laplacian requests:
    /// the solve, excluding shared preprocessing). Zero for failed requests:
    /// partial work preceding a typed error is discarded, not metered.
    pub report: RoundReport,
}

/// Aggregated, serializable accounting of one [`BatchEngine::run`] — the
/// payload of the `BENCH_batch.json` trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchReport {
    /// Schema tag consumers can dispatch on (`"bcc-batch-report/v1"`).
    pub schema: String,
    /// Number of requests in the batch.
    pub requests: u64,
    /// Number of failed requests.
    pub failures: u64,
    /// Laplacian requests that reused a prepared solver.
    pub cache_hits: u64,
    /// Laplacian requests that paid preprocessing (first occurrence of a
    /// fingerprint not seen in any earlier batch).
    pub cache_misses: u64,
    /// Hit/miss/eviction counters of the engine's [`crate::cache`], as of
    /// the end of this run. Unlike [`BatchReport::cache_hits`] (per-request,
    /// per-batch accounting), these count cache-level lookup and eviction
    /// events over the engine's whole lifetime.
    pub cache: CacheStats,
    /// Total *accounted* communication cost of the batch: every successful
    /// request's report plus each *newly built* preprocessing charged exactly
    /// once. Failed requests contribute zero — the rounds a failing pipeline
    /// spent before its typed error surface nowhere, because they stay on the
    /// worker session that is discarded with the error (see
    /// [`RequestCost::report`]).
    pub total: RoundReport,
    /// Per-distinct-fingerprint preprocessing costs, in first-use order.
    pub preprocessing: Vec<PreprocessingCost>,
    /// Per-request costs, in submission order.
    pub per_request: Vec<RequestCost>,
}

/// The version tag written into [`BatchReport::schema`].
pub const BATCH_REPORT_SCHEMA: &str = "bcc-batch-report/v1";

/// Everything a batch run returns: the per-request results in submission
/// order plus the aggregated [`BatchReport`].
#[derive(Debug, Clone)]
pub struct BatchOutput {
    /// One result per request, in submission order. Failures are isolated:
    /// one malformed request does not poison the others.
    pub results: Vec<Result<Outcome<Response>, Error>>,
    /// Aggregated accounting of the run.
    pub report: BatchReport,
}

/// Builder of a [`BatchEngine`].
///
/// Shares the serde-roundtrippable [`EngineConfig`] schema with
/// [`crate::stream::StreamEngineBuilder`]: the fluent setters are thin
/// wrappers over one internally held config, and
/// [`BatchEngineBuilder::from_config`] consumes a validated config
/// directly. The stream-only knobs of the schema (queue capacity,
/// backpressure, class weights and rate limits, elastic worker bounds,
/// cost-aware tags) do not apply to a batch engine and are ignored here.
#[derive(Debug, Clone)]
pub struct BatchEngineBuilder {
    /// The shared deterministic knobs; see the struct docs for which of
    /// them a batch engine reads.
    config: EngineConfig,
    /// The cost model the engine starts from; `None` builds a default one.
    cost_model: Option<Arc<CostModel>>,
    /// The engine's telemetry sink; disabled by default.
    telemetry: TelemetrySink,
}

impl Default for BatchEngineBuilder {
    fn default() -> Self {
        BatchEngineBuilder {
            config: EngineConfig::default(),
            cost_model: None,
            telemetry: TelemetrySink::disabled(),
        }
    }
}

impl BatchEngineBuilder {
    /// Starts a builder from a validated [`EngineConfig`] — the same
    /// schema [`crate::stream::StreamEngineBuilder::from_config`] and the
    /// `bcc-served` daemon consume.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] of [`EngineConfig::validate`].
    pub fn from_config(config: EngineConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(BatchEngineBuilder {
            config,
            ..BatchEngineBuilder::default()
        })
    }

    /// The builder's current [`EngineConfig`] — round-trips through
    /// [`BatchEngineBuilder::from_config`] unchanged.
    pub fn to_config(&self) -> EngineConfig {
        self.config.clone()
    }

    /// Sets the clique model configuration of the worker sessions.
    pub fn model(mut self, model: ModelConfig) -> Self {
        self.config.model = model;
        self
    }

    /// Sets the master seed per-request seeds are derived from.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the default solve accuracy of the worker sessions.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.config.epsilon = epsilon;
        self
    }

    /// Sets the worker-thread count (default: the machine's available
    /// parallelism, capped at 8). A count of 1 degenerates to a sequential
    /// loop — useful to observe the determinism contract directly.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = Some(workers.max(1));
        self
    }

    /// Sets the number of cache shards (default 16).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards.max(1);
        self
    }

    /// Bounds the prepared-Laplacian cache to at most `capacity` entries,
    /// evicting least-recently-used entries beyond it (default: unbounded).
    /// Entries of the batch currently being served are pinned, so eviction
    /// only affects retention *across* batches — and since preprocessing is
    /// a pure function of `(master seed, graph)`, eviction re-pays rounds
    /// but never changes a result.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.config.cache_capacity = Some(capacity);
        self
    }

    /// Selects the cache eviction policy (default [`EvictionPolicy::Lru`]).
    /// Only relevant under a [`BatchEngineBuilder::cache_capacity`] bound;
    /// the policy decides *which* preprocessing is re-paid after eviction,
    /// never any result.
    pub fn eviction_policy(mut self, policy: EvictionPolicy) -> Self {
        self.config.eviction_policy = policy;
        self
    }

    /// Replaces the engine's [`CostModel`] (default: a fresh model with the
    /// standard priors). The batch engine consults it for cost-aware cache
    /// eviction and calibrates its preprocessing rate from every build;
    /// whatever it predicts may only affect eviction victims, never any
    /// result.
    pub fn cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = Some(Arc::new(model));
        self
    }

    /// Attaches a live [`TelemetrySink`] (default: disabled, which costs a
    /// single `Option` check per instrumentation point). The batch engine
    /// records the live cache counters (`cache.hits` / `cache.misses` /
    /// `cache.evictions`) into the sink's registry; it has no injectable
    /// clock, so — unlike [`crate::stream::StreamEngineBuilder::telemetry`]
    /// — it emits no lifecycle trace events. Telemetry is write-only and
    /// never changes scheduling or results.
    pub fn telemetry(mut self, sink: TelemetrySink) -> Self {
        self.telemetry = sink;
        self
    }

    /// Copies model, seed and epsilon from an existing [`Session`], so the
    /// engine serves exactly what that session would serve.
    pub fn from_session(self, session: &Session) -> Self {
        self.model(session.model())
            .seed(session.seed())
            .epsilon(session.epsilon())
    }

    /// Finishes the builder.
    pub fn build(self) -> BatchEngine {
        let workers = self.config.workers.unwrap_or_else(|| {
            thread::available_parallelism()
                .map(|p| p.get().min(8))
                .unwrap_or(4)
        });
        BatchEngine {
            core: EngineCore::new(
                self.config.model,
                self.config.seed,
                self.config.epsilon,
                self.config.shards,
                self.config.cache_capacity,
                self.config.eviction_policy,
                self.cost_model
                    .unwrap_or_else(|| Arc::new(CostModel::new())),
                self.telemetry,
            ),
            workers,
            ledger: RoundLedger::new(),
        }
    }
}

/// A concurrent batch server for the paper's four pipelines with a sharded,
/// bounded, fingerprint-keyed [`crate::session::PreparedLaplacian`] cache.
/// See the [module documentation](self) for the determinism contract.
#[derive(Debug)]
pub struct BatchEngine {
    core: EngineCore,
    workers: usize,
    ledger: RoundLedger,
}

impl Default for BatchEngine {
    fn default() -> Self {
        BatchEngine::builder().build()
    }
}

impl BatchEngine {
    /// Starts a builder with laboratory defaults (BCC model, seed 2022,
    /// `ε = 1e-6`, 16 shards, unbounded cache).
    pub fn builder() -> BatchEngineBuilder {
        BatchEngineBuilder::default()
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.core.seed
    }

    /// The worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of prepared Laplacian solvers currently cached (including
    /// cached preprocessing failures).
    pub fn cached_graphs(&self) -> usize {
        self.core.cache.len()
    }

    /// Hit/miss/eviction counters of the prepared-Laplacian cache over this
    /// engine's lifetime.
    pub fn cache_stats(&self) -> CacheStats {
        self.core.cache.stats()
    }

    /// The configured cache capacity bound (`None` = unbounded).
    pub fn cache_capacity(&self) -> Option<usize> {
        self.core.cache.capacity()
    }

    /// The configured cache eviction policy.
    pub fn eviction_policy(&self) -> EvictionPolicy {
        self.core.cache.policy()
    }

    /// The engine's shared cost model — calibrated by every preprocessing
    /// build, consulted by cost-aware eviction.
    pub fn cost_model(&self) -> &CostModel {
        &self.core.cost
    }

    /// Drops every cached prepared solver (counters are kept).
    pub fn clear_cache(&mut self) {
        self.core.cache.clear();
    }

    /// The deterministic seed of request `index`: a splitmix64 finalizer over
    /// the master seed and the index. A sequential [`Session`] seeded with
    /// this value reproduces the batch result of the request bit for bit
    /// (Laplacian preprocessing uses the master seed instead — it is shared
    /// across the whole batch). [`crate::stream::StreamEngine`] derives
    /// per-submission seeds with the same function, so a request produces
    /// the same result under either front-end.
    pub fn request_seed(&self, index: usize) -> u64 {
        self.core.request_seed(index)
    }

    /// Cumulative communication cost of every batch this engine served
    /// (per-request costs plus each preprocessing charged exactly once).
    pub fn cumulative_report(&self) -> RoundReport {
        RoundReport::from_ledger(&self.ledger)
    }

    /// Serves a batch: fingerprints the Laplacian requests, resolves each
    /// *distinct* graph against the cache once (building uncached entries in
    /// parallel and pinning every entry for the duration of the run), then
    /// executes all requests across the worker pool. Results come back in
    /// submission order; a failing request yields `Err` in its slot without
    /// affecting the others.
    pub fn run(&mut self, requests: &[Request]) -> BatchOutput {
        // Stage 0: fingerprint Laplacian requests (cheap, sequential).
        let fps: Vec<Option<GraphFingerprint>> = requests
            .iter()
            .map(|r| match r {
                Request::Laplacian { graph, .. } => Some(fingerprint(graph)),
                _ => None,
            })
            .collect();

        // Distinct fingerprints in first-occurrence order, and whether they
        // predate this batch.
        let mut order: Vec<GraphFingerprint> = Vec::new();
        let mut first_graph: HashMap<u128, usize> = HashMap::new();
        for (i, fp) in fps.iter().enumerate() {
            if let Some(fp) = fp {
                if let std::collections::hash_map::Entry::Vacant(slot) =
                    first_graph.entry(fp.as_u128())
                {
                    slot.insert(i);
                    order.push(*fp);
                }
            }
        }
        let pre_cached: HashMap<u128, bool> = order
            .iter()
            .map(|fp| (fp.as_u128(), self.core.cache.contains(*fp)))
            .collect();

        // Stage 1: resolve every distinct graph against the cache once, in
        // parallel, pinning the entries for this run — so a bounded cache
        // can evict between batches but never under a batch's feet.
        // Preprocessing is a pure function of (master seed, graph), so
        // scheduling cannot leak into the cached handles.
        let pinned: Vec<Arc<CacheEntry>> = self.parallel(&order, |_, fp, _arena| {
            let graph = match &requests[first_graph[&fp.as_u128()]] {
                Request::Laplacian { graph, .. } => graph,
                _ => unreachable!("fingerprints index laplacian requests"),
            };
            let (entry, _built) =
                self.core
                    .cache
                    .get_or_build(*fp, CostDims::of_graph(graph), || {
                        self.core.build_entry(graph)
                    });
            entry
        });
        let pinned: HashMap<u128, Arc<CacheEntry>> =
            order.iter().map(|fp| fp.as_u128()).zip(pinned).collect();

        // Stage 2: execute all requests across the pool.
        let results: Vec<Result<Outcome<Response>, Error>> =
            self.parallel(requests, |i, request, arena| {
                let entry = fps[i].map(|fp| &*pinned[&fp.as_u128()]);
                self.core.execute(i, request, entry, arena)
            });

        // Aggregate through the shared accounting core — deterministic:
        // everything depends only on the submission order and the
        // (deterministic) per-request outcomes.
        let records: Vec<RequestRecord> = requests
            .iter()
            .zip(&results)
            .enumerate()
            .map(|(i, (request, result))| {
                let (ok, error, report) = match result {
                    Ok(outcome) => (true, None, outcome.report.clone()),
                    Err(e) => (
                        false,
                        Some(e.to_string()),
                        RoundReport::from_ledger(&RoundLedger::new()),
                    ),
                };
                RequestRecord {
                    index: i as u64,
                    kind: request.kind(),
                    fingerprint: fps[i],
                    pre_cached: fps[i].is_some_and(|fp| pre_cached[&fp.as_u128()]),
                    ok,
                    error,
                    report,
                }
            })
            .collect();
        let accounting = self.core.account(records, |key| pinned[&key].1.clone());
        self.ledger.absorb(&accounting.ledger);

        BatchOutput {
            results,
            report: BatchReport {
                schema: BATCH_REPORT_SCHEMA.to_string(),
                requests: requests.len() as u64,
                failures: accounting.failures,
                cache_hits: accounting.cache_hits,
                cache_misses: accounting.cache_misses,
                cache: self.core.cache.stats(),
                total: accounting.total,
                preprocessing: accounting.preprocessing,
                per_request: accounting.per_request,
            },
        }
    }

    /// Runs `f` over `items` on the worker pool, collecting results in item
    /// order. With one worker this is a plain sequential loop. Every worker
    /// owns one [`ScratchArena`] for its whole run, so Laplacian solve
    /// buffers are reused across the requests it serves (they never affect
    /// results — only allocations).
    fn parallel<T: Sync, R: Send>(
        &self,
        items: &[T],
        f: impl Fn(usize, &T, &mut ScratchArena) -> R + Sync,
    ) -> Vec<R> {
        let workers = self.workers.min(items.len()).max(1);
        if workers == 1 {
            let mut arena = ScratchArena::new();
            return items
                .iter()
                .enumerate()
                .map(|(i, t)| f(i, t, &mut arena))
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<R>>> = Mutex::new(items.iter().map(|_| None).collect());
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut arena = ScratchArena::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let result = f(i, &items[i], &mut arena);
                        slots.lock().expect("result slots")[i] = Some(result);
                    }
                });
            }
        });
        slots
            .into_inner()
            .expect("result slots")
            .into_iter()
            .map(|slot| slot.expect("every index claimed by exactly one worker"))
            .collect()
    }
}
