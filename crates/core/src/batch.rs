//! Batch serving of pipeline requests — a concurrent engine on top of
//! [`Session`].
//!
//! A [`BatchEngine`] accepts a queue of heterogeneous [`Request`]s (one per
//! paper pipeline: sparsify / Laplacian solve / LP / min-cost max-flow),
//! executes them across a pool of scoped worker threads and routes every
//! Laplacian solve through a **sharded cache of [`PreparedLaplacian`]
//! handles keyed by the deterministic graph fingerprint** of
//! [`bcc_graph::fingerprint`] — so repeated solves on the same topology pay
//! the sparsifier preprocessing of Theorem 1.3 once across the whole batch,
//! no matter which worker serves them.
//!
//! # Determinism contract
//!
//! Scheduling never leaks into results. Each request runs on its own
//! [`Session`] whose seed is a pure function of the engine's master seed and
//! the request index ([`BatchEngine::request_seed`]), and Laplacian
//! preprocessing is seeded by the master seed alone (that is exactly what
//! makes it shareable across the batch). Concretely, [`BatchEngine::run`] is
//! bit-identical to this sequential loop:
//!
//! ```text
//! for (i, request) in requests.iter().enumerate() {
//!     match request {
//!         // sparsify / lp / min-cost max-flow:
//!         _ => Session::builder().model(model).seed(engine.request_seed(i))
//!             .epsilon(epsilon).build().serve(request),
//!         // laplacian solve: one prepared handle per distinct graph,
//!         // preprocessed at the master seed, solves in index order:
//!         Laplacian { graph, b, .. } => prepared_for(graph).solve(b),
//!     }
//! }
//! ```
//!
//! `tests/batch.rs` enforces this equivalence for all four pipelines.
//!
//! # Example
//!
//! ```
//! use bcc_core::batch::{BatchEngine, Request};
//! use bcc_core::graph::generators;
//!
//! let grid = generators::grid(4, 4);
//! let mut b1 = vec![0.0; grid.n()];
//! b1[0] = 1.0;
//! b1[15] = -1.0;
//! let mut b2 = vec![0.0; grid.n()];
//! b2[3] = 1.0;
//! b2[12] = -1.0;
//!
//! let mut engine = BatchEngine::builder().seed(2022).build();
//! let output = engine.run(&[
//!     Request::laplacian(grid.clone(), b1),
//!     Request::laplacian(grid.clone(), b2), // same graph: preprocessing cached
//!     Request::sparsify(generators::complete(12), 0.5),
//! ]);
//! assert!(output.results.iter().all(|r| r.is_ok()));
//! // The two solves share one preprocessing pass.
//! assert_eq!(output.report.preprocessing.len(), 1);
//! assert_eq!(output.report.cache_hits, 1);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use bcc_flow::{McmfOptions, McmfResult};
use bcc_graph::{fingerprint, FlowInstance, Graph, GraphFingerprint};
use bcc_laplacian::LaplacianSolve;
use bcc_lp::{LpInstance, LpSolution};
use bcc_runtime::{ModelConfig, RoundLedger};
use bcc_sparsifier::SparsifierOutput;
use serde::{Deserialize, Serialize};

use crate::error::Error;
use crate::report::RoundReport;
use crate::session::{LpRequest, Outcome, PreparedLaplacian, Session};

/// One pipeline request in a batch.
// Requests are queue items, not hot-loop values: the size skew between an
// LP instance and a sparsify request does not matter at this granularity.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Request {
    /// Theorem 1.2 — compute a `(1 ± ε)`-spectral sparsifier.
    Sparsify {
        /// The input graph.
        graph: Graph,
        /// Target accuracy `ε`.
        epsilon: f64,
    },
    /// Theorem 1.3 — solve `L_G x = b`. Preprocessing is shared across the
    /// batch through the fingerprint-keyed cache.
    Laplacian {
        /// The input graph (the cache key is its fingerprint).
        graph: Graph,
        /// The right-hand side.
        b: Vec<f64>,
        /// Per-solve accuracy; `None` uses the engine default.
        epsilon: Option<f64>,
    },
    /// Theorem 1.4 — solve a linear program.
    Lp {
        /// The LP instance.
        instance: LpInstance,
        /// Starting point, options and Gram-solver choice.
        request: LpRequest,
    },
    /// Theorem 1.1 — exact min-cost max-flow.
    MinCostMaxFlow {
        /// The flow instance.
        instance: FlowInstance,
        /// Explicit options; `None` derives laboratory options from the
        /// request seed.
        options: Option<McmfOptions>,
    },
}

impl Request {
    /// A sparsify request.
    pub fn sparsify(graph: Graph, epsilon: f64) -> Self {
        Request::Sparsify { graph, epsilon }
    }

    /// A Laplacian-solve request at the engine's default accuracy.
    pub fn laplacian(graph: Graph, b: Vec<f64>) -> Self {
        Request::Laplacian {
            graph,
            b,
            epsilon: None,
        }
    }

    /// A Laplacian-solve request at an explicit accuracy.
    pub fn laplacian_with_epsilon(graph: Graph, b: Vec<f64>, epsilon: f64) -> Self {
        Request::Laplacian {
            graph,
            b,
            epsilon: Some(epsilon),
        }
    }

    /// An LP request.
    pub fn lp(instance: LpInstance, request: LpRequest) -> Self {
        Request::Lp { instance, request }
    }

    /// A min-cost max-flow request with laboratory options.
    pub fn min_cost_max_flow(instance: FlowInstance) -> Self {
        Request::MinCostMaxFlow {
            instance,
            options: None,
        }
    }

    /// The request's pipeline name, as recorded in [`RequestCost::kind`].
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Sparsify { .. } => "sparsify",
            Request::Laplacian { .. } => "laplacian",
            Request::Lp { .. } => "lp",
            Request::MinCostMaxFlow { .. } => "mcmf",
        }
    }
}

/// The value computed by one [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Result of a [`Request::Sparsify`].
    Sparsify(SparsifierOutput),
    /// Result of a [`Request::Laplacian`].
    Laplacian(LaplacianSolve),
    /// Result of a [`Request::Lp`].
    Lp(LpSolution),
    /// Result of a [`Request::MinCostMaxFlow`].
    MinCostMaxFlow(McmfResult),
}

impl Response {
    /// The sparsifier output, if this is a sparsify response.
    pub fn as_sparsify(&self) -> Option<&SparsifierOutput> {
        match self {
            Response::Sparsify(v) => Some(v),
            _ => None,
        }
    }

    /// The Laplacian solve, if this is a Laplacian response.
    pub fn as_laplacian(&self) -> Option<&LaplacianSolve> {
        match self {
            Response::Laplacian(v) => Some(v),
            _ => None,
        }
    }

    /// The LP solution, if this is an LP response.
    pub fn as_lp(&self) -> Option<&LpSolution> {
        match self {
            Response::Lp(v) => Some(v),
            _ => None,
        }
    }

    /// The flow result, if this is a min-cost max-flow response.
    pub fn as_min_cost_max_flow(&self) -> Option<&McmfResult> {
        match self {
            Response::MinCostMaxFlow(v) => Some(v),
            _ => None,
        }
    }
}

/// Cost accounting of one distinct Laplacian preprocessing in a batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreprocessingCost {
    /// Hex form of the graph fingerprint keying the cache entry.
    pub fingerprint: String,
    /// Number of requests in this batch routed through the entry.
    pub requests: u64,
    /// Whether the entry predated this batch (its preprocessing was charged
    /// by an earlier batch and is *not* part of this report's totals).
    pub cached: bool,
    /// Communication cost of the preprocessing stage (sparsifier build).
    pub report: RoundReport,
}

/// Cost accounting of one request in a batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestCost {
    /// Position in the submitted batch.
    pub index: u64,
    /// Pipeline name ([`Request::kind`]).
    pub kind: String,
    /// The derived per-request seed ([`BatchEngine::request_seed`]).
    pub seed: u64,
    /// Hex fingerprint of the request's graph (Laplacian requests only).
    pub fingerprint: Option<String>,
    /// Whether the request reused a prepared solver built for an earlier
    /// request (or an earlier batch) instead of paying preprocessing itself.
    pub cache_hit: bool,
    /// Whether the request succeeded.
    pub ok: bool,
    /// The display form of the error, for failed requests.
    pub error: Option<String>,
    /// Communication cost of this request alone (for Laplacian requests:
    /// the solve, excluding shared preprocessing). Zero for failed requests:
    /// partial work preceding a typed error is discarded, not metered.
    pub report: RoundReport,
}

/// Aggregated, serializable accounting of one [`BatchEngine::run`] — the
/// payload of the `BENCH_batch.json` trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchReport {
    /// Schema tag consumers can dispatch on (`"bcc-batch-report/v1"`).
    pub schema: String,
    /// Number of requests in the batch.
    pub requests: u64,
    /// Number of failed requests.
    pub failures: u64,
    /// Laplacian requests that reused a prepared solver.
    pub cache_hits: u64,
    /// Laplacian requests that paid preprocessing (first occurrence of a
    /// fingerprint not seen in any earlier batch).
    pub cache_misses: u64,
    /// Total *accounted* communication cost of the batch: every successful
    /// request's report plus each *newly built* preprocessing charged exactly
    /// once. Failed requests contribute zero — the rounds a failing pipeline
    /// spent before its typed error surface nowhere, because they stay on the
    /// worker session that is discarded with the error (see
    /// [`RequestCost::report`]).
    pub total: RoundReport,
    /// Per-distinct-fingerprint preprocessing costs, in first-use order.
    pub preprocessing: Vec<PreprocessingCost>,
    /// Per-request costs, in submission order.
    pub per_request: Vec<RequestCost>,
}

/// The version tag written into [`BatchReport::schema`].
pub const BATCH_REPORT_SCHEMA: &str = "bcc-batch-report/v1";

/// Everything a batch run returns: the per-request results in submission
/// order plus the aggregated [`BatchReport`].
#[derive(Debug, Clone)]
pub struct BatchOutput {
    /// One result per request, in submission order. Failures are isolated:
    /// one malformed request does not poison the others.
    pub results: Vec<Result<Outcome<Response>, Error>>,
    /// Aggregated accounting of the run.
    pub report: BatchReport,
}

/// Builder of a [`BatchEngine`].
#[derive(Debug, Clone)]
pub struct BatchEngineBuilder {
    model: ModelConfig,
    seed: u64,
    epsilon: f64,
    workers: Option<usize>,
    shards: usize,
}

impl Default for BatchEngineBuilder {
    fn default() -> Self {
        BatchEngineBuilder {
            model: ModelConfig::bcc(),
            seed: 2022,
            epsilon: 1e-6,
            workers: None,
            shards: 16,
        }
    }
}

impl BatchEngineBuilder {
    /// Sets the clique model configuration of the worker sessions.
    pub fn model(mut self, model: ModelConfig) -> Self {
        self.model = model;
        self
    }

    /// Sets the master seed per-request seeds are derived from.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the default solve accuracy of the worker sessions.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the worker-thread count (default: the machine's available
    /// parallelism, capped at 8). A count of 1 degenerates to a sequential
    /// loop — useful to observe the determinism contract directly.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Sets the number of cache shards (default 16).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Copies model, seed and epsilon from an existing [`Session`], so the
    /// engine serves exactly what that session would serve.
    pub fn from_session(self, session: &Session) -> Self {
        self.model(session.model())
            .seed(session.seed())
            .epsilon(session.epsilon())
    }

    /// Finishes the builder.
    pub fn build(self) -> BatchEngine {
        let workers = self.workers.unwrap_or_else(|| {
            thread::available_parallelism()
                .map(|p| p.get().min(8))
                .unwrap_or(4)
        });
        BatchEngine {
            model: self.model,
            seed: self.seed,
            epsilon: self.epsilon,
            workers,
            cache: (0..self.shards)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            ledger: RoundLedger::new(),
        }
    }
}

/// A cache entry: the prepared handle (or the typed preprocessing error,
/// which is served to every request on that graph) plus its preprocessing
/// cost snapshot.
type CacheEntry = (Result<PreparedLaplacian, Error>, RoundReport);

/// A concurrent batch server for the paper's four pipelines with a sharded,
/// fingerprint-keyed [`PreparedLaplacian`] cache. See the [module
/// documentation](self) for the determinism contract.
#[derive(Debug)]
pub struct BatchEngine {
    model: ModelConfig,
    seed: u64,
    epsilon: f64,
    workers: usize,
    cache: Vec<Mutex<HashMap<u128, CacheEntry>>>,
    ledger: RoundLedger,
}

impl Default for BatchEngine {
    fn default() -> Self {
        BatchEngine::builder().build()
    }
}

impl BatchEngine {
    /// Starts a builder with laboratory defaults (BCC model, seed 2022,
    /// `ε = 1e-6`, 16 shards).
    pub fn builder() -> BatchEngineBuilder {
        BatchEngineBuilder::default()
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of prepared Laplacian solvers currently cached (including
    /// cached preprocessing failures).
    pub fn cached_graphs(&self) -> usize {
        self.cache
            .iter()
            .map(|s| s.lock().expect("shard").len())
            .sum()
    }

    /// Drops every cached prepared solver.
    pub fn clear_cache(&mut self) {
        for shard in &mut self.cache {
            shard.get_mut().expect("shard").clear();
        }
    }

    /// The deterministic seed of request `index`: a splitmix64 finalizer over
    /// the master seed and the index. A sequential [`Session`] seeded with
    /// this value reproduces the batch result of the request bit for bit
    /// (Laplacian preprocessing uses the master seed instead — it is shared
    /// across the whole batch).
    pub fn request_seed(&self, index: usize) -> u64 {
        bcc_runtime::splitmix64(
            self.seed
                .wrapping_add((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        )
    }

    /// Cumulative communication cost of every batch this engine served
    /// (per-request costs plus each preprocessing charged exactly once).
    pub fn cumulative_report(&self) -> RoundReport {
        RoundReport::from_ledger(&self.ledger)
    }

    fn worker_session(&self, seed: u64) -> Session {
        Session::builder()
            .model(self.model)
            .seed(seed)
            .epsilon(self.epsilon)
            .build()
    }

    fn shard(&self, fp: GraphFingerprint) -> &Mutex<HashMap<u128, CacheEntry>> {
        &self.cache[fp.shard(self.cache.len())]
    }

    fn cache_contains(&self, fp: GraphFingerprint) -> bool {
        self.shard(fp)
            .lock()
            .expect("shard")
            .contains_key(&fp.as_u128())
    }

    /// Clones only the prepared handle of a cache entry (the per-solve
    /// working copy), not its preprocessing report.
    fn prepared_for(&self, fp: GraphFingerprint) -> Option<Result<PreparedLaplacian, Error>> {
        self.shard(fp)
            .lock()
            .expect("shard")
            .get(&fp.as_u128())
            .map(|(prepared, _)| prepared.clone())
    }

    /// Clones only the preprocessing report of a cache entry, leaving the
    /// prepared solver (sparsifier + owned network) untouched.
    fn preprocessing_report_of(&self, fp: GraphFingerprint) -> Option<RoundReport> {
        self.shard(fp)
            .lock()
            .expect("shard")
            .get(&fp.as_u128())
            .map(|(_, report)| report.clone())
    }

    /// Builds (and caches) the prepared solver of one graph at the master
    /// seed, exactly as `Session::laplacian(graph).preprocess()` would.
    fn preprocess(&self, fp: GraphFingerprint, graph: &Graph) {
        let session = self.worker_session(self.seed);
        let entry: CacheEntry = match session.laplacian(graph).preprocess() {
            Ok(prepared) => {
                let report = prepared.preprocessing_report().clone();
                (Ok(prepared), report)
            }
            Err(e) => (
                Err(e),
                RoundReport {
                    total_rounds: 0,
                    total_bits: 0,
                    total_operations: 0,
                    breakdown: Vec::new(),
                },
            ),
        };
        self.shard(fp)
            .lock()
            .expect("shard")
            .insert(fp.as_u128(), entry);
    }

    fn execute(
        &self,
        index: usize,
        request: &Request,
        fp: Option<GraphFingerprint>,
    ) -> Result<Outcome<Response>, Error> {
        match request {
            Request::Sparsify { graph, epsilon } => self
                .worker_session(self.request_seed(index))
                .sparsify(graph, *epsilon)
                .map(|o| o.map(Response::Sparsify)),
            Request::Laplacian { b, epsilon, .. } => {
                let fp = fp.expect("laplacian requests are fingerprinted");
                let prepared = self.prepared_for(fp).expect("stage 1 populated the cache");
                let mut prepared = prepared?;
                let outcome = match epsilon {
                    Some(e) => prepared.solve_with_epsilon(b, *e),
                    None => prepared.solve(b),
                }?;
                Ok(outcome.map(Response::Laplacian))
            }
            Request::Lp { instance, request } => self
                .worker_session(self.request_seed(index))
                .lp(instance, request)
                .map(|o| o.map(Response::Lp)),
            Request::MinCostMaxFlow { instance, options } => {
                let mut session = self.worker_session(self.request_seed(index));
                match options {
                    Some(opts) => session.min_cost_max_flow_with(instance, opts),
                    None => session.min_cost_max_flow(instance),
                }
                .map(|o| o.map(Response::MinCostMaxFlow))
            }
        }
    }

    /// Serves a batch: fingerprints the Laplacian requests, preprocesses each
    /// *distinct, not-yet-cached* graph once (in parallel), then executes all
    /// requests across the worker pool. Results come back in submission
    /// order; a failing request yields `Err` in its slot without affecting
    /// the others.
    pub fn run(&mut self, requests: &[Request]) -> BatchOutput {
        // Stage 0: fingerprint Laplacian requests (cheap, sequential).
        let fps: Vec<Option<GraphFingerprint>> = requests
            .iter()
            .map(|r| match r {
                Request::Laplacian { graph, .. } => Some(fingerprint(graph)),
                _ => None,
            })
            .collect();

        // Distinct fingerprints in first-occurrence order, with use counts
        // and whether they predate this batch.
        let mut order: Vec<GraphFingerprint> = Vec::new();
        let mut uses: HashMap<u128, u64> = HashMap::new();
        let mut first_graph: HashMap<u128, usize> = HashMap::new();
        for (i, fp) in fps.iter().enumerate() {
            if let Some(fp) = fp {
                let count = uses.entry(fp.as_u128()).or_insert(0);
                if *count == 0 {
                    order.push(*fp);
                    first_graph.insert(fp.as_u128(), i);
                }
                *count += 1;
            }
        }
        let pre_cached: HashMap<u128, bool> = order
            .iter()
            .map(|fp| (fp.as_u128(), self.cache_contains(*fp)))
            .collect();

        // Stage 1: preprocess every distinct uncached graph once, in
        // parallel. Preprocessing is a pure function of (master seed, graph),
        // so scheduling cannot leak into the cached handles.
        let to_build: Vec<GraphFingerprint> = order
            .iter()
            .filter(|fp| !pre_cached[&fp.as_u128()])
            .copied()
            .collect();
        self.parallel(&to_build, |_, fp| {
            let graph = match &requests[first_graph[&fp.as_u128()]] {
                Request::Laplacian { graph, .. } => graph,
                _ => unreachable!("fingerprints index laplacian requests"),
            };
            self.preprocess(*fp, graph);
        });

        // Stage 2: execute all requests across the pool.
        let results: Vec<Result<Outcome<Response>, Error>> =
            self.parallel(requests, |i, request| self.execute(i, request, fps[i]));

        // Aggregate — deterministic: everything below depends only on the
        // submission order and the (deterministic) per-request outcomes.
        let mut seen: HashMap<u128, bool> = HashMap::new();
        let mut ledger = RoundLedger::new();
        let mut per_request = Vec::with_capacity(requests.len());
        let mut failures = 0u64;
        let mut cache_hits = 0u64;
        let mut cache_misses = 0u64;
        for (i, (request, result)) in requests.iter().zip(&results).enumerate() {
            let fp = fps[i];
            let cache_hit = match fp {
                Some(fp) => {
                    let first_use = !seen.contains_key(&fp.as_u128());
                    seen.insert(fp.as_u128(), true);
                    let hit = !first_use || pre_cached[&fp.as_u128()];
                    if hit {
                        cache_hits += 1;
                    } else {
                        cache_misses += 1;
                    }
                    hit
                }
                None => false,
            };
            let (ok, error, report) = match result {
                Ok(outcome) => (true, None, outcome.report.clone()),
                Err(e) => {
                    failures += 1;
                    (
                        false,
                        Some(e.to_string()),
                        RoundReport::from_ledger(&RoundLedger::new()),
                    )
                }
            };
            for (name, stats) in &report.breakdown {
                ledger.charge_phase(name, *stats);
            }
            per_request.push(RequestCost {
                index: i as u64,
                kind: request.kind().to_string(),
                seed: self.request_seed(i),
                fingerprint: fp.map(|f| f.to_hex()),
                cache_hit,
                ok,
                error,
                report,
            });
        }
        let preprocessing: Vec<PreprocessingCost> = order
            .iter()
            .map(|fp| {
                let cached = pre_cached[&fp.as_u128()];
                let report = self
                    .preprocessing_report_of(*fp)
                    .expect("stage 1 populated the cache");
                if !cached {
                    for (name, stats) in &report.breakdown {
                        ledger.charge_phase(name, *stats);
                    }
                }
                PreprocessingCost {
                    fingerprint: fp.to_hex(),
                    requests: uses[&fp.as_u128()],
                    cached,
                    report,
                }
            })
            .collect();

        let total = RoundReport::from_ledger(&ledger);
        self.ledger.absorb(&ledger);

        BatchOutput {
            results,
            report: BatchReport {
                schema: BATCH_REPORT_SCHEMA.to_string(),
                requests: requests.len() as u64,
                failures,
                cache_hits,
                cache_misses,
                total,
                preprocessing,
                per_request,
            },
        }
    }

    /// Runs `f` over `items` on the worker pool, collecting results in item
    /// order. With one worker this is a plain sequential loop.
    fn parallel<T: Sync, R: Send>(&self, items: &[T], f: impl Fn(usize, &T) -> R + Sync) -> Vec<R> {
        let workers = self.workers.min(items.len()).max(1);
        if workers == 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<R>>> = Mutex::new(items.iter().map(|_| None).collect());
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let result = f(i, &items[i]);
                    slots.lock().expect("result slots")[i] = Some(result);
                });
            }
        });
        slots
            .into_inner()
            .expect("result slots")
            .into_iter()
            .map(|slot| slot.expect("every index claimed by exactly one worker"))
            .collect()
    }
}
