//! A uniform interface over the paper's four theorem pipelines.
//!
//! [`BccAlgorithm`] lets harnesses (the `bench` crate, the examples) drive
//! every pipeline through one generic entry point and collect structured
//! [`crate::RoundReport`]s without knowing which theorem is underneath — the shape a
//! serving system needs to meter heterogeneous traffic uniformly.

use bcc_graph::{FlowInstance, Graph};
use bcc_laplacian::LaplacianSolve;
use bcc_lp::{LpInstance, LpSolution};
use bcc_sparsifier::SparsifierOutput;

use crate::error::Error;
use crate::session::{LpRequest, Outcome, Session};

/// One of the paper's theorem pipelines, drivable generically by a harness.
pub trait BccAlgorithm {
    /// The problem the pipeline consumes.
    type Input;
    /// The solution it produces.
    type Output;

    /// Short machine-usable name (e.g. `"sparsify"`).
    fn name(&self) -> &'static str;

    /// The theorem of the paper this pipeline realizes.
    fn theorem(&self) -> &'static str;

    /// Runs the pipeline on a session.
    ///
    /// # Errors
    ///
    /// Propagates the session's [`Error`] for malformed input.
    fn run(
        &self,
        session: &mut Session,
        input: &Self::Input,
    ) -> Result<Outcome<Self::Output>, Error>;
}

/// Theorem 1.2: spectral sparsification in the Broadcast CONGEST model.
#[derive(Debug, Clone, Copy)]
pub struct SparsifyAlgorithm {
    /// Target quality `ε`.
    pub epsilon: f64,
}

impl BccAlgorithm for SparsifyAlgorithm {
    type Input = Graph;
    type Output = SparsifierOutput;

    fn name(&self) -> &'static str {
        "sparsify"
    }

    fn theorem(&self) -> &'static str {
        "Theorem 1.2 (spectral sparsifier, Broadcast CONGEST)"
    }

    fn run(
        &self,
        session: &mut Session,
        input: &Graph,
    ) -> Result<Outcome<SparsifierOutput>, Error> {
        session.sparsify(input, self.epsilon)
    }
}

/// A Laplacian system `L_G x = b`.
#[derive(Debug, Clone)]
pub struct LaplacianProblem {
    /// The graph whose Laplacian is solved.
    pub graph: Graph,
    /// Right-hand side (projected to mean zero by the solver).
    pub b: Vec<f64>,
}

/// Theorem 1.3: the Laplacian solver in the Broadcast Congested Clique.
#[derive(Debug, Clone, Copy)]
pub struct LaplacianAlgorithm {
    /// Solve accuracy `ε ∈ (0, 1/2]`.
    pub epsilon: f64,
}

impl BccAlgorithm for LaplacianAlgorithm {
    type Input = LaplacianProblem;
    type Output = LaplacianSolve;

    fn name(&self) -> &'static str {
        "laplacian"
    }

    fn theorem(&self) -> &'static str {
        "Theorem 1.3 (Laplacian solver, BCC)"
    }

    fn run(
        &self,
        session: &mut Session,
        input: &LaplacianProblem,
    ) -> Result<Outcome<LaplacianSolve>, Error> {
        let mut prepared = session
            .laplacian(&input.graph)
            .epsilon(self.epsilon)
            .preprocess()?;
        // Charge the session even when the solve fails — the preprocessing
        // rounds were simulated either way.
        let result = prepared.solve(&input.b);
        let full_cost = prepared.report();
        prepared.finish(session);
        let outcome = result?;
        Ok(Outcome {
            value: outcome.value,
            // This request's cost is preprocessing plus its one solve.
            report: full_cost,
        })
    }
}

/// An LP together with its interior starting point and options.
#[derive(Debug, Clone)]
pub struct LpProblem {
    /// The instance `min { cᵀx : Aᵀx = b, l ≤ x ≤ u }`.
    pub instance: LpInstance,
    /// The request (starting point, options, Gram solver choice).
    pub request: LpRequest,
}

/// Theorem 1.4: the Lee–Sidford interior point LP solver in the BCC.
#[derive(Debug, Clone, Copy)]
pub struct LpAlgorithm;

impl BccAlgorithm for LpAlgorithm {
    type Input = LpProblem;
    type Output = LpSolution;

    fn name(&self) -> &'static str {
        "lp"
    }

    fn theorem(&self) -> &'static str {
        "Theorem 1.4 (LP solver, BCC)"
    }

    fn run(&self, session: &mut Session, input: &LpProblem) -> Result<Outcome<LpSolution>, Error> {
        session.lp(&input.instance, &input.request)
    }
}

/// Theorem 1.1: exact minimum cost maximum flow in the BCC.
#[derive(Debug, Clone, Copy)]
pub struct McmfAlgorithm;

impl BccAlgorithm for McmfAlgorithm {
    type Input = FlowInstance;
    type Output = bcc_flow::McmfResult;

    fn name(&self) -> &'static str {
        "min-cost max-flow"
    }

    fn theorem(&self) -> &'static str {
        "Theorem 1.1 (min-cost max-flow, BCC)"
    }

    fn run(
        &self,
        session: &mut Session,
        input: &FlowInstance,
    ) -> Result<Outcome<bcc_flow::McmfResult>, Error> {
        session.min_cost_max_flow(input)
    }
}
