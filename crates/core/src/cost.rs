//! The unified cost model every engine decision is priced by.
//!
//! The paper's contribution is a *cost model* — round complexity in the
//! Broadcast Congested Clique — yet a serving stack that schedules, admits
//! and evicts as if every request were a unit job throws that information
//! away. [`CostModel`] closes the gap: it predicts the work of one request
//! (estimated rounds) from its pipeline kind and instance dimensions, and
//! **calibrates itself online** from the actual
//! [`RoundLedger`](bcc_runtime::RoundLedger) charges every completed request
//! reports back.
//!
//! Three engine layers consume the predictions:
//!
//! 1. **Scheduling** — [`crate::stream::StreamEngine`]'s weighted fair queue
//!    charges each job's virtual finish tag with its estimated cost instead
//!    of one unit ([`crate::stream::StreamEngineBuilder::cost_aware_tags`],
//!    default on), so one enormous LP no longer counts like one tiny solve
//!    when apportioning class shares.
//! 2. **Admission** — [`crate::stream::StreamClient::submit_with_deadline`]
//!    rejects at submit time with [`crate::Error::DeadlineInfeasible`] when
//!    the class's expected wait (backlog cost ÷ weight share, converted to
//!    wall-clock through the calibrated service rate) already exceeds the
//!    deadline — instead of queueing work that is doomed to expire.
//! 3. **Eviction** — [`crate::cache::EvictionPolicy::CostAware`] retention
//!    scores use the model's *rebuild* estimates
//!    ([`CostKind::LaplacianPreprocess`]), so the cache keeps the entries
//!    whose loss would cost the most rounds to re-pay.
//!
//! # The calibration loop
//!
//! Every estimate is `base(kind, dims) × scale(kind)`, where
//!
//! * `base(kind, dims) = n + m` is a deterministic **work unit** count
//!   derived from the instance dimensions (vertices + edges; variables +
//!   constraints for LPs) — the shape of the prediction;
//! * `scale(kind)` is the calibrated **rounds per work unit**: the ratio of
//!   all observed actual rounds to all observed base units of that kind.
//!   Before the first observation a per-kind prior is used instead.
//!
//! Completed requests feed the loop through [`CostModel::observe`]: the
//! engines call it with the request's dimensions and the actual
//! `total_rounds` its [`crate::RoundReport`] charged. Because calibration
//! state is a pair of *sums* per kind, the fully-calibrated model is
//! independent of the order observations arrive in — only *mid-flight*
//! estimates depend on how much has been observed so far.
//!
//! The same loop also calibrates a **service rate** (wall-clock nanoseconds
//! per charged round, [`CostModel::observe_service`]): rounds are the
//! model's native currency, deadlines are wall-clock, and the service rate
//! is the bridge. Until the first completion calibrates it,
//! [`CostModel::expected_duration`] returns `None` and deadline admission
//! stays permissive — an engine that has never served anything cannot call
//! any deadline infeasible.
//!
//! # Determinism contract
//!
//! Predictions steer *latency-side* decisions only — dispatch order,
//! admission verdicts, eviction victims. Results stay bit-identical to the
//! sequential [`crate::Session`] loop whatever the model predicts (including
//! adversarial zero or huge estimates — `tests/stream.rs` proptests this).
//! Reported estimation errors ([`crate::stream::ClassStats`]) are computed
//! by **replaying** the calibration loop in submission order at aggregation
//! time, so they are pure functions of the admitted workload: the live
//! model's mid-flight estimates may diverge under concurrency, but the
//! *reported* predicted-vs-actual numbers never do. Wall-clock-derived
//! state (the service rate) is never reported.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use bcc_graph::Graph;

use crate::serve::Request;

/// The work categories the model prices separately. Each kind carries its
/// own prior and its own calibration sums — an LP round budget says nothing
/// about a sparsifier's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostKind {
    /// Theorem 1.2 — spectral sparsification of one graph.
    Sparsify,
    /// Theorem 1.3 — one Laplacian solve on a prepared topology (excludes
    /// preprocessing, which is priced as [`CostKind::LaplacianPreprocess`]).
    LaplacianSolve,
    /// Theorem 1.3 — building (or rebuilding, after eviction) the prepared
    /// solver of one topology.
    LaplacianPreprocess,
    /// Theorem 1.4 — one LP solve.
    Lp,
    /// Theorem 1.1 — one min-cost max-flow solve.
    Mcmf,
}

impl CostKind {
    const ALL: [CostKind; 5] = [
        CostKind::Sparsify,
        CostKind::LaplacianSolve,
        CostKind::LaplacianPreprocess,
        CostKind::Lp,
        CostKind::Mcmf,
    ];

    fn index(self) -> usize {
        match self {
            CostKind::Sparsify => 0,
            CostKind::LaplacianSolve => 1,
            CostKind::LaplacianPreprocess => 2,
            CostKind::Lp => 3,
            CostKind::Mcmf => 4,
        }
    }

    /// The uncalibrated prior: rounds per work unit assumed before the first
    /// observation of this kind. Deliberately coarse — one completion is
    /// enough to replace it with a measured rate.
    fn default_prior(self) -> u64 {
        match self {
            CostKind::Sparsify => 2,
            CostKind::LaplacianSolve => 1,
            CostKind::LaplacianPreprocess => 2,
            CostKind::Lp => 64,
            CostKind::Mcmf => 64,
        }
    }
}

/// The instance dimensions a prediction is derived from: vertices and edges
/// for graph pipelines, variables and constraints for LPs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostDims {
    /// Vertex count (variable count for LPs).
    pub n: u64,
    /// Edge count (constraint count for LPs).
    pub m: u64,
}

impl CostDims {
    /// Dimensions of a graph instance.
    pub fn of_graph(graph: &Graph) -> Self {
        CostDims {
            n: graph.n() as u64,
            m: graph.m() as u64,
        }
    }

    /// The deterministic work-unit count of an instance: `n + m`, floored at
    /// one unit so even degenerate instances carry a non-zero base.
    pub fn units(self) -> u64 {
        (self.n + self.m).max(1)
    }
}

/// Estimates are clamped to this many rounds, so adversarial priors cannot
/// push the scheduler's fixed-point tag arithmetic anywhere near overflow.
pub const MAX_ESTIMATE_ROUNDS: u64 = 1 << 40;

/// Per-kind calibration state: monotone sums, so the fully-observed state is
/// independent of observation order.
#[derive(Debug, Default)]
struct KindState {
    /// Sum of `dims.units()` over every observation of this kind.
    base_units: AtomicU64,
    /// Sum of actual rounds over every observation of this kind.
    actual_rounds: AtomicU64,
    /// Number of observations.
    observations: AtomicU64,
}

/// An online-calibrated predictor of per-request work (rounds), shared by
/// the scheduler, deadline admission and cache eviction. See the [module
/// documentation](self) for the calibration loop and the determinism
/// contract.
///
/// The model is thread-safe: estimates are lock-free reads, observations are
/// lock-free sums. A model starts from per-kind priors
/// ([`CostModel::new`], or [`CostModel::with_prior`] to override them — the
/// hook the adversarial proptests use) and converges to the measured
/// rounds-per-unit rate of each kind as completions feed back.
#[derive(Debug)]
pub struct CostModel {
    kinds: [KindState; 5],
    priors: [u64; 5],
    /// Service-rate calibration: total observed execution nanoseconds and
    /// the rounds they served. Never reported — wall-clock state stays out
    /// of the deterministic reports.
    service_nanos: AtomicU64,
    service_rounds: AtomicU64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::new()
    }
}

impl CostModel {
    /// A fresh model with the default per-kind priors and no observations.
    pub fn new() -> Self {
        CostModel {
            kinds: Default::default(),
            priors: CostKind::ALL.map(CostKind::default_prior),
            service_nanos: AtomicU64::new(0),
            service_rounds: AtomicU64::new(0),
        }
    }

    /// Overrides the prior (rounds per work unit assumed before the first
    /// observation) of one kind. Zero is allowed — a zero prior predicts
    /// zero rounds until calibrated, which the scheduler must (and does)
    /// survive; estimates above [`MAX_ESTIMATE_ROUNDS`] are clamped.
    pub fn with_prior(mut self, kind: CostKind, rounds_per_unit: u64) -> Self {
        self.priors[kind.index()] = rounds_per_unit;
        self
    }

    /// A fresh, observation-free model with the same priors as `self` — the
    /// deterministic replica the report aggregation replays the calibration
    /// loop on.
    pub(crate) fn fresh_replica(&self) -> CostModel {
        CostModel {
            kinds: Default::default(),
            priors: self.priors,
            service_nanos: AtomicU64::new(0),
            service_rounds: AtomicU64::new(0),
        }
    }

    /// The uncalibrated prior estimate of one kind at the given dimensions:
    /// `units × prior`, clamped to [`MAX_ESTIMATE_ROUNDS`]. A pure function
    /// of its arguments — this is the deterministic half of
    /// [`CostModel::estimate`], and what the cache reports its
    /// predicted-rebuild sums with (the calibrated estimate depends on
    /// observation order, which scheduling controls).
    pub fn prior_estimate(&self, kind: CostKind, dims: CostDims) -> u64 {
        let units = dims.units() as u128;
        let prior = self.priors[kind.index()] as u128;
        (units * prior).min(MAX_ESTIMATE_ROUNDS as u128) as u64
    }

    /// Predicts the rounds one request of `kind` at `dims` will charge:
    /// `units × (observed rounds ÷ observed units)` once the kind has been
    /// observed, the prior otherwise. Clamped to [`MAX_ESTIMATE_ROUNDS`].
    pub fn estimate(&self, kind: CostKind, dims: CostDims) -> u64 {
        let state = &self.kinds[kind.index()];
        let base = state.base_units.load(Ordering::Relaxed);
        if base == 0 {
            return self.prior_estimate(kind, dims);
        }
        let actual = state.actual_rounds.load(Ordering::Relaxed);
        let units = dims.units() as u128;
        let scaled = units * actual as u128 / base as u128;
        scaled.min(MAX_ESTIMATE_ROUNDS as u128) as u64
    }

    /// Predicts the rounds of one [`Request`]: its execution kind at its
    /// instance dimensions. For Laplacian requests this prices the *solve*
    /// alone; a possible preprocessing rebuild is priced separately with
    /// [`CostKind::LaplacianPreprocess`].
    pub fn estimate_request(&self, request: &Request) -> u64 {
        let (kind, dims) = request.cost_profile();
        self.estimate(kind, dims)
    }

    /// Feeds one completed unit of work back into the calibration loop.
    pub fn observe(&self, kind: CostKind, dims: CostDims, actual_rounds: u64) {
        let state = &self.kinds[kind.index()];
        state.base_units.fetch_add(dims.units(), Ordering::Relaxed);
        state
            .actual_rounds
            .fetch_add(actual_rounds, Ordering::Relaxed);
        state.observations.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations of one kind so far.
    pub fn observations(&self, kind: CostKind) -> u64 {
        self.kinds[kind.index()]
            .observations
            .load(Ordering::Relaxed)
    }

    /// Calibrates the service rate: `elapsed` of wall-clock execution served
    /// `rounds` charged rounds. Zero-round completions still count their
    /// time (they establish a floor for the rate).
    pub fn observe_service(&self, rounds: u64, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.service_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.service_rounds
            .fetch_add(rounds.max(1), Ordering::Relaxed);
    }

    /// Converts a round estimate into expected wall-clock time through the
    /// calibrated service rate. `None` until the first
    /// [`CostModel::observe_service`] — an uncalibrated model refuses to
    /// predict durations, which keeps deadline admission permissive on a
    /// fresh engine.
    pub fn expected_duration(&self, rounds: u64) -> Option<Duration> {
        let service_rounds = self.service_rounds.load(Ordering::Relaxed);
        if service_rounds == 0 {
            return None;
        }
        let nanos = self.service_nanos.load(Ordering::Relaxed);
        let expected = rounds as u128 * nanos as u128 / service_rounds as u128;
        Some(Duration::from_nanos(
            u64::try_from(expected).unwrap_or(u64::MAX),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::generators;

    #[test]
    fn priors_drive_estimates_until_the_first_observation() {
        let model = CostModel::new();
        let dims = CostDims { n: 10, m: 20 };
        assert_eq!(
            model.estimate(CostKind::Sparsify, dims),
            30 * CostKind::Sparsify.default_prior()
        );
        assert_eq!(
            model.estimate(CostKind::Sparsify, dims),
            model.prior_estimate(CostKind::Sparsify, dims)
        );
        // Kinds calibrate independently: observing LPs leaves sparsify on
        // its prior.
        model.observe(CostKind::Lp, CostDims { n: 4, m: 2 }, 600);
        assert_eq!(
            model.estimate(CostKind::Sparsify, dims),
            model.prior_estimate(CostKind::Sparsify, dims)
        );
        assert_eq!(model.observations(CostKind::Lp), 1);
        assert_eq!(model.observations(CostKind::Sparsify), 0);
    }

    #[test]
    fn calibration_converges_to_the_observed_rate() {
        let model = CostModel::new();
        // Two observations at 10 rounds per unit.
        model.observe(CostKind::LaplacianSolve, CostDims { n: 3, m: 2 }, 50);
        model.observe(CostKind::LaplacianSolve, CostDims { n: 7, m: 8 }, 150);
        // 200 rounds over 20 units -> 10 rounds/unit.
        let estimate = model.estimate(CostKind::LaplacianSolve, CostDims { n: 6, m: 4 });
        assert_eq!(estimate, 100);
        // Order independence: the same observations in the other order give
        // the same calibrated state.
        let other = CostModel::new();
        other.observe(CostKind::LaplacianSolve, CostDims { n: 7, m: 8 }, 150);
        other.observe(CostKind::LaplacianSolve, CostDims { n: 3, m: 2 }, 50);
        assert_eq!(
            other.estimate(CostKind::LaplacianSolve, CostDims { n: 6, m: 4 }),
            estimate
        );
    }

    #[test]
    fn zero_and_adversarial_priors_are_clamped_not_ub() {
        let zero = CostModel::new().with_prior(CostKind::Sparsify, 0);
        assert_eq!(
            zero.estimate(CostKind::Sparsify, CostDims { n: 100, m: 1000 }),
            0
        );
        let huge = CostModel::new().with_prior(CostKind::Sparsify, u64::MAX);
        assert_eq!(
            huge.estimate(CostKind::Sparsify, CostDims { n: 100, m: 1000 }),
            MAX_ESTIMATE_ROUNDS,
            "estimates are clamped"
        );
        // Degenerate dimensions still carry one work unit.
        assert_eq!(CostDims { n: 0, m: 0 }.units(), 1);
    }

    #[test]
    fn request_profiles_price_the_execution_kind_at_instance_dims() {
        let g = generators::grid(3, 3);
        let dims = CostDims::of_graph(&g);
        assert_eq!(dims, CostDims { n: 9, m: 12 });
        let model = CostModel::new();
        let request = Request::laplacian(g.clone(), vec![0.0; g.n()]);
        assert_eq!(
            model.estimate_request(&request),
            model.estimate(CostKind::LaplacianSolve, dims)
        );
        let request = Request::sparsify(g, 0.5);
        assert_eq!(
            model.estimate_request(&request),
            model.estimate(CostKind::Sparsify, dims)
        );
    }

    #[test]
    fn service_rate_is_none_until_calibrated_then_scales_linearly() {
        let model = CostModel::new();
        assert_eq!(model.expected_duration(1000), None);
        model.observe_service(100, Duration::from_micros(200));
        // 2 microseconds per round.
        assert_eq!(
            model.expected_duration(50),
            Some(Duration::from_micros(100))
        );
        assert_eq!(model.expected_duration(0), Some(Duration::ZERO));
    }

    #[test]
    fn replicas_copy_priors_but_not_observations() {
        let model = CostModel::new().with_prior(CostKind::Mcmf, 7);
        model.observe(CostKind::Mcmf, CostDims { n: 1, m: 1 }, 9999);
        let replica = model.fresh_replica();
        let dims = CostDims { n: 2, m: 3 };
        assert_eq!(replica.estimate(CostKind::Mcmf, dims), 5 * 7);
        assert_eq!(replica.observations(CostKind::Mcmf), 0);
        assert_eq!(replica.expected_duration(10), None);
    }
}
