//! The unified cost model every engine decision is priced by.
//!
//! The paper's contribution is a *cost model* — round complexity in the
//! Broadcast Congested Clique — yet a serving stack that schedules, admits
//! and evicts as if every request were a unit job throws that information
//! away. [`CostModel`] closes the gap: it predicts the work of one request
//! (estimated rounds) from its pipeline kind and instance dimensions, and
//! **calibrates itself online** from the actual
//! [`RoundLedger`](bcc_runtime::RoundLedger) charges every completed request
//! reports back.
//!
//! Three engine layers consume the predictions:
//!
//! 1. **Scheduling** — [`crate::stream::StreamEngine`]'s weighted fair queue
//!    charges each job's virtual finish tag with its estimated cost instead
//!    of one unit ([`crate::stream::StreamEngineBuilder::cost_aware_tags`],
//!    default on), so one enormous LP no longer counts like one tiny solve
//!    when apportioning class shares.
//! 2. **Admission** — [`crate::stream::StreamClient::submit_with_deadline`]
//!    rejects at submit time with [`crate::Error::DeadlineInfeasible`] when
//!    the class's expected wait (backlog cost ÷ weight share, converted to
//!    wall-clock through the calibrated service rate) already exceeds the
//!    deadline — instead of queueing work that is doomed to expire.
//! 3. **Eviction** — [`crate::cache::EvictionPolicy::CostAware`] retention
//!    scores use the model's *rebuild* estimates
//!    ([`CostKind::LaplacianPreprocess`]), so the cache keeps the entries
//!    whose loss would cost the most rounds to re-pay.
//!
//! A fourth consumer spends the estimates directly on capacity: the stream
//! engine's **elastic worker pool**
//! ([`crate::stream::StreamEngineBuilder::elastic_workers`]) sizes itself
//! from backlog cost ÷ the calibrated service rate.
//!
//! # Basis functions: the shape of the prediction
//!
//! Every estimate is `basis(kind, dims) × rate(kind, bucket)`, where
//! `basis(kind, dims)` is a deterministic **work unit** count shaped like
//! the kind's actual round complexity — not a flat `n + m`. A linear basis
//! under-prices the LP family by four orders of magnitude: their rounds are
//! dominated by nested SDD solves inside every interior-point-style
//! iteration, so work grows far faster than instance size. The bases:
//!
//! | kind | basis | shape |
//! |------|-------|-------|
//! | [`CostKind::Sparsify`] | `m·⌈log₂ n⌉` | spectral rounds per edge scale with `log n` levels |
//! | [`CostKind::LaplacianSolve`] | `m·⌈log₂ n⌉` | preconditioned iterations touch `m` edges over `log n` depth |
//! | [`CostKind::LaplacianPreprocess`] | `m·⌈log₂ n⌉` | building the preconditioner is solve-shaped |
//! | [`CostKind::Lp`] | `⌈√m⌉·⌈log₂ t⌉ × t·⌈log₂ t⌉`, `t = n+m` | `√m·log` iterations, each an SDD-solve-shaped `t·log t` inner step |
//! | [`CostKind::Mcmf`] | LP basis `× ⌈log₂ t⌉` | cost scaling runs an LP-shaped phase per `log` scale |
//!
//! All bases floor at one unit so degenerate instances still carry weight,
//! and saturate rather than overflow on adversarial dimensions.
//!
//! # Size-bucketed calibration
//!
//! One scalar coefficient per kind is still wrong when small and huge
//! instances disagree about rounds-per-basis-unit (constant factors drift
//! with size). Observations are therefore binned into log₂-sized
//! **`(kind, size-bucket)` cells**: the bucket of an instance is
//! `⌊log₂(n + m)⌋` ([`CostDims::bucket`]), so each cell covers one binary
//! order of magnitude of instance size. Each cell keeps three monotone sums
//! — basis units, actual rounds, observations — so the fully-observed state
//! of a cell is independent of the order observations arrive in.
//!
//! [`CostModel::estimate`] resolves a prediction in three steps:
//!
//! 1. **Exact cell** — if the instance's own `(kind, bucket)` cell has
//!    observations, use its measured rate.
//! 2. **Nearest calibrated bucket** — otherwise fall back to the calibrated
//!    cell of the same kind with the smallest bucket distance, preferring
//!    the *smaller* bucket on ties (deterministic, and biased toward
//!    under-charging rather than over-charging unseen larger sizes).
//! 3. **Prior** — with no observations of the kind at all, fall back to
//!    `basis × prior(kind)` ([`CostModel::prior_estimate`]), a pure function
//!    of the arguments.
//!
//! Completed requests feed the loop through [`CostModel::observe`]. A cell
//! with observations is **calibrated** ([`CostModel::is_calibrated`]);
//! deadline admission treats an uncalibrated bucket as unpriceable and
//! never rejects on its account.
//!
//! The same loop also calibrates a **service rate** (wall-clock nanoseconds
//! per charged round, [`CostModel::observe_service`]): rounds are the
//! model's native currency, deadlines are wall-clock, and the service rate
//! is the bridge. Until the first completion calibrates it,
//! [`CostModel::expected_duration`] returns `None` and deadline admission
//! stays permissive — an engine that has never served anything cannot call
//! any deadline infeasible.
//!
//! # Determinism contract
//!
//! Predictions steer *latency-side* decisions only — dispatch order,
//! admission verdicts, eviction victims, pool size. Results stay
//! bit-identical to the sequential [`crate::Session`] loop whatever the
//! model predicts (including adversarial zero or huge estimates —
//! `tests/stream.rs` proptests this). Reported estimation errors
//! ([`crate::stream::ClassStats`]) and the reported calibration snapshot
//! ([`CalibrationCell`]) are computed by **replaying** the calibration loop
//! in submission order at aggregation time, so they are pure functions of
//! the admitted workload: the live model's mid-flight estimates may diverge
//! under concurrency, but the *reported* predicted-vs-actual numbers never
//! do. Wall-clock-derived state (the service rate) is never reported.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use bcc_graph::Graph;
use serde::{Deserialize, Serialize};

use crate::serve::Request;

/// The work categories the model prices separately. Each kind carries its
/// own prior, its own basis function and its own calibration cells — an LP
/// round budget says nothing about a sparsifier's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostKind {
    /// Theorem 1.2 — spectral sparsification of one graph.
    Sparsify,
    /// Theorem 1.3 — one Laplacian solve on a prepared topology (excludes
    /// preprocessing, which is priced as [`CostKind::LaplacianPreprocess`]).
    LaplacianSolve,
    /// Theorem 1.3 — building (or rebuilding, after eviction) the prepared
    /// solver of one topology.
    LaplacianPreprocess,
    /// Theorem 1.4 — one LP solve.
    Lp,
    /// Theorem 1.1 — one min-cost max-flow solve.
    Mcmf,
}

/// `⌈log₂ x⌉` floored at one — the depth factor the bases share. Uses
/// `leading_zeros` instead of the newer `ilog2` intrinsics so the crate
/// keeps its conservative toolchain floor.
fn log2_ceil(x: u64) -> u64 {
    let x = x.max(2);
    u64::from(64 - (x - 1).leading_zeros())
}

/// `⌈√x⌉`, exact for every `u64` (the float seed is corrected by integer
/// steps, so the result is deterministic across platforms).
fn isqrt_ceil(x: u64) -> u64 {
    if x <= 1 {
        return x;
    }
    let mut r = (x as f64).sqrt() as u64;
    while r.saturating_mul(r) > x {
        r -= 1;
    }
    while r.saturating_mul(r) < x {
        r += 1;
    }
    r
}

impl CostKind {
    const ALL: [CostKind; 5] = [
        CostKind::Sparsify,
        CostKind::LaplacianSolve,
        CostKind::LaplacianPreprocess,
        CostKind::Lp,
        CostKind::Mcmf,
    ];

    fn index(self) -> usize {
        match self {
            CostKind::Sparsify => 0,
            CostKind::LaplacianSolve => 1,
            CostKind::LaplacianPreprocess => 2,
            CostKind::Lp => 3,
            CostKind::Mcmf => 4,
        }
    }

    /// The stable label this kind is reported under (matches the pipeline
    /// names in per-request reports).
    pub fn label(self) -> &'static str {
        match self {
            CostKind::Sparsify => "sparsify",
            CostKind::LaplacianSolve => "laplacian-solve",
            CostKind::LaplacianPreprocess => "laplacian-preprocess",
            CostKind::Lp => "lp",
            CostKind::Mcmf => "mcmf",
        }
    }

    /// The nonlinear work-unit count of one instance of this kind — the
    /// *shape* of the prediction (see the [module docs](self) for the
    /// table). Floored at one unit, saturating on adversarial dimensions.
    pub fn basis(self, dims: CostDims) -> u64 {
        let t = dims.units();
        let depth = log2_ceil(dims.n.max(2));
        let base = match self {
            CostKind::Sparsify | CostKind::LaplacianSolve | CostKind::LaplacianPreprocess => {
                dims.m.max(1).saturating_mul(depth)
            }
            CostKind::Lp => lp_basis(t, dims.m),
            CostKind::Mcmf => lp_basis(t, dims.m).saturating_mul(log2_ceil(t)),
        };
        base.max(1)
    }

    /// The uncalibrated prior: rounds per *basis* unit assumed before the
    /// first observation of this kind. Deliberately coarse — one completion
    /// in the right size bucket is enough to replace it with a measured
    /// rate. The LP-family priors are large because even the nonlinear
    /// basis counts abstract units, while their measured rounds-per-unit on
    /// the tracked trajectory (`bench`'s seed-2022 stream workload, the one
    /// CI's trend gate prices) sit in the thousands — nested `sdd solve
    /// (gremban)` charges dominate every interior iteration.
    fn default_prior(self) -> u64 {
        match self {
            CostKind::Sparsify => 4,
            CostKind::LaplacianSolve => 2,
            CostKind::LaplacianPreprocess => 2,
            CostKind::Lp => 5_000,
            CostKind::Mcmf => 2_000,
        }
    }
}

/// `⌈√m⌉·⌈log₂ t⌉` interior-point-style iterations, each dominated by an
/// SDD-solve-shaped `t·⌈log₂ t⌉` inner step.
fn lp_basis(t: u64, m: u64) -> u64 {
    let depth = log2_ceil(t);
    let iterations = isqrt_ceil(m.max(1)).saturating_mul(depth);
    let inner = t.saturating_mul(depth);
    iterations.saturating_mul(inner)
}

/// The instance dimensions a prediction is derived from: vertices and edges
/// for graph pipelines, variables and constraints for LPs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostDims {
    /// Vertex count (variable count for LPs).
    pub n: u64,
    /// Edge count (constraint count for LPs).
    pub m: u64,
}

/// Number of log₂ size buckets — one per possible bit position of
/// `n + m`, so every instance maps to exactly one bucket.
pub const SIZE_BUCKETS: usize = 64;

impl CostDims {
    /// Dimensions of a graph instance.
    pub fn of_graph(graph: &Graph) -> Self {
        CostDims {
            n: graph.n() as u64,
            m: graph.m() as u64,
        }
    }

    /// The raw size of an instance: `n + m`, floored at one so even
    /// degenerate instances carry a non-zero size.
    pub fn units(self) -> u64 {
        (self.n + self.m).max(1)
    }

    /// The calibration size bucket of this instance: `⌊log₂(n + m)⌋`, so
    /// each bucket covers one binary order of magnitude of instance size.
    pub fn bucket(self) -> usize {
        (63 - self.units().leading_zeros()) as usize
    }
}

/// Estimates are clamped to this many rounds, so adversarial priors cannot
/// push the scheduler's fixed-point tag arithmetic anywhere near overflow.
pub const MAX_ESTIMATE_ROUNDS: u64 = 1 << 40;

/// One `(kind, bucket)` calibration cell: monotone sums, so the
/// fully-observed state of a cell is independent of observation order.
#[derive(Debug, Default)]
struct Cell {
    /// Sum of `kind.basis(dims)` over every observation in this cell.
    basis_units: AtomicU64,
    /// Sum of actual rounds over every observation in this cell.
    actual_rounds: AtomicU64,
    /// Number of observations in this cell.
    observations: AtomicU64,
}

/// Per-kind calibration state: one cell per log₂ size bucket.
#[derive(Debug)]
struct KindState {
    cells: [Cell; SIZE_BUCKETS],
}

impl Default for KindState {
    fn default() -> Self {
        KindState {
            cells: std::array::from_fn(|_| Cell::default()),
        }
    }
}

/// One observed `(kind, size-bucket)` calibration cell, as snapshotted into
/// the deterministic stream report (replay-sourced — see the [module
/// docs](self) determinism contract). `actual_rounds / basis_units` is the
/// cell's calibrated rounds-per-basis-unit coefficient.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationCell {
    /// The [`CostKind::label`] of the cell's kind.
    pub kind: String,
    /// The log₂ size bucket (`⌊log₂(n + m)⌋`).
    pub bucket: u64,
    /// Observations accumulated in the cell.
    pub observations: u64,
    /// Sum of basis units over the cell's observations.
    pub basis_units: u64,
    /// Sum of actual rounds over the cell's observations.
    pub actual_rounds: u64,
}

/// An online-calibrated predictor of per-request work (rounds), shared by
/// the scheduler, deadline admission, cache eviction and the elastic worker
/// pool. See the [module documentation](self) for the basis/bucket design
/// and the determinism contract.
///
/// The model is thread-safe: estimates are lock-free reads, observations are
/// lock-free sums. A model starts from per-kind priors
/// ([`CostModel::new`], or [`CostModel::with_prior`] to override them — the
/// hook the adversarial proptests use) and converges, bucket by bucket, to
/// the measured rounds-per-basis-unit rate of each `(kind, size)` cell as
/// completions feed back.
#[derive(Debug)]
pub struct CostModel {
    kinds: [KindState; 5],
    priors: [u64; 5],
    /// Service-rate calibration: total observed execution nanoseconds and
    /// the rounds they served. Never reported — wall-clock state stays out
    /// of the deterministic reports.
    service_nanos: AtomicU64,
    service_rounds: AtomicU64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::new()
    }
}

impl CostModel {
    /// A fresh model with the default per-kind priors and no observations.
    pub fn new() -> Self {
        CostModel {
            kinds: Default::default(),
            priors: CostKind::ALL.map(CostKind::default_prior),
            service_nanos: AtomicU64::new(0),
            service_rounds: AtomicU64::new(0),
        }
    }

    /// Overrides the prior (rounds per basis unit assumed before the first
    /// observation) of one kind. Zero is allowed — a zero prior predicts
    /// zero rounds until calibrated, which the scheduler must (and does)
    /// survive; estimates above [`MAX_ESTIMATE_ROUNDS`] are clamped.
    pub fn with_prior(mut self, kind: CostKind, rounds_per_unit: u64) -> Self {
        self.priors[kind.index()] = rounds_per_unit;
        self
    }

    /// A fresh, observation-free model with the same priors as `self` — the
    /// deterministic replica the report aggregation replays the calibration
    /// loop on.
    pub(crate) fn fresh_replica(&self) -> CostModel {
        CostModel {
            kinds: Default::default(),
            priors: self.priors,
            service_nanos: AtomicU64::new(0),
            service_rounds: AtomicU64::new(0),
        }
    }

    /// The uncalibrated prior estimate of one kind at the given dimensions:
    /// `basis × prior`, clamped to [`MAX_ESTIMATE_ROUNDS`]. A pure function
    /// of its arguments — this is the deterministic floor of
    /// [`CostModel::estimate`], and what the cache reports its
    /// predicted-rebuild sums with (the calibrated estimate depends on
    /// observation order, which scheduling controls).
    pub fn prior_estimate(&self, kind: CostKind, dims: CostDims) -> u64 {
        let basis = kind.basis(dims) as u128;
        let prior = self.priors[kind.index()] as u128;
        (basis * prior).min(MAX_ESTIMATE_ROUNDS as u128) as u64
    }

    /// Predicts the rounds one request of `kind` at `dims` will charge:
    /// `basis × rate` where the rate comes from the instance's own
    /// `(kind, bucket)` cell when calibrated, the nearest calibrated bucket
    /// of the kind otherwise (smaller bucket wins ties), and the prior when
    /// the kind has never been observed. Clamped to
    /// [`MAX_ESTIMATE_ROUNDS`].
    pub fn estimate(&self, kind: CostKind, dims: CostDims) -> u64 {
        let cells = &self.kinds[kind.index()].cells;
        let bucket = dims.bucket();
        let source = if cell_rate(&cells[bucket]).is_some() {
            Some(bucket)
        } else {
            nearest_calibrated(cells, bucket)
        };
        match source.and_then(|b| cell_rate(&cells[b])) {
            Some((base, actual)) => {
                let basis = kind.basis(dims) as u128;
                let scaled = basis * actual as u128 / base as u128;
                scaled.min(MAX_ESTIMATE_ROUNDS as u128) as u64
            }
            None => self.prior_estimate(kind, dims),
        }
    }

    /// Predicts the rounds of one [`Request`]: its execution kind at its
    /// instance dimensions. For Laplacian requests this prices the *solve*
    /// alone; a possible preprocessing rebuild is priced separately with
    /// [`CostKind::LaplacianPreprocess`].
    pub fn estimate_request(&self, request: &Request) -> u64 {
        let (kind, dims) = request.cost_profile();
        self.estimate(kind, dims)
    }

    /// Feeds one completed unit of work back into the calibration loop —
    /// into the `(kind, bucket)` cell of the observed instance only; every
    /// other cell's predictions are untouched.
    pub fn observe(&self, kind: CostKind, dims: CostDims, actual_rounds: u64) {
        let cell = &self.kinds[kind.index()].cells[dims.bucket()];
        cell.basis_units
            .fetch_add(kind.basis(dims), Ordering::Relaxed);
        cell.actual_rounds
            .fetch_add(actual_rounds, Ordering::Relaxed);
        cell.observations.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations of one kind so far, across all size buckets.
    pub fn observations(&self, kind: CostKind) -> u64 {
        self.kinds[kind.index()]
            .cells
            .iter()
            .map(|cell| cell.observations.load(Ordering::Relaxed))
            .sum()
    }

    /// Whether the `(kind, bucket)` cell of this instance has been observed
    /// at least once. Deadline admission treats an uncalibrated bucket as
    /// unpriceable: a request whose own cell is cold is never rejected as
    /// infeasible, because its tag (and the queue ahead of it) may be
    /// priced off a prior that is wrong by orders of magnitude.
    pub fn is_calibrated(&self, kind: CostKind, dims: CostDims) -> bool {
        self.kinds[kind.index()].cells[dims.bucket()]
            .observations
            .load(Ordering::Relaxed)
            > 0
    }

    /// Snapshot of every observed `(kind, bucket)` cell, in stable
    /// `(kind, bucket)` order. Deterministic when taken on a replayed
    /// replica (the reports do exactly that).
    pub fn calibration_cells(&self) -> Vec<CalibrationCell> {
        let mut out = Vec::new();
        for kind in CostKind::ALL {
            for (bucket, cell) in self.kinds[kind.index()].cells.iter().enumerate() {
                let observations = cell.observations.load(Ordering::Relaxed);
                if observations == 0 {
                    continue;
                }
                out.push(CalibrationCell {
                    kind: kind.label().to_string(),
                    bucket: bucket as u64,
                    observations,
                    basis_units: cell.basis_units.load(Ordering::Relaxed),
                    actual_rounds: cell.actual_rounds.load(Ordering::Relaxed),
                });
            }
        }
        out
    }

    /// Calibrates the service rate: `elapsed` of wall-clock execution served
    /// `rounds` charged rounds. Zero-round completions still count their
    /// time (they establish a floor for the rate).
    pub fn observe_service(&self, rounds: u64, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.service_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.service_rounds
            .fetch_add(rounds.max(1), Ordering::Relaxed);
    }

    /// Publishes the model's calibration state into a telemetry registry as
    /// gauges: per-kind observation counts (`cost.observations.<kind>`), the
    /// number of calibrated `(kind, bucket)` cells (`cost.calibrated_cells`)
    /// and the service-rate sums (`cost.service_rounds` /
    /// `cost.service_nanos`). Read-only — publishing never perturbs the
    /// calibration loop, so the deterministic replay at report aggregation
    /// is unaffected.
    pub fn publish_metrics(&self, registry: &crate::telemetry::MetricsRegistry) {
        let mut calibrated_cells = 0u64;
        for kind in CostKind::ALL {
            registry
                .gauge(&format!("cost.observations.{}", kind.label()))
                .set(self.observations(kind));
            calibrated_cells += self.kinds[kind.index()]
                .cells
                .iter()
                .filter(|cell| cell.observations.load(Ordering::Relaxed) > 0)
                .count() as u64;
        }
        registry
            .gauge("cost.calibrated_cells")
            .set(calibrated_cells);
        registry
            .gauge("cost.service_rounds")
            .set(self.service_rounds.load(Ordering::Relaxed));
        registry
            .gauge("cost.service_nanos")
            .set(self.service_nanos.load(Ordering::Relaxed));
    }

    /// Converts a round estimate into expected wall-clock time through the
    /// calibrated service rate. `None` until the first
    /// [`CostModel::observe_service`] — an uncalibrated model refuses to
    /// predict durations, which keeps deadline admission permissive on a
    /// fresh engine.
    pub fn expected_duration(&self, rounds: u64) -> Option<Duration> {
        let service_rounds = self.service_rounds.load(Ordering::Relaxed);
        if service_rounds == 0 {
            return None;
        }
        let nanos = self.service_nanos.load(Ordering::Relaxed);
        let expected = rounds as u128 * nanos as u128 / service_rounds as u128;
        Some(Duration::from_nanos(
            u64::try_from(expected).unwrap_or(u64::MAX),
        ))
    }
}

/// The `(basis_units, actual_rounds)` sums of a cell, `None` while the cell
/// is cold.
fn cell_rate(cell: &Cell) -> Option<(u64, u64)> {
    if cell.observations.load(Ordering::Relaxed) == 0 {
        return None;
    }
    let base = cell.basis_units.load(Ordering::Relaxed);
    if base == 0 {
        return None;
    }
    Some((base, cell.actual_rounds.load(Ordering::Relaxed)))
}

/// The calibrated cell closest to `bucket` by bucket distance, preferring
/// the smaller bucket on ties. Deterministic given the set of calibrated
/// cells.
fn nearest_calibrated(cells: &[Cell; SIZE_BUCKETS], bucket: usize) -> Option<usize> {
    for distance in 1..SIZE_BUCKETS {
        if let Some(lower) = bucket.checked_sub(distance) {
            if cell_rate(&cells[lower]).is_some() {
                return Some(lower);
            }
        }
        let upper = bucket + distance;
        if upper < SIZE_BUCKETS && cell_rate(&cells[upper]).is_some() {
            return Some(upper);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::generators;

    #[test]
    fn priors_drive_estimates_until_the_first_observation() {
        let model = CostModel::new();
        let dims = CostDims { n: 10, m: 20 };
        assert_eq!(
            model.estimate(CostKind::Sparsify, dims),
            CostKind::Sparsify.basis(dims) * CostKind::Sparsify.default_prior()
        );
        assert_eq!(
            model.estimate(CostKind::Sparsify, dims),
            model.prior_estimate(CostKind::Sparsify, dims)
        );
        // Kinds calibrate independently: observing LPs leaves sparsify on
        // its prior.
        model.observe(CostKind::Lp, CostDims { n: 4, m: 2 }, 600);
        assert_eq!(
            model.estimate(CostKind::Sparsify, dims),
            model.prior_estimate(CostKind::Sparsify, dims)
        );
        assert_eq!(model.observations(CostKind::Lp), 1);
        assert_eq!(model.observations(CostKind::Sparsify), 0);
    }

    #[test]
    fn bases_are_nonlinear_and_floored() {
        // m log n for the sparsifier/solver family.
        let dims = CostDims { n: 16, m: 24 };
        assert_eq!(CostKind::LaplacianSolve.basis(dims), 24 * 4);
        assert_eq!(CostKind::LaplacianPreprocess.basis(dims), 24 * 4);
        assert_eq!(CostKind::Sparsify.basis(CostDims { n: 14, m: 91 }), 91 * 4);
        // LP: ceil(sqrt m) * log t iterations, each t log t.
        // t = 3, log = 2 -> iterations 1*2 = 2, inner 3*2 = 6, basis 12.
        assert_eq!(CostKind::Lp.basis(CostDims { n: 2, m: 1 }), 12);
        // MCMF adds one more log factor over the LP shape.
        assert_eq!(
            CostKind::Mcmf.basis(CostDims { n: 2, m: 1 }),
            CostKind::Lp.basis(CostDims { n: 2, m: 1 }) * 2
        );
        // Degenerate instances carry one unit; adversarial ones saturate.
        assert_eq!(CostKind::Sparsify.basis(CostDims { n: 0, m: 0 }), 1);
        assert!(
            CostKind::Mcmf.basis(CostDims {
                n: u64::MAX / 2,
                m: u64::MAX / 2
            }) > 0
        );
    }

    #[test]
    fn log2_and_sqrt_helpers_are_exact() {
        assert_eq!(log2_ceil(0), 1);
        assert_eq!(log2_ceil(1), 1);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(1 << 40), 40);
        assert_eq!(isqrt_ceil(0), 0);
        assert_eq!(isqrt_ceil(1), 1);
        assert_eq!(isqrt_ceil(2), 2);
        assert_eq!(isqrt_ceil(4), 2);
        assert_eq!(isqrt_ceil(5), 3);
        assert_eq!(isqrt_ceil(u64::MAX), 1 << 32);
    }

    #[test]
    fn buckets_cover_binary_orders_of_magnitude() {
        assert_eq!(CostDims { n: 0, m: 0 }.bucket(), 0);
        assert_eq!(CostDims { n: 1, m: 0 }.bucket(), 0);
        assert_eq!(CostDims { n: 1, m: 1 }.bucket(), 1);
        assert_eq!(CostDims { n: 2, m: 2 }.bucket(), 2);
        assert_eq!(CostDims { n: 16, m: 24 }.bucket(), 5);
        assert_eq!(CostDims { n: 25, m: 40 }.bucket(), 6);
        assert_eq!(
            CostDims {
                n: u64::MAX / 2,
                m: u64::MAX / 2
            }
            .bucket(),
            63
        );
    }

    #[test]
    fn calibration_converges_to_the_observed_rate_within_a_bucket() {
        let model = CostModel::new();
        // Two observations at 10 rounds per basis unit (m log n = 2*2=4 and
        // 8*3=24 units), landing in buckets 2 and 3; estimates in either
        // bucket see the measured rate.
        model.observe(CostKind::LaplacianSolve, CostDims { n: 3, m: 2 }, 40);
        model.observe(CostKind::LaplacianSolve, CostDims { n: 7, m: 8 }, 240);
        let dims = CostDims { n: 6, m: 4 };
        let estimate = model.estimate(CostKind::LaplacianSolve, dims);
        assert_eq!(estimate, CostKind::LaplacianSolve.basis(dims) * 10);
        // Order independence: the same observations in the other order give
        // the same calibrated state.
        let other = CostModel::new();
        other.observe(CostKind::LaplacianSolve, CostDims { n: 7, m: 8 }, 240);
        other.observe(CostKind::LaplacianSolve, CostDims { n: 3, m: 2 }, 40);
        assert_eq!(other.estimate(CostKind::LaplacianSolve, dims), estimate);
    }

    #[test]
    fn observations_in_one_bucket_leave_other_buckets_on_their_fallback() {
        let model = CostModel::new();
        let small = CostDims { n: 3, m: 2 }; // bucket 2
        let huge = CostDims {
            n: 1 << 20,
            m: 1 << 20,
        }; // bucket 21
        model.observe(CostKind::Sparsify, small, 1_000_000);
        assert!(model.is_calibrated(CostKind::Sparsify, small));
        assert!(!model.is_calibrated(CostKind::Sparsify, huge));
        // The huge bucket falls back to the nearest calibrated cell's rate,
        // not to a blend that would shift when the small bucket re-observes
        // proportionally.
        let rate_before = model.estimate(CostKind::Sparsify, huge);
        model.observe(CostKind::Sparsify, small, 1_000_000); // same rate again
        assert_eq!(model.estimate(CostKind::Sparsify, huge), rate_before);
    }

    #[test]
    fn fallback_prefers_the_nearest_then_smaller_bucket() {
        let model = CostModel::new();
        let lo = CostDims { n: 4, m: 2 }; // bucket 2, basis 2*2=4
        let hi = CostDims { n: 32, m: 32 }; // bucket 6, basis 32*5=160
        model.observe(CostKind::Sparsify, lo, 40); // 10 rounds/unit
        model.observe(CostKind::Sparsify, hi, 160); // 1 round/unit
                                                    // bucket 4 is equidistant from 2 and 6: the smaller bucket wins.
        let mid = CostDims { n: 8, m: 8 }; // bucket 4, basis 8*3=24
        assert_eq!(model.estimate(CostKind::Sparsify, mid), 24 * 10);
        // bucket 5 is strictly nearer to 6.
        let near_hi = CostDims { n: 16, m: 16 }; // bucket 5, basis 16*4=64
        assert_eq!(model.estimate(CostKind::Sparsify, near_hi), 64);
    }

    #[test]
    fn zero_and_adversarial_priors_are_clamped_not_ub() {
        let zero = CostModel::new().with_prior(CostKind::Sparsify, 0);
        assert_eq!(
            zero.estimate(CostKind::Sparsify, CostDims { n: 100, m: 1000 }),
            0
        );
        let huge = CostModel::new().with_prior(CostKind::Sparsify, u64::MAX);
        assert_eq!(
            huge.estimate(CostKind::Sparsify, CostDims { n: 100, m: 1000 }),
            MAX_ESTIMATE_ROUNDS,
            "estimates are clamped"
        );
        // Degenerate dimensions still carry one work unit.
        assert_eq!(CostDims { n: 0, m: 0 }.units(), 1);
    }

    #[test]
    fn request_profiles_price_the_execution_kind_at_instance_dims() {
        let g = generators::grid(3, 3);
        let dims = CostDims::of_graph(&g);
        assert_eq!(dims, CostDims { n: 9, m: 12 });
        let model = CostModel::new();
        let request = Request::laplacian(g.clone(), vec![0.0; g.n()]);
        assert_eq!(
            model.estimate_request(&request),
            model.estimate(CostKind::LaplacianSolve, dims)
        );
        let request = Request::sparsify(g, 0.5);
        assert_eq!(
            model.estimate_request(&request),
            model.estimate(CostKind::Sparsify, dims)
        );
    }

    #[test]
    fn calibration_cells_snapshot_observed_cells_in_stable_order() {
        let model = CostModel::new();
        assert!(model.calibration_cells().is_empty());
        model.observe(CostKind::Mcmf, CostDims { n: 3, m: 2 }, 100);
        model.observe(CostKind::Sparsify, CostDims { n: 16, m: 24 }, 50);
        model.observe(CostKind::Sparsify, CostDims { n: 16, m: 24 }, 70);
        let cells = model.calibration_cells();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].kind, "sparsify");
        assert_eq!(cells[0].bucket, 5);
        assert_eq!(cells[0].observations, 2);
        assert_eq!(cells[0].basis_units, 2 * 24 * 4);
        assert_eq!(cells[0].actual_rounds, 120);
        assert_eq!(cells[1].kind, "mcmf");
        assert_eq!(cells[1].observations, 1);
    }

    #[test]
    fn service_rate_is_none_until_calibrated_then_scales_linearly() {
        let model = CostModel::new();
        assert_eq!(model.expected_duration(1000), None);
        model.observe_service(100, Duration::from_micros(200));
        // 2 microseconds per round.
        assert_eq!(
            model.expected_duration(50),
            Some(Duration::from_micros(100))
        );
        assert_eq!(model.expected_duration(0), Some(Duration::ZERO));
    }

    #[test]
    fn replicas_copy_priors_but_not_observations() {
        let model = CostModel::new().with_prior(CostKind::Mcmf, 7);
        model.observe(CostKind::Mcmf, CostDims { n: 1, m: 1 }, 9999);
        let replica = model.fresh_replica();
        let dims = CostDims { n: 2, m: 3 };
        assert_eq!(
            replica.estimate(CostKind::Mcmf, dims),
            CostKind::Mcmf.basis(dims) * 7
        );
        assert_eq!(replica.observations(CostKind::Mcmf), 0);
        assert_eq!(replica.expected_duration(10), None);
    }
}
