//! One serde-roundtrippable configuration schema for every engine.
//!
//! [`EngineConfig`] is the single source of truth for the knobs that used
//! to be duplicated across [`crate::stream::StreamEngineBuilder`] and
//! [`crate::batch::BatchEngineBuilder`]: worker bounds, queue capacity,
//! backpressure, cache capacity and eviction policy, WFQ class weights and
//! rate limits, seed, epsilon and shard count. Three consumers share the
//! one schema:
//!
//! * **Both engine builders.** [`crate::stream::StreamEngineBuilder`] and
//!   [`crate::batch::BatchEngineBuilder`] hold an `EngineConfig` internally;
//!   every fluent setter is a thin wrapper over one of its fields, and
//!   `from_config` constructs a builder from a validated config directly.
//! * **The `bcc-served` daemon.** Its `--config <file>` flag reads this
//!   exact JSON, and its handshake echoes the engine's effective config
//!   back to every client, so a client can see the server's scheduling
//!   discipline without a side channel.
//! * **Operators.** The schema is versioned ([`ENGINE_CONFIG_SCHEMA`]) and
//!   validated ([`EngineConfig::validate`] returns a typed
//!   [`ConfigError`]), so a config file that drifts from the binary fails
//!   loudly instead of silently misconfiguring a serving process.
//!
//! This module also re-exports the serving vocabulary — [`Priority`],
//! [`RateLimit`], [`BackpressurePolicy`], [`EvictionPolicy`] — so `use
//! bcc_core::config::*` brings in everything a config file can spell.
//!
//! # Example
//!
//! ```
//! use bcc_core::config::{EngineConfig, Priority, RateLimit};
//! use bcc_core::stream::StreamEngineBuilder;
//!
//! let mut config = EngineConfig::default();
//! config.queue_capacity = 8;
//! config.class_entry(Priority::Bulk).rate_limit = Some(RateLimit::new(1, 4));
//!
//! // Round-trips through JSON unchanged…
//! let json = serde_json::to_string_pretty(&config).unwrap();
//! let back: EngineConfig = serde_json::from_str(&json).unwrap();
//! assert_eq!(back, config);
//!
//! // …and builds a validated engine.
//! let engine = StreamEngineBuilder::from_config(config).unwrap().build();
//! assert_eq!(engine.queue_capacity(), 8);
//! ```

use bcc_runtime::ModelConfig;
use serde::{Deserialize, Serialize};

pub use crate::cache::EvictionPolicy;
pub use crate::stream::BackpressurePolicy;
pub use crate::wfq::{Priority, RateLimit};

/// The version tag written into [`EngineConfig::schema`].
pub const ENGINE_CONFIG_SCHEMA: &str = "bcc-engine-config/v1";

/// One scheduling class in an [`EngineConfig`]: the class, its WFQ weight
/// and an optional token-bucket rate limit. Classes serialize by label
/// (`"interactive"`, `"bulk"`, `"custom-<id>"`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassEntry {
    /// The scheduling class this entry configures.
    pub class: Priority,
    /// The class's WFQ weight (validated ≥ 1).
    pub weight: u32,
    /// The class's token-bucket rate limit, if any.
    pub rate_limit: Option<RateLimit>,
}

impl ClassEntry {
    /// An entry for `class` at its default weight with no rate limit.
    pub fn default_for(class: Priority) -> Self {
        ClassEntry {
            class,
            weight: class.default_weight(),
            rate_limit: None,
        }
    }
}

/// The unified, serializable engine configuration — every deterministic
/// knob of [`crate::stream::StreamEngine`] and [`crate::batch::BatchEngine`]
/// in one versioned struct. See the [module docs](self) for the three
/// consumers of the schema.
///
/// Knobs that cannot be spelled in a config file — the live
/// [`crate::cost::CostModel`], the injectable [`crate::clock::Clock`] and
/// the [`crate::telemetry::TelemetrySink`] — stay builder-only; a config
/// describes a *reproducible* engine, and those three carry run-time state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Schema tag consumers dispatch on ([`ENGINE_CONFIG_SCHEMA`]).
    pub schema: String,
    /// The clique model the worker sessions simulate.
    pub model: ModelConfig,
    /// Master seed per-submission seeds are derived from.
    pub seed: u64,
    /// Default solve accuracy of the worker sessions.
    pub epsilon: f64,
    /// Fixed worker count, or the **minimum** of an elastic pool when
    /// [`EngineConfig::max_workers`] is set. `None` = the machine's
    /// available parallelism, capped at 8.
    pub workers: Option<usize>,
    /// Upper bound of an elastic pool; `None` pins the pool at
    /// [`EngineConfig::workers`].
    pub max_workers: Option<usize>,
    /// Number of Laplacian-cache shards.
    pub shards: usize,
    /// Bound of the stream engine's admission queue.
    pub queue_capacity: usize,
    /// What a full admission queue does to new submissions.
    pub backpressure: BackpressurePolicy,
    /// Entry bound of the prepared-Laplacian cache; `None` = unbounded.
    pub cache_capacity: Option<usize>,
    /// Which cache entry is evicted beyond the capacity bound.
    pub eviction_policy: EvictionPolicy,
    /// Whether WFQ tags charge estimated cost (`true`) or one unit.
    pub cost_aware_tags: bool,
    /// Scheduling-class overrides, in configuration order. Classes absent
    /// here run at their default weight with no rate limit; the built-in
    /// classes always exist.
    pub classes: Vec<ClassEntry>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            schema: ENGINE_CONFIG_SCHEMA.to_string(),
            model: ModelConfig::bcc(),
            seed: 2022,
            epsilon: 1e-6,
            workers: None,
            max_workers: None,
            shards: 16,
            queue_capacity: 64,
            backpressure: BackpressurePolicy::Block,
            cache_capacity: None,
            eviction_policy: EvictionPolicy::Lru,
            cost_aware_tags: true,
            classes: Vec::new(),
        }
    }
}

impl EngineConfig {
    /// The mutable [`ClassEntry`] of `class`, appending a default entry if
    /// the class is not configured yet.
    pub fn class_entry(&mut self, class: Priority) -> &mut ClassEntry {
        if let Some(i) = self.classes.iter().position(|e| e.class == class) {
            return &mut self.classes[i];
        }
        self.classes.push(ClassEntry::default_for(class));
        self.classes.last_mut().expect("just pushed")
    }

    /// Checks every invariant a running engine assumes, returning the first
    /// violation as a typed [`ConfigError`]. Builders constructed through
    /// `from_config` run this; the fluent setters instead clamp (as they
    /// always have), so hand-built configs fail loudly while builder chains
    /// stay infallible.
    ///
    /// # Errors
    ///
    /// See the [`ConfigError`] variants.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.schema != ENGINE_CONFIG_SCHEMA {
            return Err(ConfigError::UnsupportedSchema {
                found: self.schema.clone(),
            });
        }
        if !(self.epsilon.is_finite() && self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(ConfigError::InvalidEpsilon {
                epsilon: self.epsilon,
            });
        }
        if self.workers == Some(0) {
            return Err(ConfigError::ZeroWorkers);
        }
        if let Some(max) = self.max_workers {
            let min = self.workers.unwrap_or(1);
            if max < min.max(1) {
                return Err(ConfigError::InvalidWorkerBounds { min, max });
            }
        }
        if self.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if self.queue_capacity == 0 {
            return Err(ConfigError::ZeroQueueCapacity);
        }
        if self.cache_capacity == Some(0) {
            return Err(ConfigError::ZeroCacheCapacity);
        }
        for (i, entry) in self.classes.iter().enumerate() {
            if self.classes[..i].iter().any(|e| e.class == entry.class) {
                return Err(ConfigError::DuplicateClass { class: entry.class });
            }
            if entry.weight == 0 {
                return Err(ConfigError::ZeroClassWeight { class: entry.class });
            }
            if let Some(limit) = entry.rate_limit {
                if limit.tokens == 0 || limit.window == 0 {
                    return Err(ConfigError::InvalidRateLimit {
                        class: entry.class,
                        tokens: limit.tokens,
                        window: limit.window,
                    });
                }
            }
        }
        Ok(())
    }
}

/// A validation failure of an [`EngineConfig`] — each variant names the
/// invariant a running engine would otherwise assume.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The config's schema tag is not [`ENGINE_CONFIG_SCHEMA`].
    UnsupportedSchema {
        /// The tag found in the config.
        found: String,
    },
    /// `epsilon` must be finite and in `(0, 1)`.
    InvalidEpsilon {
        /// The offending accuracy.
        epsilon: f64,
    },
    /// A fixed worker count of zero.
    ZeroWorkers,
    /// Elastic bounds with `max < min`.
    InvalidWorkerBounds {
        /// The configured minimum (1 if `workers` was `None`).
        min: usize,
        /// The configured maximum.
        max: usize,
    },
    /// A cache with zero shards cannot hold anything.
    ZeroShards,
    /// An admission queue of capacity zero would reject everything.
    ZeroQueueCapacity,
    /// A cache capacity of zero; use `None` for "no cache bound".
    ZeroCacheCapacity,
    /// The same class is configured twice.
    DuplicateClass {
        /// The class appearing more than once.
        class: Priority,
    },
    /// A WFQ weight of zero would starve the class forever.
    ZeroClassWeight {
        /// The class with the zero weight.
        class: Priority,
    },
    /// A rate limit with a zero token budget or window.
    InvalidRateLimit {
        /// The class carrying the limit.
        class: Priority,
        /// The configured token budget.
        tokens: u32,
        /// The configured window length.
        window: u32,
    },
    /// The same tenant name appears twice in a
    /// [`crate::tenant::TenantDirectory`].
    DuplicateTenant {
        /// The name appearing more than once.
        name: String,
    },
    /// A tenant directory past the 256 [`Priority::Custom`] class ids.
    TooManyTenants {
        /// The offending tenant count.
        count: usize,
    },
    /// A tenant with a WFQ weight of zero would be starved forever.
    ZeroTenantWeight {
        /// The tenant with the zero weight.
        name: String,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::UnsupportedSchema { found } => write!(
                f,
                "unsupported engine-config schema `{found}` (this binary speaks `{ENGINE_CONFIG_SCHEMA}`)"
            ),
            ConfigError::InvalidEpsilon { epsilon } => {
                write!(f, "epsilon must be finite and in (0, 1), got {epsilon}")
            }
            ConfigError::ZeroWorkers => write!(f, "worker count must be at least 1"),
            ConfigError::InvalidWorkerBounds { min, max } => write!(
                f,
                "elastic worker bounds must satisfy max >= min >= 1, got min {min}, max {max}"
            ),
            ConfigError::ZeroShards => write!(f, "shard count must be at least 1"),
            ConfigError::ZeroQueueCapacity => {
                write!(f, "admission queue capacity must be at least 1")
            }
            ConfigError::ZeroCacheCapacity => write!(
                f,
                "cache capacity must be at least 1 (omit the bound for an unbounded cache)"
            ),
            ConfigError::DuplicateClass { class } => {
                write!(f, "class `{}` is configured twice", class.label())
            }
            ConfigError::ZeroClassWeight { class } => {
                write!(f, "class `{}` has WFQ weight 0", class.label())
            }
            ConfigError::InvalidRateLimit {
                class,
                tokens,
                window,
            } => write!(
                f,
                "class `{}` has an invalid rate limit ({tokens} tokens per window of {window})",
                class.label()
            ),
            ConfigError::DuplicateTenant { name } => {
                write!(f, "tenant `{name}` is registered twice")
            }
            ConfigError::TooManyTenants { count } => write!(
                f,
                "{count} tenants exceed the 256 available custom scheduling classes"
            ),
            ConfigError::ZeroTenantWeight { name } => {
                write!(f, "tenant `{name}` has WFQ weight 0")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EngineConfig {
        let mut config = EngineConfig {
            seed: 7,
            epsilon: 1e-4,
            workers: Some(2),
            max_workers: Some(6),
            shards: 4,
            queue_capacity: 16,
            backpressure: BackpressurePolicy::Reject,
            cache_capacity: Some(32),
            eviction_policy: EvictionPolicy::CostAware,
            cost_aware_tags: false,
            ..EngineConfig::default()
        };
        config.class_entry(Priority::Interactive).weight = 8;
        let bulk = config.class_entry(Priority::Bulk);
        bulk.weight = 2;
        bulk.rate_limit = Some(RateLimit::new(1, 4));
        config.class_entry(Priority::custom(3)).weight = 5;
        config
    }

    #[test]
    fn default_config_validates() {
        EngineConfig::default().validate().unwrap();
    }

    #[test]
    fn sample_config_round_trips_through_json() {
        let config = sample();
        config.validate().unwrap();
        let json = serde_json::to_string_pretty(&config).unwrap();
        let back: EngineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn class_labels_round_trip() {
        for class in [
            Priority::Interactive,
            Priority::Bulk,
            Priority::custom(0),
            Priority::custom(255),
        ] {
            let json = serde_json::to_string(&class).unwrap();
            let back: Priority = serde_json::from_str(&json).unwrap();
            assert_eq!(back, class);
        }
    }

    #[test]
    fn unknown_class_label_is_a_typed_error() {
        assert!(serde_json::from_str::<Priority>("\"custom-256\"").is_err());
        assert!(serde_json::from_str::<Priority>("\"urgent\"").is_err());
        assert!(serde_json::from_str::<BackpressurePolicy>("\"drop\"").is_err());
        assert!(serde_json::from_str::<EvictionPolicy>("\"mru\"").is_err());
    }

    #[test]
    fn validation_rejects_each_invariant_violation() {
        let mut c = sample();
        c.schema = "bcc-engine-config/v0".to_string();
        assert!(matches!(
            c.validate(),
            Err(ConfigError::UnsupportedSchema { .. })
        ));

        let mut c = sample();
        c.epsilon = 0.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::InvalidEpsilon { .. })
        ));

        let mut c = sample();
        c.workers = Some(0);
        assert_eq!(c.validate(), Err(ConfigError::ZeroWorkers));

        let mut c = sample();
        c.workers = Some(4);
        c.max_workers = Some(2);
        assert_eq!(
            c.validate(),
            Err(ConfigError::InvalidWorkerBounds { min: 4, max: 2 })
        );

        let mut c = sample();
        c.shards = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroShards));

        let mut c = sample();
        c.queue_capacity = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroQueueCapacity));

        let mut c = sample();
        c.cache_capacity = Some(0);
        assert_eq!(c.validate(), Err(ConfigError::ZeroCacheCapacity));

        let mut c = sample();
        c.classes.push(ClassEntry::default_for(Priority::Bulk));
        assert_eq!(
            c.validate(),
            Err(ConfigError::DuplicateClass {
                class: Priority::Bulk
            })
        );

        let mut c = sample();
        c.class_entry(Priority::custom(9)).weight = 0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::ZeroClassWeight {
                class: Priority::custom(9)
            })
        );

        let mut c = sample();
        c.class_entry(Priority::Bulk).rate_limit = Some(RateLimit {
            tokens: 0,
            window: 4,
        });
        assert!(matches!(
            c.validate(),
            Err(ConfigError::InvalidRateLimit { .. })
        ));
    }
}
