//! Streaming service layer: incremental submission, weighted fair queueing,
//! per-request deadlines and bounded backpressure over the paper's four
//! pipelines.
//!
//! Where [`crate::batch::BatchEngine`] serves one closed slice of requests
//! per call, a [`StreamEngine`] is a long-lived service: callers submit
//! [`Request`]s **one at a time** while earlier submissions are still in
//! flight, tag each with a scheduling class ([`Priority`]), and collect
//! results through [`Ticket`] handles ([`StreamClient::poll`] /
//! [`StreamClient::wait`]) as they complete — possibly far out of submission
//! order.
//!
//! # Scheduling: weighted fair queueing
//!
//! Dispatch order is decided by a **weighted fair queueing (WFQ)** scheduler
//! over an open set of classes. The two built-in classes
//! ([`Priority::Interactive`], default weight 4, and [`Priority::Bulk`],
//! default weight 1) can be joined by up to 256 caller-defined classes
//! ([`Priority::custom`]); per-class weights are configured with
//! [`StreamEngineBuilder::class_weight`]. Every admitted job receives a
//! virtual finish time `max(V, F_class) + 1/weight` (the classic
//! virtual-clock tag with unit-size jobs) and workers always dispatch the
//! queued job with the smallest tag — so a class with weight `w` receives a
//! `w`-proportional share of dispatches and **no class can be starved**: a
//! flood of interactive traffic merely advances the interactive finish tags
//! past the bulk ones, unlike the strict two-class priority queue this
//! scheduler replaced.
//!
//! A class may additionally carry a **token-bucket rate limit**
//! ([`StreamEngineBuilder::class_rate_limit`]): at most
//! [`RateLimit::tokens`] of its jobs are dispatched per scheduling window of
//! [`RateLimit::window`] consecutive dispatches. The limiter is
//! *work-conserving* — it shapes the order among competing classes but never
//! idles a worker: when every queued class is throttled, the smallest-tag
//! job runs anyway. Per-class submission/dispatch/expiry/throttle counters
//! are surfaced in [`StreamReport::scheduler`].
//!
//! # Size-aware tags: the unified cost model
//!
//! By default the virtual-clock tags are **size-aware**
//! ([`StreamEngineBuilder::cost_aware_tags`], default on): instead of one
//! unit per job, a job charges its *estimated rounds* as predicted by the
//! engine's shared [`crate::cost::CostModel`] — `max(V, F_class) +
//! cost / weight` — so a giant LP consumes proportionally more of its
//! class's share than a tiny solve, which is what "weighted fair" should
//! mean under the paper's round-complexity cost model. The model calibrates
//! itself online from completed requests (see [`crate::cost`]); its
//! predictions steer dispatch order, deadline admission and cost-aware
//! cache eviction, and per-class predicted-vs-actual sums are reported in
//! [`ClassStats::predicted_rounds`] / [`ClassStats::actual_rounds`]
//! (computed by a deterministic submission-order replay of the calibration
//! loop, so the report never depends on scheduling). With
//! `cost_aware_tags(false)` every job charges one unit, which is exactly
//! the previous behaviour.
//!
//! # Deadlines
//!
//! [`StreamClient::submit_with_deadline`] attaches a deadline to one
//! submission. Admission is **deadline-aware**: when the class's expected
//! wait — queued backlog cost divided by the class's weight share, converted
//! to wall-clock through the model's calibrated service rate — already
//! exceeds the deadline, the submission is rejected *at submit time* with
//! the typed [`Error::DeadlineInfeasible`] (counted in
//! [`ClassStats::infeasible`]; like [`Error::Overloaded`] rejections it
//! consumes no submission index). An engine that has never completed a
//! request has no calibrated service rate and admits everything — an idle
//! engine never calls a deadline infeasible.
//!
//! A request that was admitted but is **still queued** when its deadline
//! passes is never dispatched: it completes with the typed
//! [`Error::DeadlineExceeded`] instead (and counts into
//! [`ClassStats::expired`]). Work that was already dispatched always runs to
//! completion — a deadline bounds queueing delay, it never cancels running
//! work. Expired requests touch neither a worker session nor the Laplacian
//! cache and are metered with an empty [`RoundReport`].
//!
//! # Determinism contract
//!
//! Exactly as in [`crate::batch`]: scheduling never leaks into results. A
//! submission's seed is a pure function of the engine's master seed and its
//! **submission index** (the same splitmix64 derivation as
//! [`crate::batch::BatchEngine::request_seed`]), and every Laplacian solve
//! runs on a clone of a prepared solver built at the master seed alone, via
//! the shared bounded cache of [`crate::cache`]. Consequently a stream run
//! is bit-identical to the sequential [`crate::Session`] loop of the batch
//! contract for **any** worker count, class/weight vector, rate limit, queue
//! capacity, cost-model configuration (size-aware tags on or off, whatever
//! the model predicts — including adversarial zero or enormous estimates)
//! and submission/collection interleaving — WFQ may only reorder
//! *completion*, never change a per-submission seed — and cache eviction
//! (whatever the [`crate::cache::EvictionPolicy`]) only re-pays
//! preprocessing rounds, it never changes a result. Deadlines are the one
//! deliberate exception: whether a deadline expires (or is rejected as
//! infeasible at admission) depends on wall-clock scheduling, so only
//! submissions without (or with generous) deadlines are covered by the
//! bit-identity contract. `tests/stream.rs` enforces all of this.
//!
//! # Shutdown and drain
//!
//! [`StreamEngine::serve`] scopes the worker pool around a closure. When the
//! closure returns, the engine **drains**: no new submissions are admitted,
//! every already-admitted request still executes (or expires, if its
//! deadline passes while it waits), and results the closure never collected
//! come back in [`StreamOutput::uncollected`]. The aggregated
//! [`StreamReport`] always covers *every* admitted submission.
//!
//! # Example
//!
//! ```
//! use bcc_core::stream::{Priority, RateLimit, StreamEngine};
//! use bcc_core::batch::Request;
//! use bcc_core::graph::generators;
//!
//! let grid = generators::grid(4, 4);
//! let mut b = vec![0.0; grid.n()];
//! b[0] = 1.0;
//! b[15] = -1.0;
//!
//! let mut engine = StreamEngine::builder()
//!     .seed(2022)
//!     .workers(2)
//!     .class_weight(Priority::Bulk, 2)
//!     .class_rate_limit(Priority::Bulk, RateLimit::new(1, 4))
//!     .build();
//! let output = engine.serve(|client| {
//!     let fast = client
//!         .submit(Request::laplacian(grid.clone(), b.clone()), Priority::Interactive)
//!         .unwrap();
//!     let slow = client
//!         .submit(Request::sparsify(generators::complete(12), 0.5), Priority::Bulk)
//!         .unwrap();
//!     // Results are collected as they finish, in any order.
//!     let solve = client.wait(fast).unwrap();
//!     let sparsifier = client.wait(slow).unwrap();
//!     (solve, sparsifier)
//! });
//! assert_eq!(output.report.requests, 2);
//! assert_eq!(output.report.failures, 0);
//! assert!(output.uncollected.is_empty());
//! ```

use std::collections::VecDeque;
use std::collections::{HashMap, HashSet};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use bcc_graph::{fingerprint, GraphFingerprint};
use bcc_runtime::{ModelConfig, RoundLedger};
use serde::{Deserialize, Serialize};

use crate::batch::{PreprocessingCost, RequestCost};
use crate::cache::{CacheStats, EvictionPolicy};
use crate::cost::{CostDims, CostKind, CostModel};
use crate::error::Error;
use crate::report::RoundReport;
use crate::serve::{EngineCore, RequestRecord};
use crate::session::{Outcome, Session};

pub use crate::serve::{Request, Response};

/// Scheduling class of one submission. Classes form a small open set: the
/// two built-in classes plus up to 256 caller-defined ones
/// ([`Priority::custom`]). Each class has a WFQ weight (and optionally a
/// rate limit) configured on the [`StreamEngineBuilder`]; dispatch order
/// follows virtual-finish-time weighted fair queueing, FIFO within a class.
/// Classes affect *latency only* — results are bit-identical whichever
/// class a request is submitted under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive traffic (default WFQ weight 4).
    Interactive,
    /// Throughput traffic (default WFQ weight 1).
    Bulk,
    /// A caller-defined class (default WFQ weight 1 unless configured via
    /// [`StreamEngineBuilder::class_weight`]). Prefer the
    /// [`Priority::custom`] constructor.
    Custom(u8),
}

impl Priority {
    /// A caller-defined scheduling class. Classes with the same id share
    /// one queue, weight and rate limit.
    pub fn custom(id: u8) -> Self {
        Priority::Custom(id)
    }

    /// The class name used in [`ClassStats::class`]: `"interactive"`,
    /// `"bulk"` or `"custom-<id>"`.
    pub fn label(&self) -> String {
        match self {
            Priority::Interactive => "interactive".to_string(),
            Priority::Bulk => "bulk".to_string(),
            Priority::Custom(id) => format!("custom-{id}"),
        }
    }

    /// Dense ordering key: built-in classes first, then customs by id. This
    /// is the deterministic order of [`SchedulerStats::classes`].
    fn key(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Bulk => 1,
            Priority::Custom(id) => 2 + id as usize,
        }
    }

    /// The default WFQ weight of the class.
    fn default_weight(self) -> u32 {
        match self {
            Priority::Interactive => 4,
            Priority::Bulk | Priority::Custom(_) => 1,
        }
    }
}

/// A token-bucket rate limit on one scheduling class: at most `tokens`
/// dispatches of the class per scheduling window of `window` consecutive
/// dispatches (across all classes). The limiter is work-conserving — it
/// shapes dispatch order among competing classes but never idles a worker
/// when only throttled work is queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RateLimit {
    /// Dispatch budget of the class per window (min 1).
    pub tokens: u32,
    /// Window length, in consecutive dispatches across all classes (min 1).
    pub window: u32,
}

impl RateLimit {
    /// A rate limit of `tokens` dispatches per window of `window` total
    /// dispatches. Both are clamped to at least 1.
    pub fn new(tokens: u32, window: u32) -> Self {
        RateLimit {
            tokens: tokens.max(1),
            window: window.max(1),
        }
    }

    /// The same clamp as [`RateLimit::new`], re-applied where limits enter
    /// the scheduler — the public fields (and `Deserialize`) can bypass the
    /// constructor, and a zero window must never reach the window
    /// arithmetic.
    fn clamped(self) -> Self {
        RateLimit::new(self.tokens, self.window)
    }
}

/// What [`StreamClient::submit`] does when the bounded admission queue is
/// full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Block the submitting thread until a queue slot frees (the default —
    /// no submission is ever lost).
    Block,
    /// Fail fast with [`Error::Overloaded`], leaving the caller to retry or
    /// shed load.
    Reject,
}

/// Completion handle of one admitted submission, returned by
/// [`StreamClient::submit`]. Redeem it with [`StreamClient::poll`] or
/// [`StreamClient::wait`]; tickets never expire while the serve scope runs,
/// and unredeemed tickets surface in [`StreamOutput::uncollected`].
///
/// A ticket is bound to the serve scope that issued it: redeeming a ticket
/// kept from an earlier [`StreamEngine::serve`] call panics instead of
/// silently returning a later scope's result for the same index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    index: u64,
    priority: Priority,
    /// Serial number of the serve scope that issued this ticket.
    scope: u64,
}

impl Ticket {
    /// The submission index — the request's position in admission order,
    /// and the index its seed is derived from
    /// ([`StreamEngine::request_seed`]).
    pub fn index(&self) -> u64 {
        self.index
    }

    /// The scheduling class the request was submitted under.
    pub fn priority(&self) -> Priority {
        self.priority
    }
}

/// The version tag written into [`StreamReport::schema`].
pub const STREAM_REPORT_SCHEMA: &str = "bcc-stream-report/v1";

/// Per-class scheduler counters of one serve scope, surfaced in
/// [`SchedulerStats::classes`] (and through it in `BENCH_stream.json`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassStats {
    /// Class name ([`Priority::label`]).
    pub class: String,
    /// The configured WFQ weight.
    pub weight: u32,
    /// The configured rate limit, if any.
    pub rate_limit: Option<RateLimit>,
    /// Submissions admitted under this class.
    pub submitted: u64,
    /// Jobs of this class dispatched to a worker.
    pub dispatched: u64,
    /// Jobs that expired in the queue ([`Error::DeadlineExceeded`]) and were
    /// never dispatched.
    pub expired: u64,
    /// Scheduling decisions that skipped this class because its rate-limit
    /// budget for the current window was spent. Timing-dependent under
    /// concurrency; always zero without a rate limit.
    pub throttled: u64,
    /// Submissions rejected at admission with [`Error::DeadlineInfeasible`]
    /// (expected wait already past the deadline). Like rejected
    /// backpressure they consume no submission index. Timing-dependent
    /// under concurrency; always zero for deadline-less workloads.
    pub infeasible: u64,
    /// Sum of the cost model's predicted rounds over this class's executed
    /// submissions, computed by a deterministic submission-order replay of
    /// the calibration loop (so it is a pure function of the admitted
    /// workload — see [`crate::cost`]). Expired submissions are excluded:
    /// they never executed, so there is no actual to compare against.
    pub predicted_rounds: u64,
    /// Sum of the actual rounds this class's executed submissions charged —
    /// the measured half of [`ClassStats::predicted_rounds`]. Compare the
    /// two for the class's estimation error
    /// ([`ClassStats::estimation_error`]).
    pub actual_rounds: u64,
}

impl ClassStats {
    /// The class's relative estimation error:
    /// `|predicted − actual| / actual`, or `None` when the class charged no
    /// rounds (nothing to compare against).
    pub fn estimation_error(&self) -> Option<f64> {
        if self.actual_rounds == 0 {
            return None;
        }
        let diff = self.predicted_rounds.abs_diff(self.actual_rounds);
        Some(diff as f64 / self.actual_rounds as f64)
    }
}

/// Scheduler-level accounting of one serve scope: the discipline plus one
/// [`ClassStats`] per class, in deterministic class order (built-ins first,
/// then customs by id).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// The scheduling discipline (`"wfq"`).
    pub policy: String,
    /// Per-class counters. The built-in classes are always present; custom
    /// classes appear once configured or used.
    pub classes: Vec<ClassStats>,
}

impl SchedulerStats {
    /// Counters of one class, by its [`Priority`].
    pub fn class(&self, priority: Priority) -> Option<&ClassStats> {
        let label = priority.label();
        self.classes.iter().find(|c| c.class == label)
    }

    /// Total deadline expirations across all classes.
    pub fn expired(&self) -> u64 {
        self.classes.iter().map(|c| c.expired).sum()
    }

    /// Total infeasible-deadline admission rejections across all classes.
    pub fn infeasible(&self) -> u64 {
        self.classes.iter().map(|c| c.infeasible).sum()
    }
}

/// Aggregated, serializable accounting of one [`StreamEngine::serve`] scope
/// — the payload of the `BENCH_stream.json` trajectory. Mirrors
/// [`crate::batch::BatchReport`] (same [`RequestCost`] /
/// [`PreprocessingCost`] vocabulary, per-request costs in submission order)
/// plus streaming-specific counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamReport {
    /// Schema tag consumers can dispatch on (`"bcc-stream-report/v1"`).
    pub schema: String,
    /// Number of admitted submissions.
    pub requests: u64,
    /// Number of failed submissions (typed pipeline errors plus deadline
    /// expirations).
    pub failures: u64,
    /// Submissions admitted under [`Priority::Interactive`].
    pub interactive: u64,
    /// Submissions admitted under [`Priority::Bulk`].
    pub bulk: u64,
    /// Submissions rejected with [`Error::Overloaded`] (never admitted; they
    /// consume no submission index and appear nowhere else in the report).
    pub rejected: u64,
    /// Submissions that expired in the queue with
    /// [`Error::DeadlineExceeded`] (also counted in
    /// [`StreamReport::failures`] and per class in
    /// [`ClassStats::expired`]).
    pub expired: u64,
    /// Submissions rejected at admission with
    /// [`Error::DeadlineInfeasible`] — their deadline was already infeasible
    /// given the queued backlog and the calibrated service rate. Like
    /// [`StreamReport::rejected`] they consume no submission index and
    /// appear nowhere else in the report (per class in
    /// [`ClassStats::infeasible`]).
    pub infeasible: u64,
    /// Per-class WFQ scheduler counters of this serve scope.
    pub scheduler: SchedulerStats,
    /// Laplacian submissions that reused a prepared solver (first submission
    /// of a fingerprint counts as the miss, exactly as in
    /// [`crate::batch::BatchReport::cache_hits`]).
    pub cache_hits: u64,
    /// Laplacian submissions that paid preprocessing.
    pub cache_misses: u64,
    /// Cache-level hit/miss/eviction counters over the engine's lifetime,
    /// as of the end of this serve scope. Under capacity pressure with
    /// concurrent workers these can depend on scheduling (rebuilds after
    /// eviction). With an **unbounded** cache (the default) everything else
    /// in this report is scheduling-independent too (deadline and throttle
    /// counters aside); under a capacity bound, an eviction racing the first
    /// submission of a previously cached fingerprint can additionally flip
    /// that fingerprint's `cached` / hit classification (and with it the
    /// charged preprocessing in [`StreamReport::total`]) — *results* stay
    /// bit-identical regardless.
    pub cache: CacheStats,
    /// Total accounted communication cost of the scope: every successful
    /// submission's report plus each distinct *new* fingerprint's
    /// preprocessing charged exactly once, folded in submission order (so
    /// the total is independent of completion order).
    pub total: RoundReport,
    /// Per-distinct-fingerprint preprocessing costs, in first-submission
    /// order.
    pub preprocessing: Vec<PreprocessingCost>,
    /// Per-submission costs, in submission order.
    pub per_request: Vec<RequestCost>,
}

/// Everything one [`StreamEngine::serve`] scope returns.
#[derive(Debug)]
pub struct StreamOutput<T> {
    /// The closure's return value.
    pub value: T,
    /// Results of admitted submissions the closure never polled or waited
    /// for, in submission order — the engine drains them before shutting
    /// down rather than dropping them.
    pub uncollected: Vec<(u64, Result<Outcome<Response>, Error>)>,
    /// Aggregated accounting of every admitted submission.
    pub report: StreamReport,
}

/// Per-class configuration collected by the builder.
#[derive(Debug, Clone, Copy)]
struct ClassConfig {
    weight: u32,
    rate: Option<RateLimit>,
}

/// Builder of a [`StreamEngine`].
#[derive(Debug, Clone)]
pub struct StreamEngineBuilder {
    model: ModelConfig,
    seed: u64,
    epsilon: f64,
    workers: Option<usize>,
    shards: usize,
    queue_capacity: usize,
    backpressure: BackpressurePolicy,
    cache_capacity: Option<usize>,
    eviction_policy: EvictionPolicy,
    cost_aware_tags: bool,
    /// The cost model the engine starts from; `None` builds a default one.
    cost_model: Option<Arc<CostModel>>,
    /// Class overrides in configuration order; normalized in `build`.
    classes: Vec<(Priority, ClassConfig)>,
}

impl Default for StreamEngineBuilder {
    fn default() -> Self {
        StreamEngineBuilder {
            model: ModelConfig::bcc(),
            seed: 2022,
            epsilon: 1e-6,
            workers: None,
            shards: 16,
            queue_capacity: 64,
            backpressure: BackpressurePolicy::Block,
            cache_capacity: None,
            eviction_policy: EvictionPolicy::Lru,
            cost_aware_tags: true,
            cost_model: None,
            classes: Vec::new(),
        }
    }
}

impl StreamEngineBuilder {
    /// Sets the clique model configuration of the worker sessions.
    pub fn model(mut self, model: ModelConfig) -> Self {
        self.model = model;
        self
    }

    /// Sets the master seed per-submission seeds are derived from.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the default solve accuracy of the worker sessions.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the worker-thread count (default: the machine's available
    /// parallelism, capped at 8). A count of 1 serves submissions strictly
    /// one at a time — useful to observe the determinism contract directly.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Sets the number of cache shards (default 16).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Bounds the admission queue to `capacity` waiting submissions
    /// (default 64, minimum 1). What happens beyond the bound is decided by
    /// [`StreamEngineBuilder::backpressure`].
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the overflow behaviour of the bounded admission queue (default
    /// [`BackpressurePolicy::Block`]).
    pub fn backpressure(mut self, policy: BackpressurePolicy) -> Self {
        self.backpressure = policy;
        self
    }

    /// Bounds the prepared-Laplacian cache to at most `capacity` entries
    /// (default: unbounded), evicting per the configured
    /// [`StreamEngineBuilder::eviction_policy`]. Eviction re-pays
    /// preprocessing on the next request for the evicted topology but never
    /// changes results.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = Some(capacity);
        self
    }

    /// Selects the cache eviction policy (default
    /// [`EvictionPolicy::Lru`]). Only relevant under a
    /// [`StreamEngineBuilder::cache_capacity`] bound.
    pub fn eviction_policy(mut self, policy: EvictionPolicy) -> Self {
        self.eviction_policy = policy;
        self
    }

    /// Enables or disables size-aware WFQ tags (default **on**): when on,
    /// each job's virtual finish tag charges its estimated cost per the
    /// engine's shared [`CostModel`]; when off, every job charges one unit
    /// (the pre-cost-model discipline). Either way results stay
    /// bit-identical to the sequential [`Session`] loop — the tags decide
    /// dispatch order only.
    pub fn cost_aware_tags(mut self, enabled: bool) -> Self {
        self.cost_aware_tags = enabled;
        self
    }

    /// Replaces the engine's [`CostModel`] (default: a fresh model with the
    /// standard priors). Useful to carry calibration across engines, or to
    /// inject adversarial priors in tests — any model, however wrong, may
    /// only affect latency, never results.
    pub fn cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = Some(Arc::new(model));
        self
    }

    /// Sets the WFQ weight of one scheduling class (clamped to at least 1).
    /// Defaults: [`Priority::Interactive`] 4, [`Priority::Bulk`] 1, custom
    /// classes 1. A class with weight `w` receives a `w`-proportional share
    /// of dispatches under contention.
    pub fn class_weight(mut self, class: Priority, weight: u32) -> Self {
        self.class_entry(class).weight = weight.max(1);
        self
    }

    /// Attaches a token-bucket [`RateLimit`] to one scheduling class
    /// (default: none). The limiter shapes dispatch order among competing
    /// classes and is work-conserving.
    pub fn class_rate_limit(mut self, class: Priority, limit: RateLimit) -> Self {
        self.class_entry(class).rate = Some(limit.clamped());
        self
    }

    fn class_entry(&mut self, class: Priority) -> &mut ClassConfig {
        if let Some(i) = self.classes.iter().position(|(p, _)| *p == class) {
            return &mut self.classes[i].1;
        }
        self.classes.push((
            class,
            ClassConfig {
                weight: class.default_weight(),
                rate: None,
            },
        ));
        &mut self.classes.last_mut().expect("just pushed").1
    }

    /// Copies model, seed and epsilon from an existing [`Session`], so the
    /// engine serves exactly what that session would serve.
    pub fn from_session(self, session: &Session) -> Self {
        self.model(session.model())
            .seed(session.seed())
            .epsilon(session.epsilon())
    }

    /// Finishes the builder.
    pub fn build(mut self) -> StreamEngine {
        let workers = self.workers.unwrap_or_else(|| {
            thread::available_parallelism()
                .map(|p| p.get().min(8))
                .unwrap_or(4)
        });
        // Normalize: both built-in classes always exist, order is the
        // deterministic class order of the scheduler stats.
        self.class_entry(Priority::Interactive);
        self.class_entry(Priority::Bulk);
        let mut classes = self.classes;
        classes.sort_by_key(|(p, _)| p.key());
        StreamEngine {
            core: EngineCore::new(
                self.model,
                self.seed,
                self.epsilon,
                self.shards,
                self.cache_capacity,
                self.eviction_policy,
                self.cost_model
                    .unwrap_or_else(|| Arc::new(CostModel::new())),
            ),
            workers,
            queue_capacity: self.queue_capacity,
            backpressure: self.backpressure,
            cost_aware_tags: self.cost_aware_tags,
            classes,
            ledger: RoundLedger::new(),
            scopes: 0,
        }
    }
}

/// A long-lived streaming server for the paper's four pipelines: incremental
/// submission, weighted fair queueing over an open class set, per-request
/// deadlines, bounded backpressure, graceful drain and the shared bounded
/// Laplacian cache. See the [module documentation](self) for the scheduling
/// discipline and the determinism contract.
#[derive(Debug)]
pub struct StreamEngine {
    core: EngineCore,
    workers: usize,
    queue_capacity: usize,
    backpressure: BackpressurePolicy,
    /// Whether WFQ tags charge estimated cost (true) or one unit (false).
    cost_aware_tags: bool,
    /// Normalized class configuration, sorted by class key.
    classes: Vec<(Priority, ClassConfig)>,
    ledger: RoundLedger,
    /// Serve scopes run so far; brands tickets so stale ones fail loudly.
    scopes: u64,
}

impl Default for StreamEngine {
    fn default() -> Self {
        StreamEngine::builder().build()
    }
}

impl StreamEngine {
    /// Starts a builder with laboratory defaults (BCC model, seed 2022,
    /// `ε = 1e-6`, 16 shards, queue capacity 64, blocking backpressure,
    /// unbounded LRU cache, interactive:bulk weights 4:1, no rate limits).
    pub fn builder() -> StreamEngineBuilder {
        StreamEngineBuilder::default()
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.core.seed
    }

    /// The worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The admission-queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// The configured backpressure policy.
    pub fn backpressure(&self) -> BackpressurePolicy {
        self.backpressure
    }

    /// Whether WFQ tags are size-aware (charge estimated cost) or unit
    /// jobs.
    pub fn cost_aware_tags(&self) -> bool {
        self.cost_aware_tags
    }

    /// The engine's shared cost model — calibrated by completions, consulted
    /// by the scheduler, deadline admission and cost-aware eviction.
    pub fn cost_model(&self) -> &CostModel {
        &self.core.cost
    }

    /// The WFQ weight of a class (its default if never configured).
    pub fn class_weight(&self, class: Priority) -> u32 {
        self.classes
            .iter()
            .find(|(p, _)| *p == class)
            .map(|(_, c)| c.weight)
            .unwrap_or_else(|| class.default_weight())
    }

    /// The rate limit of a class, if one was configured.
    pub fn class_rate_limit(&self, class: Priority) -> Option<RateLimit> {
        self.classes
            .iter()
            .find(|(p, _)| *p == class)
            .and_then(|(_, c)| c.rate)
    }

    /// Number of prepared Laplacian solvers currently cached (including
    /// cached preprocessing failures). Never exceeds the configured
    /// [`StreamEngineBuilder::cache_capacity`].
    pub fn cached_graphs(&self) -> usize {
        self.core.cache.len()
    }

    /// Hit/miss/eviction counters of the prepared-Laplacian cache over this
    /// engine's lifetime.
    pub fn cache_stats(&self) -> CacheStats {
        self.core.cache.stats()
    }

    /// The configured cache capacity bound (`None` = unbounded).
    pub fn cache_capacity(&self) -> Option<usize> {
        self.core.cache.capacity()
    }

    /// The configured cache eviction policy.
    pub fn eviction_policy(&self) -> EvictionPolicy {
        self.core.cache.policy()
    }

    /// Drops every cached prepared solver (counters are kept).
    pub fn clear_cache(&mut self) {
        self.core.cache.clear();
    }

    /// The deterministic seed of submission `index` — the same derivation as
    /// [`crate::batch::BatchEngine::request_seed`], so a sequential
    /// [`Session`] loop over the submissions reproduces every stream result
    /// bit for bit.
    pub fn request_seed(&self, index: usize) -> u64 {
        self.core.request_seed(index)
    }

    /// Cumulative communication cost of every serve scope this engine ran
    /// (per-submission costs plus each newly built preprocessing charged
    /// exactly once per scope).
    pub fn cumulative_report(&self) -> RoundReport {
        RoundReport::from_ledger(&self.ledger)
    }

    /// Runs a serve scope: spawns the worker pool, hands the closure a
    /// [`StreamClient`] for incremental submission and collection, and on
    /// closure return drains every admitted submission before aggregating.
    /// If the closure panics, the engine still shuts the workers down
    /// cleanly, then resumes the panic. If a *worker* panics (only reachable
    /// through a bug or a legacy panicking path below the typed API), the
    /// scope is poisoned: blocked `wait`/`submit` calls panic instead of
    /// hanging, and the panic propagates out of `serve`.
    pub fn serve<T>(&mut self, f: impl FnOnce(&StreamClient<'_>) -> T) -> StreamOutput<T> {
        self.scopes += 1;
        let shared = Shared {
            core: &self.core,
            scope: self.scopes,
            queue_capacity: self.queue_capacity,
            policy: self.backpressure,
            cost_aware_tags: self.cost_aware_tags,
            workers: self.workers,
            queue: Mutex::new(WfqScheduler::new(&self.classes)),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            done: Mutex::new(DoneState::default()),
            done_cv: Condvar::new(),
            meta: Mutex::new(Vec::new()),
            rejected: AtomicU64::new(0),
            prep: Mutex::new(HashMap::new()),
        };
        let value = thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(|| worker_loop(&shared));
            }
            let client = StreamClient { shared: &shared };
            let value = panic::catch_unwind(AssertUnwindSafe(|| f(&client)));
            // Close the queue: workers drain what was admitted, then exit;
            // the scope joins them before we aggregate.
            shared.queue.lock().expect("stream queue").closed = true;
            shared.not_empty.notify_all();
            shared.not_full.notify_all();
            match value {
                Ok(value) => value,
                Err(payload) => panic::resume_unwind(payload),
            }
        });
        let (uncollected, report) = self.aggregate(&shared);
        self.ledger
            .charge_phases(report.total.breakdown.iter().map(|(n, s)| (n.as_str(), *s)));
        StreamOutput {
            value,
            uncollected,
            report,
        }
    }

    /// Folds every admitted submission into the deterministic
    /// [`StreamReport`] through the shared accounting core: per-request
    /// costs in submission order, analytic hit/miss accounting (first
    /// submission of a fingerprint is the miss), preprocessing charged once
    /// per distinct new fingerprint — all independent of completion order.
    fn aggregate(
        &self,
        shared: &Shared<'_>,
    ) -> (Vec<(u64, Result<Outcome<Response>, Error>)>, StreamReport) {
        let mut meta = std::mem::take(&mut *shared.meta.lock().expect("submission meta"));
        meta.sort_by_key(|m| m.index);
        let mut done = shared.done.lock().expect("completion table");
        let prep = shared.prep.lock().expect("preprocessing reports");
        let mut scheduler = shared.queue.lock().expect("stream queue").stats();

        // Replay the calibration loop deterministically, in submission
        // order, on a fresh replica of the engine's model: the per-class
        // predicted/actual sums this produces are a pure function of the
        // admitted workload, independent of how scheduling interleaved the
        // live model's mid-flight estimates. Expired submissions never
        // executed, and failed ones charge no rounds and are not observed
        // by the live loop either — both are skipped on both sides of the
        // comparison.
        let replay = self.core.cost.fresh_replica();
        let mut errors: HashMap<String, (u64, u64)> = HashMap::new();
        for m in &meta {
            let completion = done
                .costs
                .get(&m.index)
                .expect("the drained scope completed every admitted submission");
            if completion.expired || !completion.ok {
                continue;
            }
            let predicted = replay.estimate(m.cost_kind, m.dims);
            let actual = completion.report.total_rounds;
            let entry = errors.entry(m.priority.label()).or_insert((0, 0));
            entry.0 += predicted;
            entry.1 += actual;
            replay.observe(m.cost_kind, m.dims, actual);
        }
        for class in &mut scheduler.classes {
            if let Some((predicted, actual)) = errors.get(&class.class) {
                class.predicted_rounds = *predicted;
                class.actual_rounds = *actual;
            }
        }

        let mut interactive = 0u64;
        let mut bulk = 0u64;
        let records: Vec<RequestRecord> = meta
            .iter()
            .map(|m| {
                match m.priority {
                    Priority::Interactive => interactive += 1,
                    Priority::Bulk => bulk += 1,
                    Priority::Custom(_) => {}
                }
                let completion = done
                    .costs
                    .remove(&m.index)
                    .expect("the drained scope completed every admitted submission");
                // An expired submission never touched the cache: account it
                // like a fingerprint-less failure so no preprocessing is
                // demanded (or charged) on its behalf.
                let (fingerprint, pre_cached) = if completion.expired {
                    (None, false)
                } else {
                    (m.fingerprint, m.pre_cached)
                };
                RequestRecord {
                    index: m.index,
                    kind: m.kind,
                    fingerprint,
                    pre_cached,
                    ok: completion.ok,
                    error: completion.error,
                    report: completion.report,
                }
            })
            .collect();
        let accounting = self.core.account(records, |key| {
            prep.get(&key)
                .expect("every executed fingerprint recorded its preprocessing")
                .clone()
        });

        let mut uncollected: Vec<(u64, Result<Outcome<Response>, Error>)> =
            done.results.drain().collect();
        uncollected.sort_by_key(|(index, _)| *index);

        let report = StreamReport {
            schema: STREAM_REPORT_SCHEMA.to_string(),
            requests: meta.len() as u64,
            failures: accounting.failures,
            interactive,
            bulk,
            rejected: shared.rejected.load(Ordering::Relaxed),
            expired: scheduler.expired(),
            infeasible: scheduler.infeasible(),
            scheduler,
            cache_hits: accounting.cache_hits,
            cache_misses: accounting.cache_misses,
            cache: self.core.cache.stats(),
            total: accounting.total,
            preprocessing: accounting.preprocessing,
            per_request: accounting.per_request,
        };
        (uncollected, report)
    }
}

/// One admitted submission travelling from the client to a worker.
struct Job {
    index: u64,
    priority: Priority,
    request: Request,
    fp: Option<GraphFingerprint>,
    /// Queueing deadline; a job still queued past it expires instead of
    /// dispatching.
    deadline: Option<Instant>,
    /// The job's estimated cost in rounds (including a preprocessing
    /// rebuild when its fingerprint was uncached at admission) — what its
    /// virtual finish tag charged, and its contribution to the class
    /// backlog deadline admission prices.
    cost: u64,
    /// WFQ virtual finish tag, assigned at admission.
    finish: u128,
}

/// Virtual-time charge of one estimated round at weight 1. Tags are
/// `max(V, F_class) + cost × VT_UNIT / weight` in fixed-point arithmetic,
/// so any weight up to `u32::MAX` keeps a non-zero, exactly representable
/// per-round charge; with unit costs (size-aware tags off) this degenerates
/// to the classic unit-job virtual clock. Costs are clamped to
/// [`crate::cost::MAX_ESTIMATE_ROUNDS`] (2⁴⁰), so `cost × VT_UNIT` stays
/// below 2⁷² and the u128 clock cannot realistically overflow.
const VT_UNIT: u128 = 1 << 32;

/// One class inside the scheduler: its FIFO queue, WFQ state, rate-limit
/// window and counters.
struct ClassState {
    priority: Priority,
    weight: u32,
    rate: Option<RateLimit>,
    queue: VecDeque<Job>,
    /// Summed estimated cost of the queued jobs — the class backlog
    /// deadline admission prices.
    queued_cost: u128,
    /// Finish tag of the last job admitted to this class.
    last_finish: u128,
    /// Rate-limit window this class last dispatched in.
    window_index: u64,
    /// Dispatches consumed in that window.
    window_used: u32,
    submitted: u64,
    dispatched: u64,
    expired: u64,
    throttled: u64,
    infeasible: u64,
}

impl ClassState {
    fn new(priority: Priority, config: ClassConfig) -> Self {
        ClassState {
            priority,
            weight: config.weight.max(1),
            rate: config.rate.map(RateLimit::clamped),
            queue: VecDeque::new(),
            queued_cost: 0,
            last_finish: 0,
            window_index: 0,
            window_used: 0,
            submitted: 0,
            dispatched: 0,
            expired: 0,
            throttled: 0,
            infeasible: 0,
        }
    }

    /// Whether the class has spent its dispatch budget for the window the
    /// next dispatch slot falls into.
    fn throttled_at(&self, dispatches: u64) -> bool {
        let Some(rate) = self.rate else { return false };
        let window = dispatches / rate.window as u64;
        self.window_index == window && self.window_used >= rate.tokens
    }

    fn stats(&self) -> ClassStats {
        ClassStats {
            class: self.priority.label(),
            weight: self.weight,
            rate_limit: self.rate,
            submitted: self.submitted,
            dispatched: self.dispatched,
            expired: self.expired,
            throttled: self.throttled,
            infeasible: self.infeasible,
            // Filled in by the deterministic replay at aggregation; the
            // live scheduler never sees actual costs.
            predicted_rounds: 0,
            actual_rounds: 0,
        }
    }
}

/// The weighted-fair-queueing admission queue: one FIFO per class, dispatch
/// by smallest virtual finish tag, token-bucket throttling, deadline expiry
/// sweeps. Within a class, FIFO in submission order (tags are monotone per
/// class by construction).
struct WfqScheduler {
    /// Classes in deterministic key order; extended on demand for custom
    /// classes that were never configured.
    classes: Vec<ClassState>,
    queued: usize,
    /// How many queued jobs carry a deadline, so the per-dispatch expiry
    /// sweep is free for deadline-less workloads.
    deadlined: usize,
    closed: bool,
    /// Set when a worker panicked: blocked submitters must panic, not hang.
    poisoned: bool,
    next_index: u64,
    /// WFQ virtual clock: the largest finish tag dispatched so far.
    virtual_time: u128,
    /// Total dispatches, the clock of the rate-limit windows.
    dispatches: u64,
}

impl WfqScheduler {
    fn new(classes: &[(Priority, ClassConfig)]) -> Self {
        WfqScheduler {
            classes: classes
                .iter()
                .map(|(p, c)| ClassState::new(*p, *c))
                .collect(),
            queued: 0,
            deadlined: 0,
            closed: false,
            poisoned: false,
            next_index: 0,
            virtual_time: 0,
            dispatches: 0,
        }
    }

    /// The class state of `priority`, created with defaults on first use.
    fn class_mut(&mut self, priority: Priority) -> &mut ClassState {
        let key = priority.key();
        let pos = self
            .classes
            .iter()
            .position(|c| c.priority.key() >= key)
            .unwrap_or(self.classes.len());
        if self.classes.get(pos).is_none_or(|c| c.priority != priority) {
            self.classes.insert(
                pos,
                ClassState::new(
                    priority,
                    ClassConfig {
                        weight: priority.default_weight(),
                        rate: None,
                    },
                ),
            );
        }
        &mut self.classes[pos]
    }

    /// Admits one job, assigning its submission index and WFQ finish tag.
    /// `cost` is the job's estimated rounds; the tag charges
    /// `cost × VT_UNIT / weight` (unit-job scheduling passes `cost = 1`). A
    /// zero cost is legal — the tag simply does not advance, and the
    /// `(finish, index)` tie-break keeps dispatch FIFO and starvation-free
    /// regardless.
    fn push(
        &mut self,
        priority: Priority,
        request: Request,
        fp: Option<GraphFingerprint>,
        deadline: Option<Instant>,
        cost: u64,
    ) -> u64 {
        let index = self.next_index;
        self.next_index += 1;
        let virtual_time = self.virtual_time;
        let class = self.class_mut(priority);
        let finish =
            virtual_time.max(class.last_finish) + cost as u128 * VT_UNIT / class.weight as u128;
        class.last_finish = finish;
        class.submitted += 1;
        class.queued_cost += cost as u128;
        class.queue.push_back(Job {
            index,
            priority,
            request,
            fp,
            deadline,
            cost,
            finish,
        });
        self.queued += 1;
        if deadline.is_some() {
            self.deadlined += 1;
        }
        index
    }

    /// The rounds a new submission of `priority` should expect to wait for
    /// before dispatch, given the queued backlog: the class's own backlog
    /// served at its WFQ weight share (but never more than the whole
    /// backlog — the scheduler is work-conserving), spread over the worker
    /// pool. Zero on an idle engine.
    fn expected_wait_rounds(&self, priority: Priority, workers: usize) -> u64 {
        let mut class_backlog = 0u128;
        let mut total_backlog = 0u128;
        let mut active_weight = 0u128;
        let mut class_weight = u128::from(
            self.classes
                .iter()
                .find(|c| c.priority == priority)
                .map(|c| c.weight)
                .unwrap_or_else(|| priority.default_weight()),
        );
        for class in &self.classes {
            total_backlog += class.queued_cost;
            if class.priority == priority {
                class_backlog = class.queued_cost;
                class_weight = u128::from(class.weight);
                active_weight += u128::from(class.weight);
            } else if !class.queue.is_empty() {
                active_weight += u128::from(class.weight);
            }
        }
        // The class's share of service is weight / active_weight, so its
        // backlog takes backlog ÷ share rounds of total service — capped at
        // the whole backlog, which a work-conserving scheduler never exceeds.
        let scaled = (class_backlog * active_weight / class_weight).min(total_backlog);
        u64::try_from(scaled / workers.max(1) as u128).unwrap_or(u64::MAX)
    }

    /// Charges one infeasible-deadline admission rejection to a class.
    fn reject_infeasible(&mut self, priority: Priority) {
        self.class_mut(priority).infeasible += 1;
    }

    /// Removes every queued job whose deadline has passed, returning each
    /// with how late it already is. Expired jobs are charged to their class
    /// and free their queue slots; they are never dispatched. Free when no
    /// queued job carries a deadline — the common case on the dispatch hot
    /// path.
    fn take_expired(&mut self, now: Instant) -> Vec<(Job, Duration)> {
        if self.deadlined == 0 {
            return Vec::new();
        }
        let mut expired = Vec::new();
        for class in &mut self.classes {
            let mut i = 0;
            while i < class.queue.len() {
                match class.queue[i].deadline {
                    Some(deadline) if deadline <= now => {
                        let job = class.queue.remove(i).expect("index in bounds");
                        class.expired += 1;
                        class.queued_cost -= job.cost as u128;
                        expired.push((job, now.duration_since(deadline)));
                    }
                    _ => i += 1,
                }
            }
        }
        self.queued -= expired.len();
        self.deadlined -= expired.len();
        expired.sort_by_key(|(job, _)| job.index);
        expired
    }

    /// Dispatches the queued job with the smallest virtual finish tag whose
    /// class still has rate-limit budget; when every queued class is
    /// throttled, the smallest tag runs anyway (work-conserving). Ties break
    /// by submission index.
    fn pop(&mut self) -> Option<Job> {
        if self.queued == 0 {
            return None;
        }
        let dispatches = self.dispatches;
        let mut best_allowed: Option<(u128, u64, usize)> = None;
        let mut best_any: Option<(u128, u64, usize)> = None;
        let mut throttled: Vec<usize> = Vec::new();
        for (i, class) in self.classes.iter().enumerate() {
            let Some(head) = class.queue.front() else {
                continue;
            };
            let key = (head.finish, head.index, i);
            if best_any.is_none_or(|b| key < b) {
                best_any = Some(key);
            }
            if class.throttled_at(dispatches) {
                throttled.push(i);
            } else if best_allowed.is_none_or(|b| key < b) {
                best_allowed = Some(key);
            }
        }
        let (_, _, i) = match best_allowed {
            Some(key) => {
                for t in throttled {
                    self.classes[t].throttled += 1;
                }
                key
            }
            // Every queued class is over budget: stay work-conserving and
            // dispatch the smallest tag anyway.
            None => best_any?,
        };
        let job = self.classes[i].queue.pop_front().expect("head exists");
        debug_assert_eq!(self.classes[i].priority, job.priority);
        self.queued -= 1;
        if job.deadline.is_some() {
            self.deadlined -= 1;
        }
        self.virtual_time = self.virtual_time.max(job.finish);
        self.dispatches += 1;
        let consumed_slot = self.dispatches - 1;
        let class = &mut self.classes[i];
        class.dispatched += 1;
        class.queued_cost -= job.cost as u128;
        if let Some(rate) = class.rate {
            let window = consumed_slot / rate.window as u64;
            if class.window_index != window {
                class.window_index = window;
                class.window_used = 0;
            }
            class.window_used += 1;
        }
        Some(job)
    }

    /// Per-class counters in deterministic class order.
    fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            policy: "wfq".to_string(),
            classes: self.classes.iter().map(|c| c.stats()).collect(),
        }
    }
}

/// Everything submitted about one request, recorded at admission time; the
/// deterministic half of the final [`RequestCost`].
struct SubmitMeta {
    index: u64,
    kind: &'static str,
    priority: Priority,
    fingerprint: Option<GraphFingerprint>,
    /// Whether the fingerprint was already cached when it was first
    /// submitted in this scope (the stream analogue of
    /// [`PreprocessingCost::cached`]).
    pre_cached: bool,
    /// The request's cost kind and instance dimensions — what the
    /// deterministic calibration replay prices it by at aggregation.
    cost_kind: CostKind,
    dims: CostDims,
}

/// What a worker records about one completed submission (the result payload
/// itself goes to the completion table for `poll`/`wait`).
struct Completion {
    ok: bool,
    error: Option<String>,
    report: RoundReport,
    /// Whether the submission expired in the queue instead of executing.
    expired: bool,
}

#[derive(Default)]
struct DoneState {
    /// Results not yet collected by the client.
    results: HashMap<u64, Result<Outcome<Response>, Error>>,
    /// Cost records of every completion, consumed by aggregation.
    costs: HashMap<u64, Completion>,
    /// Indices whose results were already handed to the client (so a second
    /// `wait` on the same ticket can fail loudly instead of hanging).
    collected: HashSet<u64>,
    /// Set when a worker panicked: blocked waiters must panic, not hang.
    poisoned: bool,
}

/// State shared between the serve scope's client and workers.
struct Shared<'e> {
    core: &'e EngineCore,
    /// Serial of the owning serve scope; tickets are branded with it.
    scope: u64,
    queue_capacity: usize,
    policy: BackpressurePolicy,
    /// Whether WFQ tags charge estimated cost or one unit.
    cost_aware_tags: bool,
    /// Worker count, for expected-wait estimates at admission.
    workers: usize,
    queue: Mutex<WfqScheduler>,
    not_empty: Condvar,
    not_full: Condvar,
    done: Mutex<DoneState>,
    done_cv: Condvar,
    meta: Mutex<Vec<SubmitMeta>>,
    rejected: AtomicU64,
    prep: Mutex<HashMap<u128, RoundReport>>,
}

/// One scheduling decision: either a job to execute, a batch of jobs that
/// expired in the queue, or shutdown.
// A `Work` value lives once per dispatch, not in bulk: the size skew
// between a popped job and the other variants does not matter here.
#[allow(clippy::large_enum_variant)]
enum Work {
    Run(Job),
    Expired(Vec<(Job, Duration)>),
    Done,
}

fn worker_loop(shared: &Shared<'_>) {
    loop {
        let work = {
            let mut queue = shared.queue.lock().expect("stream queue");
            loop {
                // Sweep deadline expirations before every scheduling
                // decision: a job still queued past its deadline is failed
                // here, never dispatched.
                let expired = queue.take_expired(Instant::now());
                if !expired.is_empty() {
                    shared.not_full.notify_all();
                    break Work::Expired(expired);
                }
                if let Some(job) = queue.pop() {
                    shared.not_full.notify_all();
                    break Work::Run(job);
                }
                if queue.closed {
                    break Work::Done;
                }
                queue = shared.not_empty.wait(queue).expect("stream queue");
            }
        };
        let job = match work {
            Work::Done => return,
            Work::Expired(expired) => {
                let mut done = shared.done.lock().expect("completion table");
                for (job, late_by) in expired {
                    let error = Error::DeadlineExceeded { late_by };
                    done.costs.insert(
                        job.index,
                        Completion {
                            ok: false,
                            error: Some(error.to_string()),
                            report: RoundReport::from_ledger(&RoundLedger::new()),
                            expired: true,
                        },
                    );
                    done.results.insert(job.index, Err(error));
                }
                drop(done);
                shared.done_cv.notify_all();
                continue;
            }
            Work::Run(job) => job,
        };
        // Malformed input surfaces as a typed `Err` result; a panic here is
        // reachable only through a bug or a legacy panicking path below the
        // typed API. Poison the scope before re-panicking so a client
        // blocked in `wait`/`submit` fails loudly instead of hanging, then
        // let `thread::scope` propagate the panic out of `serve`.
        let started = Instant::now();
        let (result, built_rounds) =
            match panic::catch_unwind(AssertUnwindSafe(|| execute_job(shared, &job))) {
                Ok(result) => result,
                Err(payload) => {
                    shared.queue.lock().expect("stream queue").poisoned = true;
                    shared.not_full.notify_all();
                    shared.done.lock().expect("completion table").poisoned = true;
                    shared.done_cv.notify_all();
                    panic::resume_unwind(payload);
                }
            };
        // Feed the calibration loop: a successful completion's actual
        // rounds calibrate its kind's rate, and its wall-clock time
        // calibrates the service rate deadline admission converts rounds
        // with (counting any preprocessing this dispatch built — the build
        // shared the measured wall-clock). Failures are skipped — their
        // discarded partial work says nothing about the cost of work that
        // completes.
        if let Ok(outcome) = &result {
            let (kind, dims) = job.request.cost_profile();
            let rounds = outcome.report.total_rounds;
            shared.core.cost.observe(kind, dims, rounds);
            shared
                .core
                .cost
                .observe_service(rounds + built_rounds, started.elapsed());
        }
        let completion = match &result {
            Ok(outcome) => Completion {
                ok: true,
                error: None,
                report: outcome.report.clone(),
                expired: false,
            },
            Err(e) => Completion {
                ok: false,
                error: Some(e.to_string()),
                report: RoundReport::from_ledger(&RoundLedger::new()),
                expired: false,
            },
        };
        let mut done = shared.done.lock().expect("completion table");
        done.costs.insert(job.index, completion);
        done.results.insert(job.index, result);
        drop(done);
        shared.done_cv.notify_all();
    }
}

/// Executes one job, returning its result plus the preprocessing rounds
/// this call *built* (zero on cache hits and for non-Laplacian jobs) — a
/// build shares the job's wall-clock, so the service-rate observation must
/// count its rounds alongside the solve's.
fn execute_job(shared: &Shared<'_>, job: &Job) -> (Result<Outcome<Response>, Error>, u64) {
    match job.fp {
        Some(fp) => {
            let graph = match &job.request {
                Request::Laplacian { graph, .. } => graph,
                _ => unreachable!("only laplacian jobs carry a fingerprint"),
            };
            let (entry, built) =
                shared
                    .core
                    .cache
                    .get_or_build(fp, CostDims::of_graph(graph), || {
                        shared.core.build_entry(graph)
                    });
            // Record the preprocessing cost once per distinct fingerprint —
            // a pure function of (master seed, graph), so whichever worker
            // records it first records the same value.
            shared
                .prep
                .lock()
                .expect("preprocessing reports")
                .entry(fp.as_u128())
                .or_insert_with(|| entry.1.clone());
            let built_rounds = if built { entry.1.total_rounds } else { 0 };
            (
                shared
                    .core
                    .execute(job.index as usize, &job.request, Some(&entry)),
                built_rounds,
            )
        }
        None => (
            shared.core.execute(job.index as usize, &job.request, None),
            0,
        ),
    }
}

/// The submission/collection handle a serve scope's closure works with.
/// Submissions admit work into the bounded queue; collection takes completed
/// results out, in any order.
pub struct StreamClient<'s> {
    shared: &'s Shared<'s>,
}

impl StreamClient<'_> {
    /// Submits one request under a scheduling class, with no deadline.
    ///
    /// Admission is governed by the queue bound: with
    /// [`BackpressurePolicy::Block`] a full queue blocks until a worker
    /// frees a slot; with [`BackpressurePolicy::Reject`] it fails fast.
    /// Rejected submissions consume no submission index, so the admitted
    /// sequence stays dense and the determinism contract applies to exactly
    /// the requests that were admitted.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overloaded`] under the reject policy when the queue
    /// is at capacity.
    pub fn submit(&self, request: Request, priority: Priority) -> Result<Ticket, Error> {
        self.admit(request, priority, None)
    }

    /// Submits one request under a scheduling class with a queueing
    /// deadline, measured from now.
    ///
    /// Admission is deadline-aware: when the class's expected wait — its
    /// queued backlog cost over its WFQ weight share, converted to
    /// wall-clock through the cost model's calibrated service rate —
    /// already exceeds the deadline, the submission is rejected here with
    /// [`Error::DeadlineInfeasible`] instead of queueing work that is
    /// doomed to expire. Like [`Error::Overloaded`] rejections it then
    /// consumes no submission index. An engine whose service rate is not
    /// yet calibrated (no completion observed) admits everything; in
    /// particular an **idle** engine has no backlog and never rejects.
    ///
    /// If the admitted request is still queued when the deadline passes, it
    /// is never dispatched and completes with [`Error::DeadlineExceeded`];
    /// once dispatched it always runs to completion. A zero deadline on a
    /// busy engine therefore always expires — the scheduler checks
    /// deadlines before every dispatch.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overloaded`] under the reject policy when the queue
    /// is at capacity, [`Error::DeadlineInfeasible`] when the expected wait
    /// already exceeds the deadline. An admitted submission's deadline
    /// surfaces later, through [`StreamClient::poll`] /
    /// [`StreamClient::wait`].
    pub fn submit_with_deadline(
        &self,
        request: Request,
        priority: Priority,
        deadline: Duration,
    ) -> Result<Ticket, Error> {
        self.admit(request, priority, Some(deadline))
    }

    fn admit(
        &self,
        request: Request,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<Ticket, Error> {
        // The deadline is measured from the submit call, so anchor it
        // before admission can block on backpressure — time spent waiting
        // for a queue slot counts against it.
        let deadline_at = deadline.and_then(|d| Instant::now().checked_add(d));
        // Fingerprint and cost estimation outside the queue lock — they are
        // the only non-trivial parts of admission.
        let fp = match &request {
            Request::Laplacian { graph, .. } => Some(fingerprint(graph)),
            _ => None,
        };
        let pre_cached = fp.is_some_and(|fp| self.shared.core.cache.contains(fp));
        let kind = request.kind();
        let (cost_kind, dims) = request.cost_profile();
        // The job's estimated cost: its execution, plus the preprocessing
        // rebuild it will trigger if its topology is not cached right now.
        let cost = if self.shared.cost_aware_tags {
            let model = &self.shared.core.cost;
            let mut cost = model.estimate(cost_kind, dims);
            if fp.is_some() && !pre_cached {
                cost = cost.saturating_add(model.estimate(CostKind::LaplacianPreprocess, dims));
            }
            cost
        } else {
            1
        };

        let mut queue = self.shared.queue.lock().expect("stream queue");
        while queue.queued >= self.shared.queue_capacity {
            assert!(
                !queue.poisoned,
                "a stream worker panicked while this submission was blocked on backpressure"
            );
            match self.shared.policy {
                BackpressurePolicy::Reject => {
                    self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(Error::Overloaded {
                        capacity: self.shared.queue_capacity,
                    });
                }
                BackpressurePolicy::Block => {
                    queue = self.shared.not_full.wait(queue).expect("stream queue");
                }
            }
        }
        // Deadline-aware admission: refuse work whose deadline the queued
        // backlog already makes infeasible. Only possible once the service
        // rate is calibrated — a fresh engine admits everything.
        if let Some(deadline) = deadline {
            let wait_rounds = queue.expected_wait_rounds(priority, self.shared.workers);
            if let Some(expected_wait) = self.shared.core.cost.expected_duration(wait_rounds) {
                if expected_wait > deadline {
                    queue.reject_infeasible(priority);
                    return Err(Error::DeadlineInfeasible {
                        deadline,
                        expected_wait,
                    });
                }
            }
        }
        let index = queue.push(priority, request, fp, deadline_at, cost);
        // Record the admission while still holding the queue lock, so the
        // meta log is in submission order by construction.
        self.shared
            .meta
            .lock()
            .expect("submission meta")
            .push(SubmitMeta {
                index,
                kind,
                priority,
                fingerprint: fp,
                pre_cached,
                cost_kind,
                dims,
            });
        drop(queue);
        self.shared.not_empty.notify_all();
        Ok(Ticket {
            index,
            priority,
            scope: self.shared.scope,
        })
    }

    /// Panics on a ticket issued by a different serve scope — its index
    /// would otherwise silently redeem this scope's unrelated result.
    fn check_scope(&self, ticket: Ticket) {
        assert!(
            ticket.scope == self.shared.scope,
            "stream ticket {} was issued by serve scope {}, not the current scope {}",
            ticket.index,
            ticket.scope,
            self.shared.scope
        );
    }

    /// Takes the result of a completed submission, or `None` if it is still
    /// queued or running (or was already collected).
    ///
    /// # Panics
    ///
    /// Panics on a ticket kept from an earlier serve scope.
    pub fn poll(&self, ticket: Ticket) -> Option<Result<Outcome<Response>, Error>> {
        self.check_scope(ticket);
        let mut done = self.shared.done.lock().expect("completion table");
        let result = done.results.remove(&ticket.index);
        if result.is_some() {
            done.collected.insert(ticket.index);
        }
        result
    }

    /// Blocks until the submission completes and takes its result.
    ///
    /// # Panics
    ///
    /// Panics if the ticket's result was already collected (waiting on it
    /// again would otherwise block forever), if the ticket was kept from an
    /// earlier serve scope, or if a worker thread panicked while the wait
    /// was blocked.
    pub fn wait(&self, ticket: Ticket) -> Result<Outcome<Response>, Error> {
        self.check_scope(ticket);
        let mut done = self.shared.done.lock().expect("completion table");
        loop {
            if let Some(result) = done.results.remove(&ticket.index) {
                done.collected.insert(ticket.index);
                return result;
            }
            assert!(
                !done.collected.contains(&ticket.index),
                "stream ticket {} was already collected",
                ticket.index
            );
            assert!(
                !done.poisoned,
                "a stream worker panicked while this wait was blocked"
            );
            done = self.shared.done_cv.wait(done).expect("completion table");
        }
    }

    /// Blocks until the submission completes and takes its result, or for
    /// at most `timeout` — returning the typed [`Error::WaitTimeout`]
    /// instead of blocking forever. A timed-out ticket stays redeemable:
    /// the submission keeps running and a later
    /// [`StreamClient::wait`] / [`StreamClient::poll`] /
    /// `wait_timeout` can still collect it (or it surfaces in
    /// [`StreamOutput::uncollected`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::WaitTimeout`] when the submission has not completed
    /// within `timeout`; the submission's own result (or typed error) once
    /// it has.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`StreamClient::wait`]: a
    /// ticket whose result was already collected, a ticket kept from an
    /// earlier serve scope, or a worker panic while the wait was blocked.
    pub fn wait_timeout(
        &self,
        ticket: Ticket,
        timeout: Duration,
    ) -> Result<Outcome<Response>, Error> {
        self.check_scope(ticket);
        let started = Instant::now();
        let mut done = self.shared.done.lock().expect("completion table");
        loop {
            if let Some(result) = done.results.remove(&ticket.index) {
                done.collected.insert(ticket.index);
                return result;
            }
            assert!(
                !done.collected.contains(&ticket.index),
                "stream ticket {} was already collected",
                ticket.index
            );
            assert!(
                !done.poisoned,
                "a stream worker panicked while this wait was blocked"
            );
            let Some(remaining) = timeout.checked_sub(started.elapsed()) else {
                return Err(Error::WaitTimeout { waited: timeout });
            };
            let (guard, _timed_out) = self
                .shared
                .done_cv
                .wait_timeout(done, remaining)
                .expect("completion table");
            done = guard;
        }
    }

    /// Number of submissions admitted so far in this scope.
    pub fn submitted(&self) -> u64 {
        self.shared.queue.lock().expect("stream queue").next_index
    }

    /// Number of submissions completed so far in this scope (collected or
    /// not).
    pub fn completed(&self) -> u64 {
        let done = self.shared.done.lock().expect("completion table");
        done.costs.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(classes: &[(Priority, u32, Option<RateLimit>)]) -> Vec<(Priority, ClassConfig)> {
        classes
            .iter()
            .map(|(p, w, r)| {
                (
                    *p,
                    ClassConfig {
                        weight: *w,
                        rate: *r,
                    },
                )
            })
            .collect()
    }

    fn request() -> Request {
        Request::sparsify(bcc_graph::generators::complete(4), 0.5)
    }

    fn push(s: &mut WfqScheduler, priority: Priority) -> u64 {
        s.push(priority, request(), None, None, 1)
    }

    #[test]
    fn default_weights_schedule_interactive_ahead_of_bulk_fifo_within_class() {
        // With the default 4:1 weights a small mixed burst still dispatches
        // every interactive job first (their finish tags are 4x denser), and
        // FIFO order holds within each class.
        let mut s = WfqScheduler::new(&config(&[
            (Priority::Interactive, 4, None),
            (Priority::Bulk, 1, None),
        ]));
        push(&mut s, Priority::Bulk);
        push(&mut s, Priority::Interactive);
        push(&mut s, Priority::Bulk);
        push(&mut s, Priority::Interactive);
        assert_eq!(s.queued, 4);
        let order: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|j| j.index).collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
        assert_eq!(s.queued, 0);
        assert!(s.pop().is_none());
    }

    #[test]
    fn wfq_never_starves_bulk_under_sustained_interactive_load() {
        // The regression the WFQ redesign fixes: under the old strict
        // two-class priority queue, one bulk job behind a sustained
        // interactive flood (one new interactive submission per dispatch)
        // was NEVER dispatched — interactive always popped first. Under WFQ
        // at weight 1:1 the bulk job's finish tag is passed by the second
        // interactive arrival, so it dispatches within a small, bounded
        // number of dispatches.
        let mut s = WfqScheduler::new(&config(&[
            (Priority::Interactive, 1, None),
            (Priority::Bulk, 1, None),
        ]));
        push(&mut s, Priority::Interactive);
        let bulk_index = push(&mut s, Priority::Bulk);
        let mut bulk_dispatched_at = None;
        for step in 0..16 {
            let job = s.pop().expect("work is always queued");
            if job.index == bulk_index {
                bulk_dispatched_at = Some(step);
                break;
            }
            // Sustained interactive load: a fresh submission per dispatch.
            push(&mut s, Priority::Interactive);
        }
        let step = bulk_dispatched_at
            .expect("WFQ must dispatch the bulk job despite the interactive flood");
        assert!(
            step <= 3,
            "bulk work must complete within a bounded number of dispatches, took {step}"
        );
        // And the flood is still being served around it.
        assert!(s.classes[0].dispatched >= 1);
    }

    #[test]
    fn weights_apportion_dispatches_proportionally() {
        // Weight 3:1 over a long backlog: every window of 4 dispatches
        // carries 3 interactive and 1 bulk job.
        let mut s = WfqScheduler::new(&config(&[
            (Priority::Interactive, 3, None),
            (Priority::Bulk, 1, None),
        ]));
        for _ in 0..12 {
            push(&mut s, Priority::Interactive);
        }
        for _ in 0..4 {
            push(&mut s, Priority::Bulk);
        }
        let order: Vec<Priority> = std::iter::from_fn(|| s.pop()).map(|j| j.priority).collect();
        for (w, chunk) in order.chunks(4).take(3).enumerate() {
            let bulk = chunk.iter().filter(|p| **p == Priority::Bulk).count();
            assert_eq!(
                bulk, 1,
                "window {w} must carry one bulk dispatch: {order:?}"
            );
        }
    }

    #[test]
    fn rate_limited_class_stays_within_its_token_budget_while_contended() {
        // Bulk limited to 1 dispatch per window of 4; equal weights so only
        // the limiter shapes the schedule. While interactive work competes,
        // every window of 4 dispatches carries at most one bulk job.
        let mut s = WfqScheduler::new(&config(&[
            (Priority::Interactive, 1, None),
            (Priority::Bulk, 1, Some(RateLimit::new(1, 4))),
        ]));
        for _ in 0..10 {
            push(&mut s, Priority::Bulk);
        }
        for _ in 0..10 {
            push(&mut s, Priority::Interactive);
        }
        let order: Vec<Priority> = std::iter::from_fn(|| s.pop()).map(|j| j.priority).collect();
        assert_eq!(order.len(), 20, "the limiter never drops work");
        // Interactive lasts through the first three windows; within them the
        // budget must hold exactly.
        for (w, chunk) in order.chunks(4).take(3).enumerate() {
            let bulk = chunk.iter().filter(|p| **p == Priority::Bulk).count();
            assert!(
                bulk <= 1,
                "window {w} exceeded the bulk token budget: {order:?}"
            );
        }
        // Once only throttled work remains the scheduler stays
        // work-conserving: everything still drains.
        assert!(order[14..].iter().all(|p| *p == Priority::Bulk));
        let stats = s.stats();
        let bulk = stats.class(Priority::Bulk).unwrap();
        assert_eq!(bulk.dispatched, 10);
        assert!(
            bulk.throttled > 0,
            "the limiter must have bitten: {stats:?}"
        );
        assert_eq!(bulk.rate_limit, Some(RateLimit::new(1, 4)));
        assert_eq!(stats.policy, "wfq");
    }

    #[test]
    fn a_zero_window_rate_limit_is_clamped_not_a_division_panic() {
        // The pub fields (and Deserialize) can bypass RateLimit::new, so the
        // scheduler must clamp again: a literal zero window behaves as 1/1
        // instead of panicking on the window arithmetic.
        let mut s = WfqScheduler::new(&config(&[
            (Priority::Interactive, 1, None),
            (
                Priority::Bulk,
                1,
                Some(RateLimit {
                    tokens: 0,
                    window: 0,
                }),
            ),
        ]));
        push(&mut s, Priority::Bulk);
        push(&mut s, Priority::Interactive);
        push(&mut s, Priority::Bulk);
        let order: Vec<Priority> = std::iter::from_fn(|| s.pop()).map(|j| j.priority).collect();
        assert_eq!(order.len(), 3, "everything drains without panicking");
        assert_eq!(
            s.stats().class(Priority::Bulk).unwrap().rate_limit,
            Some(RateLimit::new(1, 1)),
            "the clamped limit is what the report surfaces"
        );
    }

    #[test]
    fn the_expiry_sweep_is_free_without_deadlines() {
        let mut s = WfqScheduler::new(&config(&[
            (Priority::Interactive, 4, None),
            (Priority::Bulk, 1, None),
        ]));
        push(&mut s, Priority::Bulk);
        assert_eq!(s.deadlined, 0);
        assert!(s.take_expired(Instant::now()).is_empty());
        // A dispatched deadline job leaves the deadline count with it.
        s.push(
            Priority::Interactive,
            request(),
            None,
            Some(Instant::now() + Duration::from_secs(600)),
            1,
        );
        assert_eq!(s.deadlined, 1);
        while s.pop().is_some() {}
        assert_eq!(s.deadlined, 0);
    }

    #[test]
    fn expired_jobs_are_swept_before_dispatch_and_charged_to_their_class() {
        let mut s = WfqScheduler::new(&config(&[
            (Priority::Interactive, 4, None),
            (Priority::Bulk, 1, None),
        ]));
        let now = Instant::now();
        s.push(Priority::Bulk, request(), None, Some(now), 1);
        push(&mut s, Priority::Interactive);
        // The sweep a worker runs before every dispatch decision.
        let expired = s.take_expired(now + Duration::from_millis(1));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].0.index, 0);
        assert!(expired[0].1 >= Duration::from_millis(1));
        assert_eq!(s.queued, 1, "expired jobs free their queue slots");
        // The survivor dispatches normally; counters split expiry from
        // dispatch.
        assert_eq!(s.pop().unwrap().index, 1);
        let stats = s.stats();
        assert_eq!(stats.class(Priority::Bulk).unwrap().expired, 1);
        assert_eq!(stats.class(Priority::Bulk).unwrap().dispatched, 0);
        assert_eq!(stats.class(Priority::Interactive).unwrap().dispatched, 1);
        assert_eq!(stats.expired(), 1);
    }

    #[test]
    fn custom_classes_join_the_schedule_with_default_weight() {
        let mut s = WfqScheduler::new(&config(&[
            (Priority::Interactive, 4, None),
            (Priority::Bulk, 1, None),
        ]));
        push(&mut s, Priority::custom(3));
        push(&mut s, Priority::Interactive);
        let order: Vec<Priority> = std::iter::from_fn(|| s.pop()).map(|j| j.priority).collect();
        // Weight 4 interactive outruns the default-weight-1 custom class.
        assert_eq!(order, vec![Priority::Interactive, Priority::custom(3)]);
        let stats = s.stats();
        assert_eq!(stats.classes.len(), 3);
        assert_eq!(stats.classes[2].class, "custom-3");
        assert_eq!(stats.classes[2].weight, 1);
        assert_eq!(stats.class(Priority::custom(3)).unwrap().dispatched, 1);
    }

    #[test]
    fn cost_charged_tags_apportion_dispatches_by_work_not_job_count() {
        // Equal weights, but class A's jobs are three times the estimated
        // work of class B's: fair queueing over *work* means every window
        // of 4 dispatches carries one A job (3 units) and three B jobs
        // (3 units) — unit-job WFQ would alternate 2/2 instead.
        let mut s = WfqScheduler::new(&config(&[
            (Priority::Interactive, 1, None),
            (Priority::Bulk, 1, None),
        ]));
        for _ in 0..4 {
            s.push(Priority::Interactive, request(), None, None, 3);
        }
        for _ in 0..12 {
            s.push(Priority::Bulk, request(), None, None, 1);
        }
        let order: Vec<Priority> = std::iter::from_fn(|| s.pop()).map(|j| j.priority).collect();
        for (w, chunk) in order.chunks(4).take(3).enumerate() {
            let heavy = chunk
                .iter()
                .filter(|p| **p == Priority::Interactive)
                .count();
            assert_eq!(
                heavy, 1,
                "window {w} must carry exactly one heavy dispatch: {order:?}"
            );
        }
    }

    #[test]
    fn zero_cost_tags_degrade_to_global_fifo_without_starvation() {
        // An adversarial (or merely uncalibrated-to-zero) model charges
        // nothing: tags never advance, the (finish, index) tie-break takes
        // over, and everything still drains in submission order.
        let mut s = WfqScheduler::new(&config(&[
            (Priority::Interactive, 4, None),
            (Priority::Bulk, 1, None),
        ]));
        for i in 0..6 {
            let priority = if i % 2 == 0 {
                Priority::Bulk
            } else {
                Priority::Interactive
            };
            s.push(priority, request(), None, None, 0);
        }
        let order: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|j| j.index).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn expected_wait_scales_with_backlog_weight_share_and_workers() {
        let mut s = WfqScheduler::new(&config(&[
            (Priority::Interactive, 3, None),
            (Priority::Bulk, 1, None),
        ]));
        // An idle queue predicts zero wait for every class.
        assert_eq!(s.expected_wait_rounds(Priority::Bulk, 1), 0);
        assert_eq!(s.expected_wait_rounds(Priority::Interactive, 4), 0);
        // 100 rounds queued in each class; active weight is 3 + 1 = 4.
        s.push(Priority::Interactive, request(), None, None, 100);
        s.push(Priority::Bulk, request(), None, None, 100);
        // Bulk serves its backlog at a 1/4 share: 400 scaled rounds, capped
        // at the 200-round total backlog (work conservation), one worker.
        assert_eq!(s.expected_wait_rounds(Priority::Bulk, 1), 200);
        // Interactive's 3/4 share: 100 × 4 / 3 = 133 rounds.
        assert_eq!(s.expected_wait_rounds(Priority::Interactive, 1), 133);
        // More workers shrink the wait proportionally.
        assert_eq!(s.expected_wait_rounds(Priority::Bulk, 4), 50);
        // Infeasible rejections are charged to their class.
        s.reject_infeasible(Priority::Bulk);
        assert_eq!(s.stats().class(Priority::Bulk).unwrap().infeasible, 1);
        assert_eq!(s.stats().infeasible(), 1);
    }

    #[test]
    fn tickets_expose_index_and_priority() {
        let ticket = Ticket {
            index: 7,
            priority: Priority::Bulk,
            scope: 1,
        };
        assert_eq!(ticket.index(), 7);
        assert_eq!(ticket.priority(), Priority::Bulk);
        assert_eq!(ticket.priority().label(), "bulk");
        assert_eq!(Priority::custom(9).label(), "custom-9");
    }
}
