//! Streaming service layer: incremental submission, weighted fair queueing,
//! per-request deadlines and bounded backpressure over the paper's four
//! pipelines.
//!
//! Where [`crate::batch::BatchEngine`] serves one closed slice of requests
//! per call, a [`StreamEngine`] is a long-lived service: callers submit
//! [`Request`]s **one at a time** while earlier submissions are still in
//! flight, tag each with a scheduling class ([`Priority`]), and collect
//! results through [`Ticket`] handles ([`StreamClient::poll`] /
//! [`StreamClient::wait`]) as they complete — possibly far out of submission
//! order.
//!
//! # Scheduling: weighted fair queueing
//!
//! Dispatch order is decided by a **weighted fair queueing (WFQ)** scheduler
//! over an open set of classes. The two built-in classes
//! ([`Priority::Interactive`], default weight 4, and [`Priority::Bulk`],
//! default weight 1) can be joined by up to 256 caller-defined classes
//! ([`Priority::custom`]); per-class weights are configured with
//! [`StreamEngineBuilder::class_weight`]. Every admitted job receives a
//! virtual finish time `max(V, F_class) + 1/weight` (the classic
//! virtual-clock tag with unit-size jobs) and workers always dispatch the
//! queued job with the smallest tag — so a class with weight `w` receives a
//! `w`-proportional share of dispatches and **no class can be starved**: a
//! flood of interactive traffic merely advances the interactive finish tags
//! past the bulk ones, unlike the strict two-class priority queue this
//! scheduler replaced.
//!
//! A class may additionally carry a **token-bucket rate limit**
//! ([`StreamEngineBuilder::class_rate_limit`]): at most
//! [`RateLimit::tokens`] of its jobs are dispatched per scheduling window of
//! [`RateLimit::window`] consecutive dispatches. The limiter is
//! *work-conserving* — it shapes the order among competing classes but never
//! idles a worker: when every queued class is throttled, the smallest-tag
//! job runs anyway. Per-class submission/dispatch/expiry/throttle counters
//! are surfaced in [`StreamReport::scheduler`].
//!
//! # Size-aware tags: the unified cost model
//!
//! By default the virtual-clock tags are **size-aware**
//! ([`StreamEngineBuilder::cost_aware_tags`], default on): instead of one
//! unit per job, a job charges its *estimated rounds* as predicted by the
//! engine's shared [`crate::cost::CostModel`] — `max(V, F_class) +
//! cost / weight` — so a giant LP consumes proportionally more of its
//! class's share than a tiny solve, which is what "weighted fair" should
//! mean under the paper's round-complexity cost model. The model calibrates
//! itself online from completed requests (see [`crate::cost`]); its
//! predictions steer dispatch order, deadline admission and cost-aware
//! cache eviction, and per-class predicted-vs-actual sums are reported in
//! [`ClassStats::predicted_rounds`] / [`ClassStats::actual_rounds`]
//! (computed by a deterministic submission-order replay of the calibration
//! loop, so the report never depends on scheduling). With
//! `cost_aware_tags(false)` every job charges one unit, which is exactly
//! the previous behaviour.
//!
//! # Deadlines
//!
//! [`StreamClient::submit_with_deadline`] attaches a deadline to one
//! submission. Admission is **deadline-aware**: when the class's expected
//! wait — queued backlog cost divided by the class's weight share, converted
//! to wall-clock through the model's calibrated service rate — already
//! exceeds the deadline, the submission is rejected *at submit time* with
//! the typed [`Error::DeadlineInfeasible`] (counted in
//! [`ClassStats::infeasible`]; like [`Error::Overloaded`] rejections it
//! consumes no submission index). An engine that has never completed a
//! request has no calibrated service rate and admits everything — an idle
//! engine never calls a deadline infeasible.
//!
//! A request that was admitted but is **still queued** when its deadline
//! passes is never dispatched: it completes with the typed
//! [`Error::DeadlineExceeded`] instead (and counts into
//! [`ClassStats::expired`]). Work that was already dispatched always runs to
//! completion — a deadline bounds queueing delay, it never cancels running
//! work. Expired requests touch neither a worker session nor the Laplacian
//! cache and are metered with an empty [`RoundReport`].
//!
//! # The elastic worker pool
//!
//! The pool that serves the queue can be **elastic**
//! ([`StreamEngineBuilder::elastic_workers`]): the engine spawns
//! `max` worker threads but only a *target* number of them dispatch at any
//! moment; the rest park on the queue's condvar. The target is resized
//! between the configured bounds from the queue's **backlog cost ÷
//! calibrated service rate**: when the estimated wall-clock drain time of
//! the queued rounds exceeds the drain horizon, workers unpark *before*
//! queued deadlines become infeasible; when the queue empties, the target
//! falls back to `min` and idle workers park again. While the service rate
//! is uncalibrated the pool falls back to one worker per queued job
//! (clamped to the bounds) — growth must not wait on a model that has
//! never observed a completion. [`StreamEngineBuilder::workers`] pins
//! `min = max` (a fixed pool, the previous behaviour and the default).
//! Pool resizing is timing-dependent, so its counters surface in
//! [`StreamOutput::pool`] — never in the deterministic [`StreamReport`] —
//! and bit-identity of results holds across any bounds and resize timing,
//! because per-submission seeds depend only on submission indices.
//!
//! # Determinism contract
//!
//! Exactly as in [`crate::batch`]: scheduling never leaks into results. A
//! submission's seed is a pure function of the engine's master seed and its
//! **submission index** (the same splitmix64 derivation as
//! [`crate::batch::BatchEngine::request_seed`]), and every Laplacian solve
//! runs on a clone of a prepared solver built at the master seed alone, via
//! the shared bounded cache of [`crate::cache`]. Consequently a stream run
//! is bit-identical to the sequential [`crate::Session`] loop of the batch
//! contract for **any** worker count, class/weight vector, rate limit, queue
//! capacity, cost-model configuration (size-aware tags on or off, whatever
//! the model predicts — including adversarial zero or enormous estimates)
//! and submission/collection interleaving — WFQ may only reorder
//! *completion*, never change a per-submission seed — and cache eviction
//! (whatever the [`crate::cache::EvictionPolicy`]) only re-pays
//! preprocessing rounds, it never changes a result. Deadlines are the one
//! deliberate exception: whether a deadline expires (or is rejected as
//! infeasible at admission) depends on wall-clock scheduling, so only
//! submissions without (or with generous) deadlines are covered by the
//! bit-identity contract. `tests/stream.rs` enforces all of this.
//!
//! # Clocks and latency
//!
//! Every time-dependent decision — anchoring deadlines, sweeping expired
//! jobs, timestamping submissions, measuring the wall-clock service time
//! that calibrates deadline admission — reads the engine's injectable
//! [`Clock`] ([`StreamEngineBuilder::clock`], default
//! [`crate::clock::SystemClock`]). Injecting a
//! [`crate::clock::VirtualClock`] makes all of it deterministic: a frozen
//! virtual clock never expires a deadline and reports every latency sample
//! as exactly zero. Per-ticket timestamps are folded into per-class
//! queue-wait and end-to-end percentiles in [`StreamOutput::latency`]
//! (expired submissions are excluded — they never dispatched).
//!
//! # Shutdown and drain
//!
//! [`StreamEngine::serve`] scopes the worker pool around a closure. When the
//! closure returns, the engine **drains**: no new submissions are admitted,
//! every already-admitted request still executes (or expires, if its
//! deadline passes while it waits), and results the closure never collected
//! come back in [`StreamOutput::uncollected`]. The aggregated
//! [`StreamReport`] always covers *every* admitted submission.
//!
//! # Example
//!
//! ```
//! use bcc_core::stream::{Priority, RateLimit, StreamEngine};
//! use bcc_core::batch::Request;
//! use bcc_core::graph::generators;
//!
//! let grid = generators::grid(4, 4);
//! let mut b = vec![0.0; grid.n()];
//! b[0] = 1.0;
//! b[15] = -1.0;
//!
//! let mut engine = StreamEngine::builder()
//!     .seed(2022)
//!     .workers(2)
//!     .class_weight(Priority::Bulk, 2)
//!     .class_rate_limit(Priority::Bulk, RateLimit::new(1, 4))
//!     .build();
//! let output = engine.serve(|client| {
//!     let fast = client
//!         .submit(Request::laplacian(grid.clone(), b.clone()), Priority::Interactive)
//!         .unwrap();
//!     let slow = client
//!         .submit(Request::sparsify(generators::complete(12), 0.5), Priority::Bulk)
//!         .unwrap();
//!     // Results are collected as they finish, in any order.
//!     let solve = client.wait(fast).unwrap();
//!     let sparsifier = client.wait(slow).unwrap();
//!     (solve, sparsifier)
//! });
//! assert_eq!(output.report.requests, 2);
//! assert_eq!(output.report.failures, 0);
//! assert!(output.uncollected.is_empty());
//! ```

use std::collections::{HashMap, HashSet};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use bcc_graph::{fingerprint, GraphFingerprint};
use bcc_laplacian::ScratchArena;
use bcc_runtime::{ModelConfig, RoundLedger};
use serde::{Deserialize, Serialize};

use crate::batch::{PreprocessingCost, RequestCost};
use crate::cache::{CacheStats, EvictionPolicy};
use crate::clock::{Clock, SystemClock};
use crate::config::{ConfigError, EngineConfig};
use crate::cost::{CalibrationCell, CostDims, CostKind, CostModel};
use crate::error::Error;
use crate::latency::{ClassLatency, LatencyPercentiles, LatencyReport};
use crate::report::RoundReport;
use crate::serve::{EngineCore, RequestRecord};
use crate::session::{Outcome, Session};
use crate::telemetry::{EngineCounters, MetricsSnapshot, TelemetrySink, TraceEvent, NO_REQUEST};
use crate::wfq::{ClassConfig, WfqJob, WfqQueue};

pub use crate::serve::{Request, Response};
pub use crate::wfq::{ClassStats, Priority, RateLimit, SchedulerStats};

/// What [`StreamClient::submit`] does when the bounded admission queue is
/// full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Block the submitting thread until a queue slot frees (the default —
    /// no submission is ever lost).
    Block,
    /// Fail fast with [`Error::Overloaded`], leaving the caller to retry or
    /// shed load.
    Reject,
}

impl BackpressurePolicy {
    /// The policy name used in serialized configs: `"block"` or `"reject"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            BackpressurePolicy::Block => "block",
            BackpressurePolicy::Reject => "reject",
        }
    }
}

impl std::fmt::Display for BackpressurePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Serializes as the policy name string ([`BackpressurePolicy::as_str`]).
impl Serialize for BackpressurePolicy {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.as_str().to_string())
    }
}

/// Deserializes from the policy name: `"block"` or `"reject"`.
impl Deserialize for BackpressurePolicy {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        match value {
            serde::Value::String(name) => match name.as_str() {
                "block" => Ok(BackpressurePolicy::Block),
                "reject" => Ok(BackpressurePolicy::Reject),
                other => Err(serde::Error::custom(format!(
                    "unknown backpressure policy `{other}` (expected `block` or `reject`)"
                ))),
            },
            _ => Err(serde::Error::custom(
                "expected a backpressure-policy string",
            )),
        }
    }
}

/// Completion handle of one admitted submission, returned by
/// [`StreamClient::submit`]. Redeem it with [`StreamClient::poll`] or
/// [`StreamClient::wait`]; tickets never expire while the serve scope runs,
/// and unredeemed tickets surface in [`StreamOutput::uncollected`].
///
/// A ticket is bound to the serve scope that issued it: redeeming a ticket
/// kept from an earlier [`StreamEngine::serve`] call panics instead of
/// silently returning a later scope's result for the same index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    index: u64,
    priority: Priority,
    /// Serial number of the serve scope that issued this ticket.
    scope: u64,
}

impl Ticket {
    /// The submission index — the request's position in admission order,
    /// and the index its seed is derived from
    /// ([`StreamEngine::request_seed`]).
    pub fn index(&self) -> u64 {
        self.index
    }

    /// The scheduling class the request was submitted under.
    pub fn priority(&self) -> Priority {
        self.priority
    }
}

/// The version tag written into [`StreamReport::schema`].
pub const STREAM_REPORT_SCHEMA: &str = "bcc-stream-report/v1";

/// Aggregated, serializable accounting of one [`StreamEngine::serve`] scope
/// — the payload of the `BENCH_stream.json` trajectory. Mirrors
/// [`crate::batch::BatchReport`] (same [`RequestCost`] /
/// [`PreprocessingCost`] vocabulary, per-request costs in submission order)
/// plus streaming-specific counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamReport {
    /// Schema tag consumers can dispatch on (`"bcc-stream-report/v1"`).
    pub schema: String,
    /// Number of admitted submissions.
    pub requests: u64,
    /// Number of failed submissions (typed pipeline errors plus deadline
    /// expirations).
    pub failures: u64,
    /// Submissions admitted under [`Priority::Interactive`].
    pub interactive: u64,
    /// Submissions admitted under [`Priority::Bulk`].
    pub bulk: u64,
    /// Submissions rejected with [`Error::Overloaded`] (never admitted; they
    /// consume no submission index and appear nowhere else in the report).
    pub rejected: u64,
    /// Submissions that expired in the queue with
    /// [`Error::DeadlineExceeded`] (also counted in
    /// [`StreamReport::failures`] and per class in
    /// [`ClassStats::expired`]).
    pub expired: u64,
    /// Submissions rejected at admission with
    /// [`Error::DeadlineInfeasible`] — their deadline was already infeasible
    /// given the queued backlog and the calibrated service rate. Like
    /// [`StreamReport::rejected`] they consume no submission index and
    /// appear nowhere else in the report (per class in
    /// [`ClassStats::infeasible`]).
    pub infeasible: u64,
    /// Per-class WFQ scheduler counters of this serve scope.
    pub scheduler: SchedulerStats,
    /// Laplacian submissions that reused a prepared solver (first submission
    /// of a fingerprint counts as the miss, exactly as in
    /// [`crate::batch::BatchReport::cache_hits`]).
    pub cache_hits: u64,
    /// Laplacian submissions that paid preprocessing.
    pub cache_misses: u64,
    /// Cache-level hit/miss/eviction counters over the engine's lifetime,
    /// as of the end of this serve scope. Under capacity pressure with
    /// concurrent workers these can depend on scheduling (rebuilds after
    /// eviction). With an **unbounded** cache (the default) everything else
    /// in this report is scheduling-independent too (deadline and throttle
    /// counters aside); under a capacity bound, an eviction racing the first
    /// submission of a previously cached fingerprint can additionally flip
    /// that fingerprint's `cached` / hit classification (and with it the
    /// charged preprocessing in [`StreamReport::total`]) — *results* stay
    /// bit-identical regardless.
    pub cache: CacheStats,
    /// Total accounted communication cost of the scope: every successful
    /// submission's report plus each distinct *new* fingerprint's
    /// preprocessing charged exactly once, folded in submission order (so
    /// the total is independent of completion order).
    pub total: RoundReport,
    /// Per-distinct-fingerprint preprocessing costs, in first-submission
    /// order.
    pub preprocessing: Vec<PreprocessingCost>,
    /// Per-submission costs, in submission order.
    pub per_request: Vec<RequestCost>,
    /// The cost model's calibration state over this scope's workload — one
    /// entry per observed `(kind, size-bucket)` cell, in stable order.
    /// Snapshotted from the same deterministic submission-order replay that
    /// fills [`ClassStats::predicted_rounds`], so it is a pure function of
    /// the admitted workload (the live model's cell sums may differ only in
    /// which scope's completions they span, never in their totals).
    pub calibration: Vec<CalibrationCell>,
}

/// Everything one [`StreamEngine::serve`] scope returns.
#[derive(Debug)]
pub struct StreamOutput<T> {
    /// The closure's return value.
    pub value: T,
    /// Results of admitted submissions the closure never polled or waited
    /// for, in submission order — the engine drains them before shutting
    /// down rather than dropping them.
    pub uncollected: Vec<(u64, Result<Outcome<Response>, Error>)>,
    /// Aggregated accounting of every admitted submission.
    pub report: StreamReport,
    /// Per-class queue-wait and end-to-end latency percentiles of this
    /// scope, timestamped against the engine's [`Clock`]. Expired
    /// submissions are excluded (they never dispatched); under the default
    /// [`SystemClock`] the figures are wall-clock and timing-dependent,
    /// under a [`crate::clock::VirtualClock`] they are a pure function of
    /// how the test drove the clock.
    pub latency: LatencyReport,
    /// Worker-pool sizing counters of this scope. Resize decisions race
    /// completions, so these are timing-dependent — which is why they live
    /// here and not in the deterministic [`StreamReport`].
    pub pool: PoolStats,
}

/// Elastic worker-pool counters of one serve scope (see the [module
/// docs](self) on the pool). With a fixed pool (`min == max`, the default)
/// every field is trivial: the target never moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// The configured lower worker bound.
    pub min_workers: usize,
    /// The configured upper worker bound (threads actually spawned).
    pub max_workers: usize,
    /// Times the target grew (workers unparked to absorb backlog).
    pub grows: u64,
    /// Times the target shrank (workers parked as the queue drained).
    pub shrinks: u64,
    /// The largest target reached during the scope.
    pub peak_workers: usize,
}

/// Builder of a [`StreamEngine`].
///
/// Every deterministic knob lives in one serde-roundtrippable
/// [`EngineConfig`] the builder holds internally — the fluent setters are
/// thin wrappers over its fields, [`StreamEngineBuilder::from_config`]
/// starts from a validated config, and [`StreamEngineBuilder::to_config`]
/// extracts the current one (to persist, or to hand to the `bcc-served`
/// daemon). Only the three run-time handles — [`CostModel`],
/// [`Clock`], [`TelemetrySink`] — stay outside the config.
#[derive(Debug, Clone)]
pub struct StreamEngineBuilder {
    /// All deterministic knobs, shared schema-for-schema with
    /// [`crate::batch::BatchEngineBuilder`] and the serving daemon.
    config: EngineConfig,
    /// The cost model the engine starts from; `None` builds a default one.
    cost_model: Option<Arc<CostModel>>,
    /// The time source of the engine; `None` builds a [`SystemClock`].
    clock: Option<Arc<dyn Clock>>,
    /// The engine's telemetry sink; disabled by default.
    telemetry: TelemetrySink,
}

impl Default for StreamEngineBuilder {
    fn default() -> Self {
        StreamEngineBuilder {
            config: EngineConfig::default(),
            cost_model: None,
            clock: None,
            telemetry: TelemetrySink::disabled(),
        }
    }
}

impl StreamEngineBuilder {
    /// Starts a builder from a validated [`EngineConfig`] — the exact
    /// schema `bcc-served --config` reads from disk and both engine
    /// builders consume.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] of [`EngineConfig::validate`];
    /// unlike the fluent setters (which clamp), a config read from a file
    /// fails loudly instead of being silently repaired.
    pub fn from_config(config: EngineConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(StreamEngineBuilder {
            config,
            ..StreamEngineBuilder::default()
        })
    }

    /// The builder's current [`EngineConfig`] — round-trips through
    /// [`StreamEngineBuilder::from_config`] unchanged.
    pub fn to_config(&self) -> EngineConfig {
        self.config.clone()
    }

    /// Sets the clique model configuration of the worker sessions.
    pub fn model(mut self, model: ModelConfig) -> Self {
        self.config.model = model;
        self
    }

    /// Sets the master seed per-submission seeds are derived from.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the default solve accuracy of the worker sessions.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.config.epsilon = epsilon;
        self
    }

    /// Sets a **fixed** worker-thread count (default: the machine's
    /// available parallelism, capped at 8). A count of 1 serves submissions
    /// strictly one at a time — useful to observe the determinism contract
    /// directly. Clears any [`StreamEngineBuilder::elastic_workers`]
    /// bounds.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = Some(workers.max(1));
        self.config.max_workers = None;
        self
    }

    /// Makes the worker pool **elastic** between `min` and `max` threads
    /// (both floored at 1; `max` floored at `min`). The engine spawns `max`
    /// threads but parks all beyond the current *target*, which is resized
    /// from the queued backlog cost ÷ the cost model's calibrated service
    /// rate — see the [module docs](self). Results stay bit-identical to
    /// any fixed pool; only latency (and the timing-dependent
    /// [`StreamOutput::pool`] counters) can differ.
    pub fn elastic_workers(mut self, min: usize, max: usize) -> Self {
        let min = min.max(1);
        self.config.workers = Some(min);
        self.config.max_workers = Some(max.max(min));
        self
    }

    /// Sets the number of cache shards (default 16).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards.max(1);
        self
    }

    /// Bounds the admission queue to `capacity` waiting submissions
    /// (default 64, minimum 1). What happens beyond the bound is decided by
    /// [`StreamEngineBuilder::backpressure`].
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the overflow behaviour of the bounded admission queue (default
    /// [`BackpressurePolicy::Block`]).
    pub fn backpressure(mut self, policy: BackpressurePolicy) -> Self {
        self.config.backpressure = policy;
        self
    }

    /// Bounds the prepared-Laplacian cache to at most `capacity` entries
    /// (default: unbounded), evicting per the configured
    /// [`StreamEngineBuilder::eviction_policy`]. Eviction re-pays
    /// preprocessing on the next request for the evicted topology but never
    /// changes results.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.config.cache_capacity = Some(capacity);
        self
    }

    /// Selects the cache eviction policy (default
    /// [`EvictionPolicy::Lru`]). Only relevant under a
    /// [`StreamEngineBuilder::cache_capacity`] bound.
    pub fn eviction_policy(mut self, policy: EvictionPolicy) -> Self {
        self.config.eviction_policy = policy;
        self
    }

    /// Enables or disables size-aware WFQ tags (default **on**): when on,
    /// each job's virtual finish tag charges its estimated cost per the
    /// engine's shared [`CostModel`]; when off, every job charges one unit
    /// (the pre-cost-model discipline). Either way results stay
    /// bit-identical to the sequential [`Session`] loop — the tags decide
    /// dispatch order only.
    pub fn cost_aware_tags(mut self, enabled: bool) -> Self {
        self.config.cost_aware_tags = enabled;
        self
    }

    /// Replaces the engine's [`CostModel`] (default: a fresh model with the
    /// standard priors). Useful to carry calibration across engines, or to
    /// inject adversarial priors in tests — any model, however wrong, may
    /// only affect latency, never results.
    pub fn cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = Some(Arc::new(model));
        self
    }

    /// Attaches a live [`TelemetrySink`] (default: a disabled sink, which
    /// reduces every instrumentation point to a single `Option` check).
    /// An **enabled** sink records lock-free engine counters, gauges and
    /// duration histograms into its [`crate::telemetry::MetricsRegistry`]
    /// and per-request lifecycle [`TraceEvent`]s timestamped on the
    /// engine's [`Clock`] — so traces taken under a
    /// [`crate::clock::VirtualClock`] are deterministic. Snapshot live
    /// metrics with [`StreamClient::telemetry_snapshot`] (or through a
    /// retained clone of the sink, which shares the same registry and
    /// tracer). Telemetry is strictly write-only: nothing it records feeds
    /// back into scheduling or results, so the determinism contract is
    /// unchanged with tracing on or off.
    pub fn telemetry(mut self, sink: TelemetrySink) -> Self {
        self.telemetry = sink;
        self
    }

    /// Injects the engine's time source (default: a fresh [`SystemClock`]).
    /// Every deadline anchor, expiry sweep, latency timestamp and
    /// service-rate observation reads this clock; injecting a
    /// [`crate::clock::VirtualClock`] makes them all deterministic (see
    /// [`crate::clock`]).
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Sets the WFQ weight of one scheduling class (clamped to at least 1).
    /// Defaults: [`Priority::Interactive`] 4, [`Priority::Bulk`] 1, custom
    /// classes 1. A class with weight `w` receives a `w`-proportional share
    /// of dispatches under contention.
    pub fn class_weight(mut self, class: Priority, weight: u32) -> Self {
        self.config.class_entry(class).weight = weight.max(1);
        self
    }

    /// Attaches a token-bucket [`RateLimit`] to one scheduling class
    /// (default: none). The limiter shapes dispatch order among competing
    /// classes and is work-conserving.
    pub fn class_rate_limit(mut self, class: Priority, limit: RateLimit) -> Self {
        self.config.class_entry(class).rate_limit = Some(limit.clamped());
        self
    }

    /// Copies model, seed and epsilon from an existing [`Session`], so the
    /// engine serves exactly what that session would serve.
    pub fn from_session(self, session: &Session) -> Self {
        self.model(session.model())
            .seed(session.seed())
            .epsilon(session.epsilon())
    }

    /// Finishes the builder.
    pub fn build(mut self) -> StreamEngine {
        let min_workers = self.config.workers.unwrap_or_else(|| {
            thread::available_parallelism()
                .map(|p| p.get().min(8))
                .unwrap_or(4)
        });
        let max_workers = self
            .config
            .max_workers
            .unwrap_or(min_workers)
            .max(min_workers);
        // Normalize: both built-in classes always exist, order is the
        // deterministic class order of the scheduler stats.
        self.config.class_entry(Priority::Interactive);
        self.config.class_entry(Priority::Bulk);
        let mut classes: Vec<(Priority, ClassConfig)> = self
            .config
            .classes
            .iter()
            .map(|entry| {
                (
                    entry.class,
                    ClassConfig {
                        weight: entry.weight.max(1),
                        rate: entry.rate_limit.map(RateLimit::clamped),
                    },
                )
            })
            .collect();
        classes.sort_by_key(|(p, _)| p.key());
        StreamEngine {
            core: EngineCore::new(
                self.config.model,
                self.config.seed,
                self.config.epsilon,
                self.config.shards,
                self.config.cache_capacity,
                self.config.eviction_policy,
                self.cost_model
                    .unwrap_or_else(|| Arc::new(CostModel::new())),
                self.telemetry,
            ),
            min_workers,
            max_workers,
            queue_capacity: self.config.queue_capacity,
            backpressure: self.config.backpressure,
            cost_aware_tags: self.config.cost_aware_tags,
            clock: self.clock.unwrap_or_else(|| Arc::new(SystemClock::new())),
            classes,
            ledger: RoundLedger::new(),
            scopes: 0,
        }
    }
}

/// A long-lived streaming server for the paper's four pipelines: incremental
/// submission, weighted fair queueing over an open class set, per-request
/// deadlines, bounded backpressure, graceful drain and the shared bounded
/// Laplacian cache. See the [module documentation](self) for the scheduling
/// discipline and the determinism contract.
#[derive(Debug)]
pub struct StreamEngine {
    core: EngineCore,
    /// Elastic pool bounds; a fixed pool has `min_workers == max_workers`.
    min_workers: usize,
    max_workers: usize,
    queue_capacity: usize,
    backpressure: BackpressurePolicy,
    /// Whether WFQ tags charge estimated cost (true) or one unit (false).
    cost_aware_tags: bool,
    /// The engine's time source (see [`crate::clock`]).
    clock: Arc<dyn Clock>,
    /// Normalized class configuration, sorted by class key.
    classes: Vec<(Priority, ClassConfig)>,
    ledger: RoundLedger,
    /// Serve scopes run so far; brands tickets so stale ones fail loudly.
    scopes: u64,
}

impl Default for StreamEngine {
    fn default() -> Self {
        StreamEngine::builder().build()
    }
}

impl StreamEngine {
    /// Starts a builder with laboratory defaults (BCC model, seed 2022,
    /// `ε = 1e-6`, 16 shards, queue capacity 64, blocking backpressure,
    /// unbounded LRU cache, interactive:bulk weights 4:1, no rate limits).
    pub fn builder() -> StreamEngineBuilder {
        StreamEngineBuilder::default()
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.core.seed
    }

    /// The worker-thread count: the number of threads a serve scope spawns.
    /// For an elastic pool this is the upper bound — threads beyond the
    /// current target park instead of dispatching.
    pub fn workers(&self) -> usize {
        self.max_workers
    }

    /// The elastic pool's `(min, max)` worker bounds. Equal for a fixed
    /// pool (the default).
    pub fn worker_bounds(&self) -> (usize, usize) {
        (self.min_workers, self.max_workers)
    }

    /// The admission-queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// The configured backpressure policy.
    pub fn backpressure(&self) -> BackpressurePolicy {
        self.backpressure
    }

    /// Whether WFQ tags are size-aware (charge estimated cost) or unit
    /// jobs.
    pub fn cost_aware_tags(&self) -> bool {
        self.cost_aware_tags
    }

    /// The engine's shared cost model — calibrated by completions, consulted
    /// by the scheduler, deadline admission and cost-aware eviction.
    pub fn cost_model(&self) -> &CostModel {
        &self.core.cost
    }

    /// The engine's telemetry sink (disabled unless one was attached with
    /// [`StreamEngineBuilder::telemetry`]). Clones share the same registry
    /// and tracer, so a caller can export metrics and traces after (or
    /// during) a serve scope from its own handle.
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.core.telemetry
    }

    /// The WFQ weight of a class (its default if never configured).
    pub fn class_weight(&self, class: Priority) -> u32 {
        self.classes
            .iter()
            .find(|(p, _)| *p == class)
            .map(|(_, c)| c.weight)
            .unwrap_or_else(|| class.default_weight())
    }

    /// The rate limit of a class, if one was configured.
    pub fn class_rate_limit(&self, class: Priority) -> Option<RateLimit> {
        self.classes
            .iter()
            .find(|(p, _)| *p == class)
            .and_then(|(_, c)| c.rate)
    }

    /// Number of prepared Laplacian solvers currently cached (including
    /// cached preprocessing failures). Never exceeds the configured
    /// [`StreamEngineBuilder::cache_capacity`].
    pub fn cached_graphs(&self) -> usize {
        self.core.cache.len()
    }

    /// Hit/miss/eviction counters of the prepared-Laplacian cache over this
    /// engine's lifetime.
    pub fn cache_stats(&self) -> CacheStats {
        self.core.cache.stats()
    }

    /// The configured cache capacity bound (`None` = unbounded).
    pub fn cache_capacity(&self) -> Option<usize> {
        self.core.cache.capacity()
    }

    /// The configured cache eviction policy.
    pub fn eviction_policy(&self) -> EvictionPolicy {
        self.core.cache.policy()
    }

    /// Drops every cached prepared solver (counters are kept).
    pub fn clear_cache(&mut self) {
        self.core.cache.clear();
    }

    /// The deterministic seed of submission `index` — the same derivation as
    /// [`crate::batch::BatchEngine::request_seed`], so a sequential
    /// [`Session`] loop over the submissions reproduces every stream result
    /// bit for bit.
    pub fn request_seed(&self, index: usize) -> u64 {
        self.core.request_seed(index)
    }

    /// Cumulative communication cost of every serve scope this engine ran
    /// (per-submission costs plus each newly built preprocessing charged
    /// exactly once per scope).
    pub fn cumulative_report(&self) -> RoundReport {
        RoundReport::from_ledger(&self.ledger)
    }

    /// Runs a serve scope: spawns the worker pool, hands the closure a
    /// [`StreamClient`] for incremental submission and collection, and on
    /// closure return drains every admitted submission before aggregating.
    /// If the closure panics, the engine still shuts the workers down
    /// cleanly, then resumes the panic. If a *worker* panics (only reachable
    /// through a bug or a legacy panicking path below the typed API), the
    /// scope is poisoned: blocked `wait`/`submit` calls panic instead of
    /// hanging, and the panic propagates out of `serve`.
    pub fn serve<T>(&mut self, f: impl FnOnce(&StreamClient<'_>) -> T) -> StreamOutput<T> {
        self.scopes += 1;
        let shared = Shared {
            core: &self.core,
            scope: self.scopes,
            queue_capacity: self.queue_capacity,
            policy: self.backpressure,
            cost_aware_tags: self.cost_aware_tags,
            pool: PoolState::new(self.min_workers, self.max_workers),
            clock: self.clock.as_ref(),
            queue: Mutex::new(StreamQueue::new(&self.classes)),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            done: Mutex::new(DoneState::default()),
            done_cv: Condvar::new(),
            meta: Mutex::new(Vec::new()),
            rejected: AtomicU64::new(0),
            prep: Mutex::new(HashMap::new()),
            tcounters: self.core.telemetry.registry().map(EngineCounters::register),
        };
        let value = thread::scope(|scope| {
            // Spawn the pool's upper bound of threads; the ones beyond the
            // current target park in `worker_loop` until a resize (or the
            // drain) wakes them — parking is how the pool "shrinks" without
            // the lifetime gymnastics of spawning into a borrowed scope.
            let shared = &shared;
            for id in 0..self.max_workers {
                scope.spawn(move || worker_loop(shared, id));
            }
            let client = StreamClient { shared };
            let value = panic::catch_unwind(AssertUnwindSafe(|| f(&client)));
            // Close the queue: workers drain what was admitted, then exit;
            // the scope joins them before we aggregate.
            shared.queue.lock().expect("stream queue").closed = true;
            shared.not_empty.notify_all();
            shared.not_full.notify_all();
            match value {
                Ok(value) => value,
                Err(payload) => panic::resume_unwind(payload),
            }
        });
        let (uncollected, report, latency) = self.aggregate(&shared);
        self.ledger
            .charge_phases(report.total.breakdown.iter().map(|(n, s)| (n.as_str(), *s)));
        StreamOutput {
            value,
            uncollected,
            report,
            latency,
            pool: shared.pool.stats(),
        }
    }

    /// Folds every admitted submission into the deterministic
    /// [`StreamReport`] through the shared accounting core: per-request
    /// costs in submission order, analytic hit/miss accounting (first
    /// submission of a fingerprint is the miss), preprocessing charged once
    /// per distinct new fingerprint — all independent of completion order.
    #[allow(clippy::type_complexity)]
    fn aggregate(
        &self,
        shared: &Shared<'_>,
    ) -> (
        Vec<(u64, Result<Outcome<Response>, Error>)>,
        StreamReport,
        LatencyReport,
    ) {
        let mut meta = std::mem::take(&mut *shared.meta.lock().expect("submission meta"));
        meta.sort_by_key(|m| m.index);
        let mut done = shared.done.lock().expect("completion table");
        let prep = shared.prep.lock().expect("preprocessing reports");
        let mut scheduler = shared.queue.lock().expect("stream queue").q.stats();

        // Fold the per-ticket timestamps into per-class latency samples, in
        // submission order (so the fold itself is deterministic; the sample
        // values are as deterministic as the engine's clock). Expired
        // submissions never dispatched and carry no samples.
        let mut samples: HashMap<String, (Vec<u64>, Vec<u64>)> = HashMap::new();
        for m in &meta {
            let completion = done
                .costs
                .get(&m.index)
                .expect("the drained scope completed every admitted submission");
            if completion.expired {
                continue;
            }
            let entry = samples.entry(m.priority.label()).or_default();
            entry.0.push(completion.wait_ns);
            entry.1.push(completion.e2e_ns);
        }
        let latency = LatencyReport {
            classes: scheduler
                .classes
                .iter()
                .map(|class| {
                    let (wait, e2e) = samples.remove(&class.class).unwrap_or_default();
                    ClassLatency {
                        class: class.class.clone(),
                        queue_wait: LatencyPercentiles::from_ns_samples(wait),
                        end_to_end: LatencyPercentiles::from_ns_samples(e2e),
                    }
                })
                .collect(),
        };

        // Replay the calibration loop deterministically, in submission
        // order, on a fresh replica of the engine's model: the per-class
        // predicted/actual sums this produces are a pure function of the
        // admitted workload, independent of how scheduling interleaved the
        // live model's mid-flight estimates. Expired submissions never
        // executed, and failed ones charge no rounds and are not observed
        // by the live loop either — both are skipped on both sides of the
        // comparison.
        let replay = self.core.cost.fresh_replica();
        let mut errors: HashMap<String, (u64, u64)> = HashMap::new();
        for m in &meta {
            let completion = done
                .costs
                .get(&m.index)
                .expect("the drained scope completed every admitted submission");
            if completion.expired || !completion.ok {
                continue;
            }
            let predicted = replay.estimate(m.cost_kind, m.dims);
            let actual = completion.report.total_rounds;
            let entry = errors.entry(m.priority.label()).or_insert((0, 0));
            entry.0 += predicted;
            entry.1 += actual;
            replay.observe(m.cost_kind, m.dims, actual);
        }
        for class in &mut scheduler.classes {
            if let Some((predicted, actual)) = errors.get(&class.class) {
                class.predicted_rounds = *predicted;
                class.actual_rounds = *actual;
            }
        }
        // The replayed replica's final cells are the scope's calibration
        // state as a pure function of the admitted workload — the per-bucket
        // coefficients the report (and the CI estimation summary) exposes.
        let calibration = replay.calibration_cells();

        let mut interactive = 0u64;
        let mut bulk = 0u64;
        let records: Vec<RequestRecord> = meta
            .iter()
            .map(|m| {
                match m.priority {
                    Priority::Interactive => interactive += 1,
                    Priority::Bulk => bulk += 1,
                    Priority::Custom(_) => {}
                }
                let completion = done
                    .costs
                    .remove(&m.index)
                    .expect("the drained scope completed every admitted submission");
                // An expired submission never touched the cache: account it
                // like a fingerprint-less failure so no preprocessing is
                // demanded (or charged) on its behalf.
                let (fingerprint, pre_cached) = if completion.expired {
                    (None, false)
                } else {
                    (m.fingerprint, m.pre_cached)
                };
                RequestRecord {
                    index: m.index,
                    kind: m.kind,
                    fingerprint,
                    pre_cached,
                    ok: completion.ok,
                    error: completion.error,
                    report: completion.report,
                }
            })
            .collect();
        let accounting = self.core.account(records, |key| {
            prep.get(&key)
                .expect("every executed fingerprint recorded its preprocessing")
                .clone()
        });

        let mut uncollected: Vec<(u64, Result<Outcome<Response>, Error>)> =
            done.results.drain().collect();
        uncollected.sort_by_key(|(index, _)| *index);

        let report = StreamReport {
            schema: STREAM_REPORT_SCHEMA.to_string(),
            requests: meta.len() as u64,
            failures: accounting.failures,
            interactive,
            bulk,
            rejected: shared.rejected.load(Ordering::Relaxed),
            expired: scheduler.expired(),
            infeasible: scheduler.infeasible(),
            scheduler,
            cache_hits: accounting.cache_hits,
            cache_misses: accounting.cache_misses,
            cache: self.core.cache.stats(),
            total: accounting.total,
            preprocessing: accounting.preprocessing,
            per_request: accounting.per_request,
            calibration,
        };
        (uncollected, report, latency)
    }
}

/// Stream-specific payload of one queued [`WfqJob`]: the request, its
/// fingerprint (computed once at admission) and its admission timestamp.
struct JobPayload {
    request: Request,
    fp: Option<GraphFingerprint>,
    /// Clock reading at the submit call, the zero point of the job's
    /// queue-wait and end-to-end latency samples.
    admitted_at: Duration,
}

/// One admitted submission travelling from the client to a worker: the
/// generic WFQ job carrying the stream payload. The job's `cost` is its
/// estimated rounds, including a preprocessing rebuild when its fingerprint
/// was uncached at admission.
type Job = WfqJob<JobPayload>;

/// The engine's admission queue: the generic [`WfqQueue`] discipline of
/// [`crate::wfq`] plus the serve-scope lifecycle flags that guard it.
struct StreamQueue {
    q: WfqQueue<JobPayload>,
    closed: bool,
    /// Set when a worker panicked: blocked submitters must panic, not hang.
    poisoned: bool,
}

impl StreamQueue {
    fn new(classes: &[(Priority, ClassConfig)]) -> Self {
        StreamQueue {
            q: WfqQueue::new(classes),
            closed: false,
            poisoned: false,
        }
    }
}

/// Everything submitted about one request, recorded at admission time; the
/// deterministic half of the final [`RequestCost`].
struct SubmitMeta {
    index: u64,
    kind: &'static str,
    priority: Priority,
    fingerprint: Option<GraphFingerprint>,
    /// Whether the fingerprint was already cached when it was first
    /// submitted in this scope (the stream analogue of
    /// [`PreprocessingCost::cached`]).
    pre_cached: bool,
    /// The request's cost kind and instance dimensions — what the
    /// deterministic calibration replay prices it by at aggregation.
    cost_kind: CostKind,
    dims: CostDims,
}

/// What a worker records about one completed submission (the result payload
/// itself goes to the completion table for `poll`/`wait`).
struct Completion {
    ok: bool,
    error: Option<String>,
    report: RoundReport,
    /// Whether the submission expired in the queue instead of executing.
    expired: bool,
    /// Admission → dispatch on the engine's clock, nanoseconds (zero for
    /// expired submissions, which are excluded from the latency report).
    wait_ns: u64,
    /// Admission → completion on the engine's clock, nanoseconds.
    e2e_ns: u64,
}

#[derive(Default)]
struct DoneState {
    /// Results not yet collected by the client.
    results: HashMap<u64, Result<Outcome<Response>, Error>>,
    /// Cost records of every completion, consumed by aggregation.
    costs: HashMap<u64, Completion>,
    /// Indices whose results were already handed to the client (so a second
    /// `wait` on the same ticket can fail loudly instead of hanging).
    collected: HashSet<u64>,
    /// Set when a worker panicked: blocked waiters must panic, not hang.
    poisoned: bool,
}

/// The live sizing state of one serve scope's elastic worker pool. Every
/// spawned worker has an id in `0..max`; the ones with `id >= target` park
/// on the queue condvar instead of dispatching. All counters are
/// monotone/atomic — resizes race completions by design, which is why none
/// of this reaches the deterministic [`StreamReport`].
struct PoolState {
    min: usize,
    max: usize,
    /// Number of workers currently allowed to dispatch.
    target: AtomicUsize,
    grows: AtomicU64,
    shrinks: AtomicU64,
    peak: AtomicUsize,
}

impl PoolState {
    fn new(min: usize, max: usize) -> Self {
        PoolState {
            min,
            max,
            target: AtomicUsize::new(min),
            grows: AtomicU64::new(0),
            shrinks: AtomicU64::new(0),
            peak: AtomicUsize::new(min),
        }
    }

    fn target(&self) -> usize {
        self.target.load(Ordering::Relaxed)
    }

    /// Moves the target to `desired` (clamped to the bounds), counting the
    /// transition. Returns `true` when the pool grew — the caller must then
    /// wake parked workers.
    fn resize_to(&self, desired: usize) -> bool {
        let clamped = desired.clamp(self.min, self.max);
        let previous = self.target.swap(clamped, Ordering::Relaxed);
        if clamped > previous {
            self.grows.fetch_add(1, Ordering::Relaxed);
            self.peak.fetch_max(clamped, Ordering::Relaxed);
            true
        } else {
            if clamped < previous {
                self.shrinks.fetch_add(1, Ordering::Relaxed);
            }
            false
        }
    }

    fn stats(&self) -> PoolStats {
        PoolStats {
            min_workers: self.min,
            max_workers: self.max,
            grows: self.grows.load(Ordering::Relaxed),
            shrinks: self.shrinks.load(Ordering::Relaxed),
            peak_workers: self.peak.load(Ordering::Relaxed),
        }
    }
}

/// How long the elastic pool is willing to let the queued backlog take to
/// drain at the calibrated service rate before unparking more workers. One
/// scheduling-horizon's worth of work per worker keeps deadlines in the
/// tens-of-milliseconds range feasible without thrashing the pool on every
/// small burst.
const POOL_DRAIN_HORIZON: Duration = Duration::from_millis(10);

/// The worker count the backlog currently calls for: enough workers to
/// drain the queued rounds within [`POOL_DRAIN_HORIZON`] at the calibrated
/// service rate — computed *from the estimates*, which is the whole point
/// of calibrating them. While the service rate is uncalibrated (no
/// completion yet) the estimate-free fallback is one worker per queued job,
/// so a cold engine still fans out. The caller clamps to the pool bounds.
fn desired_workers(shared: &Shared<'_>, queue: &StreamQueue) -> usize {
    let queued = queue.q.queued();
    if queued == 0 {
        return shared.pool.min;
    }
    match shared.core.cost.expected_duration(queue.q.backlog_rounds()) {
        Some(drain) => {
            let horizon = POOL_DRAIN_HORIZON.as_nanos().max(1);
            usize::try_from(drain.as_nanos().div_ceil(horizon)).unwrap_or(usize::MAX)
        }
        None => queued,
    }
}

/// State shared between the serve scope's client and workers.
struct Shared<'e> {
    core: &'e EngineCore,
    /// Serial of the owning serve scope; tickets are branded with it.
    scope: u64,
    queue_capacity: usize,
    policy: BackpressurePolicy,
    /// Whether WFQ tags charge estimated cost or one unit.
    cost_aware_tags: bool,
    /// The elastic pool's live sizing state; its current target is also the
    /// worker count expected-wait estimates at admission divide by.
    pool: PoolState,
    /// The engine's time source (see [`crate::clock`]).
    clock: &'e dyn Clock,
    queue: Mutex<StreamQueue>,
    not_empty: Condvar,
    not_full: Condvar,
    done: Mutex<DoneState>,
    done_cv: Condvar,
    meta: Mutex<Vec<SubmitMeta>>,
    rejected: AtomicU64,
    prep: Mutex<HashMap<u128, RoundReport>>,
    /// Pre-registered engine counter/gauge/histogram handles — `Some` iff
    /// the engine's telemetry sink is enabled, so one `Option` check gates
    /// every instrumentation point.
    tcounters: Option<EngineCounters>,
}

impl Shared<'_> {
    /// Emits one trace event on the engine's clock axis. Reads the clock
    /// only when the sink is enabled, so a disabled sink costs exactly the
    /// `is_enabled` check.
    fn trace(&self, lane: usize, event: TraceEvent, request: u64, detail: u64) {
        if self.core.telemetry.is_enabled() {
            self.core
                .telemetry
                .trace(lane, self.clock.now(), event, request, detail);
        }
    }
}

/// Re-evaluates the pool target against the live backlog (see
/// [`desired_workers`]), emitting pool telemetry on a transition. Returns
/// `true` when the pool grew — the caller must then wake parked workers.
/// The before/after reads race concurrent resizes, which is fine: the
/// events are observability, the authoritative counters live in
/// [`PoolState`].
fn resize_pool(shared: &Shared<'_>, lane: usize, queue: &StreamQueue) -> bool {
    let before = shared.pool.target();
    let grew = shared.pool.resize_to(desired_workers(shared, queue));
    if let Some(tc) = &shared.tcounters {
        let after = shared.pool.target();
        if after > before {
            tc.pool_grows.incr();
            tc.pool_target.set(after as u64);
            tc.pool_peak.set_max(after as u64);
            shared.trace(lane, TraceEvent::PoolGrow, NO_REQUEST, after as u64);
        } else if after < before {
            tc.pool_shrinks.incr();
            tc.pool_target.set(after as u64);
            shared.trace(lane, TraceEvent::PoolShrink, NO_REQUEST, after as u64);
        }
    }
    grew
}

/// One scheduling decision: either a job to execute, a batch of jobs that
/// expired in the queue, or shutdown.
// A `Work` value lives once per dispatch, not in bulk: the size skew
// between a popped job and the other variants does not matter here.
#[allow(clippy::large_enum_variant)]
enum Work {
    Run(Job),
    Expired(Vec<(Job, Duration)>),
    Done,
}

fn worker_loop(shared: &Shared<'_>, id: usize) {
    // Trace lane convention: lane 0 is admission/collection (the client
    // side), lane `1 + id` is this worker.
    let lane = 1 + id;
    // One scratch arena per worker thread: solve state is reused across every
    // job this worker executes, so a warm worker solves without allocating.
    let mut arena = ScratchArena::new();
    loop {
        let work = {
            let mut queue = shared.queue.lock().expect("stream queue");
            loop {
                // Re-evaluate the pool target against the live backlog:
                // this is the shrink path (the queue drained under us) and
                // a second chance for growth missed between admissions.
                // Once the scope is draining the target is moot — every
                // thread helps finish the admitted work.
                if !queue.closed {
                    if resize_pool(shared, lane, &queue) {
                        shared.not_empty.notify_all();
                    }
                    if id >= shared.pool.target() {
                        // Parked: over the target, so this thread must not
                        // dispatch. A grow resize or the drain wakes it.
                        if let Some(tc) = &shared.tcounters {
                            tc.pool_parks.incr();
                            shared.trace(lane, TraceEvent::WorkerPark, NO_REQUEST, id as u64);
                        }
                        queue = shared.not_empty.wait(queue).expect("stream queue");
                        continue;
                    }
                }
                // Sweep deadline expirations before every scheduling
                // decision: a job still queued past its deadline is failed
                // here, never dispatched.
                let expired = queue.q.take_expired(shared.clock.now());
                if !expired.is_empty() {
                    shared.not_full.notify_all();
                    break Work::Expired(expired);
                }
                if let Some(job) = queue.q.pop() {
                    shared.not_full.notify_all();
                    break Work::Run(job);
                }
                if queue.closed {
                    break Work::Done;
                }
                queue = shared.not_empty.wait(queue).expect("stream queue");
            }
        };
        let job = match work {
            Work::Done => return,
            Work::Expired(expired) => {
                let mut done = shared.done.lock().expect("completion table");
                for (job, late_by) in expired {
                    if let Some(tc) = &shared.tcounters {
                        tc.expired.incr();
                        shared.trace(
                            lane,
                            TraceEvent::Expired,
                            job.index,
                            u64::try_from(late_by.as_nanos()).unwrap_or(u64::MAX),
                        );
                    }
                    let error = Error::DeadlineExceeded { late_by };
                    done.costs.insert(
                        job.index,
                        Completion {
                            ok: false,
                            error: Some(error.to_string()),
                            report: RoundReport::from_ledger(&RoundLedger::new()),
                            expired: true,
                            wait_ns: 0,
                            e2e_ns: 0,
                        },
                    );
                    done.results.insert(job.index, Err(error));
                }
                drop(done);
                shared.done_cv.notify_all();
                continue;
            }
            Work::Run(job) => job,
        };
        // Malformed input surfaces as a typed `Err` result; a panic here is
        // reachable only through a bug or a legacy panicking path below the
        // typed API. Poison the scope before re-panicking so a client
        // blocked in `wait`/`submit` fails loudly instead of hanging, then
        // let `thread::scope` propagate the panic out of `serve`.
        let started = shared.clock.now();
        if let Some(tc) = &shared.tcounters {
            let wait = started.saturating_sub(job.payload.admitted_at);
            tc.dispatched.incr();
            tc.queue_wait.record(wait);
            shared.trace(
                lane,
                TraceEvent::Dispatched,
                job.index,
                u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX),
            );
        }
        let (result, built_rounds) = match panic::catch_unwind(AssertUnwindSafe(|| {
            execute_job(shared, lane, &job, &mut arena)
        })) {
            Ok(result) => result,
            Err(payload) => {
                shared.queue.lock().expect("stream queue").poisoned = true;
                shared.not_full.notify_all();
                shared.done.lock().expect("completion table").poisoned = true;
                shared.done_cv.notify_all();
                panic::resume_unwind(payload);
            }
        };
        let finished = shared.clock.now();
        if let Some(tc) = &shared.tcounters {
            tc.completed.incr();
            tc.service.record(finished.saturating_sub(started));
        }
        // Feed the calibration loop: a successful completion's actual
        // rounds calibrate its kind's rate, and its wall-clock time
        // calibrates the service rate deadline admission converts rounds
        // with (counting any preprocessing this dispatch built — the build
        // shared the measured wall-clock). Failures are skipped — their
        // discarded partial work says nothing about the cost of work that
        // completes.
        if let Ok(outcome) = &result {
            let (kind, dims) = job.payload.request.cost_profile();
            let rounds = outcome.report.total_rounds;
            shared.core.cost.observe(kind, dims, rounds);
            shared
                .core
                .cost
                .observe_service(rounds + built_rounds, finished.saturating_sub(started));
        }
        // Latency samples on the engine's clock axis: admission → dispatch
        // and admission → completion, saturating because a virtual clock
        // may stand still between the readings.
        let wait_ns = u64::try_from(started.saturating_sub(job.payload.admitted_at).as_nanos())
            .unwrap_or(u64::MAX);
        let e2e_ns = u64::try_from(finished.saturating_sub(job.payload.admitted_at).as_nanos())
            .unwrap_or(u64::MAX);
        let completion = match &result {
            Ok(outcome) => Completion {
                ok: true,
                error: None,
                report: outcome.report.clone(),
                expired: false,
                wait_ns,
                e2e_ns,
            },
            Err(e) => Completion {
                ok: false,
                error: Some(e.to_string()),
                report: RoundReport::from_ledger(&RoundLedger::new()),
                expired: false,
                wait_ns,
                e2e_ns,
            },
        };
        let mut done = shared.done.lock().expect("completion table");
        done.costs.insert(job.index, completion);
        done.results.insert(job.index, result);
        drop(done);
        shared.done_cv.notify_all();
    }
}

/// Executes one job, returning its result plus the preprocessing rounds
/// this call *built* (zero on cache hits and for non-Laplacian jobs) — a
/// build shares the job's wall-clock, so the service-rate observation must
/// count its rounds alongside the solve's.
fn execute_job(
    shared: &Shared<'_>,
    lane: usize,
    job: &Job,
    arena: &mut ScratchArena,
) -> (Result<Outcome<Response>, Error>, u64) {
    match job.payload.fp {
        Some(fp) => {
            let graph = match &job.payload.request {
                Request::Laplacian { graph, .. } => graph,
                _ => unreachable!("only laplacian jobs carry a fingerprint"),
            };
            // The build closure runs exactly when this call is the one that
            // builds — which is exactly a cache miss, so the miss and the
            // build bracket are traced inside it. Waiting on (or finding)
            // another worker's build is the hit path.
            let (entry, built) =
                shared
                    .core
                    .cache
                    .get_or_build(fp, CostDims::of_graph(graph), || {
                        shared.trace(lane, TraceEvent::CacheMiss, job.index, 0);
                        shared.trace(lane, TraceEvent::BuildBegin, job.index, 0);
                        let entry = shared.core.build_entry(graph);
                        shared.trace(lane, TraceEvent::BuildEnd, job.index, entry.1.total_rounds);
                        entry
                    });
            if !built {
                shared.trace(lane, TraceEvent::CacheHit, job.index, 0);
            }
            // Record the preprocessing cost once per distinct fingerprint —
            // a pure function of (master seed, graph), so whichever worker
            // records it first records the same value.
            shared
                .prep
                .lock()
                .expect("preprocessing reports")
                .entry(fp.as_u128())
                .or_insert_with(|| entry.1.clone());
            let built_rounds = if built { entry.1.total_rounds } else { 0 };
            shared.trace(lane, TraceEvent::SolveBegin, job.index, 0);
            let result = shared.core.execute(
                job.index as usize,
                &job.payload.request,
                Some(&entry),
                arena,
            );
            let solved_rounds = result
                .as_ref()
                .map(|outcome| outcome.report.total_rounds)
                .unwrap_or(0);
            shared.trace(lane, TraceEvent::SolveEnd, job.index, solved_rounds);
            (result, built_rounds)
        }
        None => {
            shared.trace(lane, TraceEvent::SolveBegin, job.index, 0);
            let result = shared
                .core
                .execute(job.index as usize, &job.payload.request, None, arena);
            let solved_rounds = result
                .as_ref()
                .map(|outcome| outcome.report.total_rounds)
                .unwrap_or(0);
            shared.trace(lane, TraceEvent::SolveEnd, job.index, solved_rounds);
            (result, 0)
        }
    }
}

/// The submission/collection handle a serve scope's closure works with.
/// Submissions admit work into the bounded queue; collection takes completed
/// results out, in any order.
pub struct StreamClient<'s> {
    shared: &'s Shared<'s>,
}

impl StreamClient<'_> {
    /// Submits one request under a scheduling class, with no deadline.
    ///
    /// Admission is governed by the queue bound: with
    /// [`BackpressurePolicy::Block`] a full queue blocks until a worker
    /// frees a slot; with [`BackpressurePolicy::Reject`] it fails fast.
    /// Rejected submissions consume no submission index, so the admitted
    /// sequence stays dense and the determinism contract applies to exactly
    /// the requests that were admitted.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overloaded`] under the reject policy when the queue
    /// is at capacity.
    pub fn submit(&self, request: Request, priority: Priority) -> Result<Ticket, Error> {
        self.admit(request, priority, None)
    }

    /// Submits one request under a scheduling class with a queueing
    /// deadline, measured from now.
    ///
    /// Admission is deadline-aware: when the class's expected wait — its
    /// queued backlog cost over its WFQ weight share, converted to
    /// wall-clock through the cost model's calibrated service rate —
    /// already exceeds the deadline, the submission is rejected here with
    /// [`Error::DeadlineInfeasible`] instead of queueing work that is
    /// doomed to expire. Like [`Error::Overloaded`] rejections it then
    /// consumes no submission index. An engine whose service rate is not
    /// yet calibrated (no completion observed) admits everything; in
    /// particular an **idle** engine has no backlog and never rejects.
    ///
    /// If the admitted request is still queued when the deadline passes, it
    /// is never dispatched and completes with [`Error::DeadlineExceeded`];
    /// once dispatched it always runs to completion. A zero deadline on a
    /// busy engine therefore always expires — the scheduler checks
    /// deadlines before every dispatch.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overloaded`] under the reject policy when the queue
    /// is at capacity, [`Error::DeadlineInfeasible`] when the expected wait
    /// already exceeds the deadline. An admitted submission's deadline
    /// surfaces later, through [`StreamClient::poll`] /
    /// [`StreamClient::wait`].
    pub fn submit_with_deadline(
        &self,
        request: Request,
        priority: Priority,
        deadline: Duration,
    ) -> Result<Ticket, Error> {
        self.admit(request, priority, Some(deadline))
    }

    fn admit(
        &self,
        request: Request,
        priority: Priority,
        deadline: Option<Duration>,
    ) -> Result<Ticket, Error> {
        // The deadline (and the latency zero point) is measured from the
        // submit call, so anchor it before admission can block on
        // backpressure — time spent waiting for a queue slot counts against
        // both.
        let admitted_at = self.shared.clock.now();
        let deadline_at = deadline.and_then(|d| admitted_at.checked_add(d));
        // Fingerprint and cost estimation outside the queue lock — they are
        // the only non-trivial parts of admission.
        let fp = match &request {
            Request::Laplacian { graph, .. } => Some(fingerprint(graph)),
            _ => None,
        };
        let pre_cached = fp.is_some_and(|fp| self.shared.core.cache.contains(fp));
        let kind = request.kind();
        let (cost_kind, dims) = request.cost_profile();
        // The job's estimated cost: its execution, plus the preprocessing
        // rebuild it will trigger if its topology is not cached right now.
        let cost = if self.shared.cost_aware_tags {
            let model = &self.shared.core.cost;
            let mut cost = model.estimate(cost_kind, dims);
            if fp.is_some() && !pre_cached {
                cost = cost.saturating_add(model.estimate(CostKind::LaplacianPreprocess, dims));
            }
            cost
        } else {
            1
        };

        let mut queue = self.shared.queue.lock().expect("stream queue");
        while queue.q.queued() >= self.shared.queue_capacity {
            assert!(
                !queue.poisoned,
                "a stream worker panicked while this submission was blocked on backpressure"
            );
            match self.shared.policy {
                BackpressurePolicy::Reject => {
                    self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                    if let Some(tc) = &self.shared.tcounters {
                        tc.rejected.incr();
                        self.shared.trace(
                            0,
                            TraceEvent::Rejected,
                            NO_REQUEST,
                            self.shared.queue_capacity as u64,
                        );
                    }
                    return Err(Error::Overloaded {
                        capacity: self.shared.queue_capacity,
                    });
                }
                BackpressurePolicy::Block => {
                    queue = self.shared.not_full.wait(queue).expect("stream queue");
                }
            }
        }
        // Deadline-aware admission: refuse work whose deadline the queued
        // backlog already makes infeasible. Two calibration gates keep the
        // check honest: the service rate must have been observed (a fresh
        // engine admits everything), and the submission's own
        // `(kind, size-bucket)` cell must be calibrated — a cold bucket is
        // priced off a prior that can be wrong by orders of magnitude in
        // either direction, and a guess must never reject. The expected
        // wait divides by the pool's *current* target, so the verdict is
        // contemporaneous with the capacity that will serve the backlog.
        if let Some(deadline) = deadline {
            if self.shared.core.cost.is_calibrated(cost_kind, dims) {
                let wait_rounds = queue
                    .q
                    .expected_wait_rounds(priority, self.shared.pool.target());
                if let Some(expected_wait) = self.shared.core.cost.expected_duration(wait_rounds) {
                    if expected_wait > deadline {
                        queue.q.reject_infeasible(priority);
                        if let Some(tc) = &self.shared.tcounters {
                            tc.infeasible.incr();
                            self.shared.trace(
                                0,
                                TraceEvent::Infeasible,
                                NO_REQUEST,
                                u64::try_from(expected_wait.as_nanos()).unwrap_or(u64::MAX),
                            );
                        }
                        return Err(Error::DeadlineInfeasible {
                            deadline,
                            expected_wait,
                        });
                    }
                }
            }
        }
        let index = queue.q.push(
            priority,
            JobPayload {
                request,
                fp,
                admitted_at,
            },
            deadline_at,
            cost,
        );
        if let Some(tc) = &self.shared.tcounters {
            tc.submitted.incr();
            tc.queued.incr();
            tc.queue_depth.set(queue.q.queued() as u64);
            self.shared.trace(0, TraceEvent::Submitted, index, cost);
            self.shared
                .trace(0, TraceEvent::Queued, index, queue.q.queued() as u64);
        }
        // Grow the pool before the new job's wait begins, not after a
        // worker notices the backlog: admission is where queued deadlines
        // start ticking. (`not_empty` is notified below either way.)
        resize_pool(self.shared, 0, &queue);
        // Record the admission while still holding the queue lock, so the
        // meta log is in submission order by construction.
        self.shared
            .meta
            .lock()
            .expect("submission meta")
            .push(SubmitMeta {
                index,
                kind,
                priority,
                fingerprint: fp,
                pre_cached,
                cost_kind,
                dims,
            });
        drop(queue);
        self.shared.not_empty.notify_all();
        Ok(Ticket {
            index,
            priority,
            scope: self.shared.scope,
        })
    }

    /// Panics on a ticket issued by a different serve scope — its index
    /// would otherwise silently redeem this scope's unrelated result.
    fn check_scope(&self, ticket: Ticket) {
        assert!(
            ticket.scope == self.shared.scope,
            "stream ticket {} was issued by serve scope {}, not the current scope {}",
            ticket.index,
            ticket.scope,
            self.shared.scope
        );
    }

    /// Takes the result of a completed submission, or `None` if it is still
    /// queued or running (or was already collected).
    ///
    /// # Panics
    ///
    /// Panics on a ticket kept from an earlier serve scope.
    pub fn poll(&self, ticket: Ticket) -> Option<Result<Outcome<Response>, Error>> {
        self.check_scope(ticket);
        let mut done = self.shared.done.lock().expect("completion table");
        let result = done.results.remove(&ticket.index);
        if result.is_some() {
            done.collected.insert(ticket.index);
            self.mark_collected(ticket.index);
        }
        result
    }

    /// Blocks until the submission completes and takes its result.
    ///
    /// # Panics
    ///
    /// Panics if the ticket's result was already collected (waiting on it
    /// again would otherwise block forever), if the ticket was kept from an
    /// earlier serve scope, or if a worker thread panicked while the wait
    /// was blocked.
    pub fn wait(&self, ticket: Ticket) -> Result<Outcome<Response>, Error> {
        self.check_scope(ticket);
        let mut done = self.shared.done.lock().expect("completion table");
        loop {
            if let Some(result) = done.results.remove(&ticket.index) {
                done.collected.insert(ticket.index);
                self.mark_collected(ticket.index);
                return result;
            }
            assert!(
                !done.collected.contains(&ticket.index),
                "stream ticket {} was already collected",
                ticket.index
            );
            assert!(
                !done.poisoned,
                "a stream worker panicked while this wait was blocked"
            );
            done = self.shared.done_cv.wait(done).expect("completion table");
        }
    }

    /// Blocks until the submission completes and takes its result, or for
    /// at most `timeout` — returning the typed [`Error::WaitTimeout`]
    /// instead of blocking forever. A timed-out ticket stays redeemable:
    /// the submission keeps running and a later
    /// [`StreamClient::wait`] / [`StreamClient::poll`] /
    /// `wait_timeout` can still collect it (or it surfaces in
    /// [`StreamOutput::uncollected`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::WaitTimeout`] when the submission has not completed
    /// within `timeout`; the submission's own result (or typed error) once
    /// it has.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`StreamClient::wait`]: a
    /// ticket whose result was already collected, a ticket kept from an
    /// earlier serve scope, or a worker panic while the wait was blocked.
    pub fn wait_timeout(
        &self,
        ticket: Ticket,
        timeout: Duration,
    ) -> Result<Outcome<Response>, Error> {
        self.check_scope(ticket);
        let started = Instant::now();
        let mut done = self.shared.done.lock().expect("completion table");
        loop {
            if let Some(result) = done.results.remove(&ticket.index) {
                done.collected.insert(ticket.index);
                self.mark_collected(ticket.index);
                return result;
            }
            assert!(
                !done.collected.contains(&ticket.index),
                "stream ticket {} was already collected",
                ticket.index
            );
            assert!(
                !done.poisoned,
                "a stream worker panicked while this wait was blocked"
            );
            let Some(remaining) = timeout.checked_sub(started.elapsed()) else {
                return Err(Error::WaitTimeout { waited: timeout });
            };
            let (guard, _timed_out) = self
                .shared
                .done_cv
                .wait_timeout(done, remaining)
                .expect("completion table");
            done = guard;
        }
    }

    /// Emits the collection telemetry of one redeemed ticket.
    fn mark_collected(&self, index: u64) {
        if let Some(tc) = &self.shared.tcounters {
            tc.collected.incr();
            self.shared.trace(0, TraceEvent::Collected, index, 0);
        }
    }

    /// Snapshots the engine's live telemetry metrics, or `None` when no
    /// enabled [`TelemetrySink`] was attached
    /// ([`StreamEngineBuilder::telemetry`]).
    ///
    /// The lock-free engine counters and histograms are always current; on
    /// top of them this call *publishes* the point-in-time state of the
    /// subsystems that are not instrumented live — the WFQ per-class
    /// counters (`wfq.*`), the cache occupancy (`cache.entries` /
    /// `cache.capacity`), the cost model's calibration coverage (`cost.*`)
    /// and the pool's current target and peak (`pool.*` gauges) — then
    /// snapshots the whole registry. Snapshotting never blocks workers
    /// beyond the queue lock the publish step takes, and never perturbs
    /// scheduling or results.
    pub fn telemetry_snapshot(&self) -> Option<MetricsSnapshot> {
        let registry = self.shared.core.telemetry.registry()?;
        {
            let queue = self.shared.queue.lock().expect("stream queue");
            queue.q.publish_metrics(registry);
        }
        self.shared.core.publish_metrics(registry);
        if let Some(tc) = &self.shared.tcounters {
            let pool = self.shared.pool.stats();
            tc.pool_target.set(self.shared.pool.target() as u64);
            tc.pool_peak.set_max(pool.peak_workers as u64);
        }
        Some(registry.snapshot())
    }

    /// Number of submissions admitted so far in this scope.
    pub fn submitted(&self) -> u64 {
        self.shared
            .queue
            .lock()
            .expect("stream queue")
            .q
            .next_index()
    }

    /// Number of submissions completed so far in this scope (collected or
    /// not).
    pub fn completed(&self) -> u64 {
        let done = self.shared.done.lock().expect("completion table");
        done.costs.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tickets_expose_index_and_priority() {
        let ticket = Ticket {
            index: 7,
            priority: Priority::Bulk,
            scope: 1,
        };
        assert_eq!(ticket.index(), 7);
        assert_eq!(ticket.priority(), Priority::Bulk);
        assert_eq!(ticket.priority().label(), "bulk");
        assert_eq!(Priority::custom(9).label(), "custom-9");
    }
}
