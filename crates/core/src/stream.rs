//! Streaming service layer: incremental submission, priority scheduling and
//! bounded backpressure over the paper's four pipelines.
//!
//! Where [`crate::batch::BatchEngine`] serves one closed slice of requests
//! per call, a [`StreamEngine`] is a long-lived service: callers submit
//! [`Request`]s **one at a time** while earlier submissions are still in
//! flight, tag each with a [`Priority`] class, and collect results through
//! [`Ticket`] handles ([`StreamClient::poll`] / [`StreamClient::wait`]) as
//! they complete — possibly far out of submission order. Internally the
//! engine runs a pool of long-lived scoped worker threads fed by an
//! MPMC-style two-class queue (all [`Priority::Interactive`] work is
//! scheduled before any [`Priority::Bulk`] work), with a **bounded**
//! admission queue whose overflow behaviour is the configured
//! [`BackpressurePolicy`]: block the submitter until a slot frees, or reject
//! with the typed [`Error::Overloaded`].
//!
//! # Determinism contract
//!
//! Exactly as in [`crate::batch`]: scheduling never leaks into results. A
//! submission's seed is a pure function of the engine's master seed and its
//! **submission index** (the same splitmix64 derivation as
//! [`crate::batch::BatchEngine::request_seed`]), and every Laplacian solve
//! runs on a clone of a prepared solver built at the master seed alone, via
//! the shared bounded cache of [`crate::cache`]. Consequently a stream run
//! is bit-identical to the sequential [`crate::Session`] loop of the batch
//! contract for **any** worker count, priority mix, queue capacity and
//! submission/collection interleaving — and cache eviction only re-pays
//! preprocessing rounds, it never changes a result. `tests/stream.rs`
//! enforces all of this.
//!
//! # Shutdown and drain
//!
//! [`StreamEngine::serve`] scopes the worker pool around a closure. When the
//! closure returns, the engine **drains**: no new submissions are admitted,
//! every already-admitted request still executes, and results the closure
//! never collected come back in [`StreamOutput::uncollected`]. The
//! aggregated [`StreamReport`] always covers *every* admitted submission.
//!
//! # Example
//!
//! ```
//! use bcc_core::stream::{Priority, StreamEngine};
//! use bcc_core::batch::Request;
//! use bcc_core::graph::generators;
//!
//! let grid = generators::grid(4, 4);
//! let mut b = vec![0.0; grid.n()];
//! b[0] = 1.0;
//! b[15] = -1.0;
//!
//! let mut engine = StreamEngine::builder().seed(2022).workers(2).build();
//! let output = engine.serve(|client| {
//!     let fast = client
//!         .submit(Request::laplacian(grid.clone(), b.clone()), Priority::Interactive)
//!         .unwrap();
//!     let slow = client
//!         .submit(Request::sparsify(generators::complete(12), 0.5), Priority::Bulk)
//!         .unwrap();
//!     // Results are collected as they finish, in any order.
//!     let solve = client.wait(fast).unwrap();
//!     let sparsifier = client.wait(slow).unwrap();
//!     (solve, sparsifier)
//! });
//! assert_eq!(output.report.requests, 2);
//! assert_eq!(output.report.failures, 0);
//! assert!(output.uncollected.is_empty());
//! ```

use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread;

use bcc_graph::{fingerprint, GraphFingerprint};
use bcc_runtime::{ModelConfig, RoundLedger};
use serde::{Deserialize, Serialize};

use crate::batch::{PreprocessingCost, RequestCost};
use crate::cache::CacheStats;
use crate::error::Error;
use crate::report::RoundReport;
use crate::serve::{EngineCore, RequestRecord};
use crate::session::{Outcome, Session};

pub use crate::serve::{Request, Response};

/// Scheduling class of one submission. The scheduler always pops every
/// queued [`Priority::Interactive`] request before any [`Priority::Bulk`]
/// one; within a class, requests run in submission order. Priorities affect
/// *latency only* — results are bit-identical whichever class a request is
/// submitted under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive traffic, scheduled ahead of all bulk work.
    Interactive,
    /// Throughput traffic, scheduled when no interactive work is queued.
    Bulk,
}

/// What [`StreamClient::submit`] does when the bounded admission queue is
/// full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Block the submitting thread until a queue slot frees (the default —
    /// no submission is ever lost).
    Block,
    /// Fail fast with [`Error::Overloaded`], leaving the caller to retry or
    /// shed load.
    Reject,
}

/// Completion handle of one admitted submission, returned by
/// [`StreamClient::submit`]. Redeem it with [`StreamClient::poll`] or
/// [`StreamClient::wait`]; tickets never expire while the serve scope runs,
/// and unredeemed tickets surface in [`StreamOutput::uncollected`].
///
/// A ticket is bound to the serve scope that issued it: redeeming a ticket
/// kept from an earlier [`StreamEngine::serve`] call panics instead of
/// silently returning a later scope's result for the same index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    index: u64,
    priority: Priority,
    /// Serial number of the serve scope that issued this ticket.
    scope: u64,
}

impl Ticket {
    /// The submission index — the request's position in admission order,
    /// and the index its seed is derived from
    /// ([`StreamEngine::request_seed`]).
    pub fn index(&self) -> u64 {
        self.index
    }

    /// The priority class the request was submitted under.
    pub fn priority(&self) -> Priority {
        self.priority
    }
}

/// The version tag written into [`StreamReport::schema`].
pub const STREAM_REPORT_SCHEMA: &str = "bcc-stream-report/v1";

/// Aggregated, serializable accounting of one [`StreamEngine::serve`] scope
/// — the payload of the `BENCH_stream.json` trajectory. Mirrors
/// [`crate::batch::BatchReport`] (same [`RequestCost`] /
/// [`PreprocessingCost`] vocabulary, per-request costs in submission order)
/// plus streaming-specific counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamReport {
    /// Schema tag consumers can dispatch on (`"bcc-stream-report/v1"`).
    pub schema: String,
    /// Number of admitted submissions.
    pub requests: u64,
    /// Number of failed submissions.
    pub failures: u64,
    /// Submissions admitted under [`Priority::Interactive`].
    pub interactive: u64,
    /// Submissions admitted under [`Priority::Bulk`].
    pub bulk: u64,
    /// Submissions rejected with [`Error::Overloaded`] (never admitted; they
    /// consume no submission index and appear nowhere else in the report).
    pub rejected: u64,
    /// Laplacian submissions that reused a prepared solver (first submission
    /// of a fingerprint counts as the miss, exactly as in
    /// [`crate::batch::BatchReport::cache_hits`]).
    pub cache_hits: u64,
    /// Laplacian submissions that paid preprocessing.
    pub cache_misses: u64,
    /// Cache-level hit/miss/eviction counters over the engine's lifetime,
    /// as of the end of this serve scope. Under capacity pressure with
    /// concurrent workers these can depend on scheduling (rebuilds after
    /// eviction). With an **unbounded** cache (the default) everything else
    /// in this report is scheduling-independent too; under a capacity bound,
    /// an eviction racing the first submission of a previously cached
    /// fingerprint can additionally flip that fingerprint's `cached` / hit
    /// classification (and with it the charged preprocessing in
    /// [`StreamReport::total`]) — *results* stay bit-identical regardless.
    pub cache: CacheStats,
    /// Total accounted communication cost of the scope: every successful
    /// submission's report plus each distinct *new* fingerprint's
    /// preprocessing charged exactly once, folded in submission order (so
    /// the total is independent of completion order).
    pub total: RoundReport,
    /// Per-distinct-fingerprint preprocessing costs, in first-submission
    /// order.
    pub preprocessing: Vec<PreprocessingCost>,
    /// Per-submission costs, in submission order.
    pub per_request: Vec<RequestCost>,
}

/// Everything one [`StreamEngine::serve`] scope returns.
#[derive(Debug)]
pub struct StreamOutput<T> {
    /// The closure's return value.
    pub value: T,
    /// Results of admitted submissions the closure never polled or waited
    /// for, in submission order — the engine drains them before shutting
    /// down rather than dropping them.
    pub uncollected: Vec<(u64, Result<Outcome<Response>, Error>)>,
    /// Aggregated accounting of every admitted submission.
    pub report: StreamReport,
}

/// Builder of a [`StreamEngine`].
#[derive(Debug, Clone)]
pub struct StreamEngineBuilder {
    model: ModelConfig,
    seed: u64,
    epsilon: f64,
    workers: Option<usize>,
    shards: usize,
    queue_capacity: usize,
    backpressure: BackpressurePolicy,
    cache_capacity: Option<usize>,
}

impl Default for StreamEngineBuilder {
    fn default() -> Self {
        StreamEngineBuilder {
            model: ModelConfig::bcc(),
            seed: 2022,
            epsilon: 1e-6,
            workers: None,
            shards: 16,
            queue_capacity: 64,
            backpressure: BackpressurePolicy::Block,
            cache_capacity: None,
        }
    }
}

impl StreamEngineBuilder {
    /// Sets the clique model configuration of the worker sessions.
    pub fn model(mut self, model: ModelConfig) -> Self {
        self.model = model;
        self
    }

    /// Sets the master seed per-submission seeds are derived from.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the default solve accuracy of the worker sessions.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the worker-thread count (default: the machine's available
    /// parallelism, capped at 8). A count of 1 serves submissions strictly
    /// one at a time — useful to observe the determinism contract directly.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Sets the number of cache shards (default 16).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Bounds the admission queue to `capacity` waiting submissions
    /// (default 64, minimum 1). What happens beyond the bound is decided by
    /// [`StreamEngineBuilder::backpressure`].
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the overflow behaviour of the bounded admission queue (default
    /// [`BackpressurePolicy::Block`]).
    pub fn backpressure(mut self, policy: BackpressurePolicy) -> Self {
        self.backpressure = policy;
        self
    }

    /// Bounds the prepared-Laplacian cache to at most `capacity` entries
    /// with LRU eviction (default: unbounded). Eviction re-pays
    /// preprocessing on the next request for the evicted topology but never
    /// changes results.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = Some(capacity);
        self
    }

    /// Copies model, seed and epsilon from an existing [`Session`], so the
    /// engine serves exactly what that session would serve.
    pub fn from_session(self, session: &Session) -> Self {
        self.model(session.model())
            .seed(session.seed())
            .epsilon(session.epsilon())
    }

    /// Finishes the builder.
    pub fn build(self) -> StreamEngine {
        let workers = self.workers.unwrap_or_else(|| {
            thread::available_parallelism()
                .map(|p| p.get().min(8))
                .unwrap_or(4)
        });
        StreamEngine {
            core: EngineCore::new(
                self.model,
                self.seed,
                self.epsilon,
                self.shards,
                self.cache_capacity,
            ),
            workers,
            queue_capacity: self.queue_capacity,
            backpressure: self.backpressure,
            ledger: RoundLedger::new(),
            scopes: 0,
        }
    }
}

/// A long-lived streaming server for the paper's four pipelines: incremental
/// submission, two priority classes, bounded backpressure, graceful drain and
/// the shared bounded Laplacian cache. See the [module documentation](self)
/// for the determinism contract.
#[derive(Debug)]
pub struct StreamEngine {
    core: EngineCore,
    workers: usize,
    queue_capacity: usize,
    backpressure: BackpressurePolicy,
    ledger: RoundLedger,
    /// Serve scopes run so far; brands tickets so stale ones fail loudly.
    scopes: u64,
}

impl Default for StreamEngine {
    fn default() -> Self {
        StreamEngine::builder().build()
    }
}

impl StreamEngine {
    /// Starts a builder with laboratory defaults (BCC model, seed 2022,
    /// `ε = 1e-6`, 16 shards, queue capacity 64, blocking backpressure,
    /// unbounded cache).
    pub fn builder() -> StreamEngineBuilder {
        StreamEngineBuilder::default()
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.core.seed
    }

    /// The worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The admission-queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// The configured backpressure policy.
    pub fn backpressure(&self) -> BackpressurePolicy {
        self.backpressure
    }

    /// Number of prepared Laplacian solvers currently cached (including
    /// cached preprocessing failures). Never exceeds the configured
    /// [`StreamEngineBuilder::cache_capacity`].
    pub fn cached_graphs(&self) -> usize {
        self.core.cache.len()
    }

    /// Hit/miss/eviction counters of the prepared-Laplacian cache over this
    /// engine's lifetime.
    pub fn cache_stats(&self) -> CacheStats {
        self.core.cache.stats()
    }

    /// The configured cache capacity bound (`None` = unbounded).
    pub fn cache_capacity(&self) -> Option<usize> {
        self.core.cache.capacity()
    }

    /// Drops every cached prepared solver (counters are kept).
    pub fn clear_cache(&mut self) {
        self.core.cache.clear();
    }

    /// The deterministic seed of submission `index` — the same derivation as
    /// [`crate::batch::BatchEngine::request_seed`], so a sequential
    /// [`Session`] loop over the submissions reproduces every stream result
    /// bit for bit.
    pub fn request_seed(&self, index: usize) -> u64 {
        self.core.request_seed(index)
    }

    /// Cumulative communication cost of every serve scope this engine ran
    /// (per-submission costs plus each newly built preprocessing charged
    /// exactly once per scope).
    pub fn cumulative_report(&self) -> RoundReport {
        RoundReport::from_ledger(&self.ledger)
    }

    /// Runs a serve scope: spawns the worker pool, hands the closure a
    /// [`StreamClient`] for incremental submission and collection, and on
    /// closure return drains every admitted submission before aggregating.
    /// If the closure panics, the engine still shuts the workers down
    /// cleanly, then resumes the panic. If a *worker* panics (only reachable
    /// through a bug or a legacy panicking path below the typed API), the
    /// scope is poisoned: blocked `wait`/`submit` calls panic instead of
    /// hanging, and the panic propagates out of `serve`.
    pub fn serve<T>(&mut self, f: impl FnOnce(&StreamClient<'_>) -> T) -> StreamOutput<T> {
        self.scopes += 1;
        let shared = Shared {
            core: &self.core,
            scope: self.scopes,
            queue_capacity: self.queue_capacity,
            policy: self.backpressure,
            queue: Mutex::new(QueueState::default()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            done: Mutex::new(DoneState::default()),
            done_cv: Condvar::new(),
            meta: Mutex::new(Vec::new()),
            rejected: AtomicU64::new(0),
            prep: Mutex::new(HashMap::new()),
        };
        let value = thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(|| worker_loop(&shared));
            }
            let client = StreamClient { shared: &shared };
            let value = panic::catch_unwind(AssertUnwindSafe(|| f(&client)));
            // Close the queue: workers drain what was admitted, then exit;
            // the scope joins them before we aggregate.
            shared.queue.lock().expect("stream queue").closed = true;
            shared.not_empty.notify_all();
            shared.not_full.notify_all();
            match value {
                Ok(value) => value,
                Err(payload) => panic::resume_unwind(payload),
            }
        });
        let (uncollected, report) = self.aggregate(&shared);
        self.ledger
            .charge_phases(report.total.breakdown.iter().map(|(n, s)| (n.as_str(), *s)));
        StreamOutput {
            value,
            uncollected,
            report,
        }
    }

    /// Folds every admitted submission into the deterministic
    /// [`StreamReport`] through the shared accounting core: per-request
    /// costs in submission order, analytic hit/miss accounting (first
    /// submission of a fingerprint is the miss), preprocessing charged once
    /// per distinct new fingerprint — all independent of completion order.
    fn aggregate(
        &self,
        shared: &Shared<'_>,
    ) -> (Vec<(u64, Result<Outcome<Response>, Error>)>, StreamReport) {
        let mut meta = std::mem::take(&mut *shared.meta.lock().expect("submission meta"));
        meta.sort_by_key(|m| m.index);
        let mut done = shared.done.lock().expect("completion table");
        let prep = shared.prep.lock().expect("preprocessing reports");

        let mut interactive = 0u64;
        let mut bulk = 0u64;
        let records: Vec<RequestRecord> = meta
            .iter()
            .map(|m| {
                match m.priority {
                    Priority::Interactive => interactive += 1,
                    Priority::Bulk => bulk += 1,
                }
                let completion = done
                    .costs
                    .remove(&m.index)
                    .expect("the drained scope completed every admitted submission");
                RequestRecord {
                    index: m.index,
                    kind: m.kind,
                    fingerprint: m.fingerprint,
                    pre_cached: m.pre_cached,
                    ok: completion.ok,
                    error: completion.error,
                    report: completion.report,
                }
            })
            .collect();
        let accounting = self.core.account(records, |key| {
            prep.get(&key)
                .expect("every submitted fingerprint recorded its preprocessing")
                .clone()
        });

        let mut uncollected: Vec<(u64, Result<Outcome<Response>, Error>)> =
            done.results.drain().collect();
        uncollected.sort_by_key(|(index, _)| *index);

        let report = StreamReport {
            schema: STREAM_REPORT_SCHEMA.to_string(),
            requests: meta.len() as u64,
            failures: accounting.failures,
            interactive,
            bulk,
            rejected: shared.rejected.load(Ordering::Relaxed),
            cache_hits: accounting.cache_hits,
            cache_misses: accounting.cache_misses,
            cache: self.core.cache.stats(),
            total: accounting.total,
            preprocessing: accounting.preprocessing,
            per_request: accounting.per_request,
        };
        (uncollected, report)
    }
}

/// One admitted submission travelling from the client to a worker.
struct Job {
    index: u64,
    priority: Priority,
    request: Request,
    fp: Option<GraphFingerprint>,
}

/// The two-class bounded admission queue. Interactive jobs always pop before
/// bulk jobs; within a class, FIFO in submission order.
#[derive(Default)]
struct QueueState {
    interactive: VecDeque<Job>,
    bulk: VecDeque<Job>,
    queued: usize,
    closed: bool,
    /// Set when a worker panicked: blocked submitters must panic, not hang.
    poisoned: bool,
    next_index: u64,
}

impl QueueState {
    fn push(&mut self, job: Job) {
        match job.priority {
            Priority::Interactive => self.interactive.push_back(job),
            Priority::Bulk => self.bulk.push_back(job),
        }
        self.queued += 1;
    }

    fn pop(&mut self) -> Option<Job> {
        let job = self
            .interactive
            .pop_front()
            .or_else(|| self.bulk.pop_front())?;
        self.queued -= 1;
        Some(job)
    }
}

/// Everything submitted about one request, recorded at admission time; the
/// deterministic half of the final [`RequestCost`].
struct SubmitMeta {
    index: u64,
    kind: &'static str,
    priority: Priority,
    fingerprint: Option<GraphFingerprint>,
    /// Whether the fingerprint was already cached when it was first
    /// submitted in this scope (the stream analogue of
    /// [`PreprocessingCost::cached`]).
    pre_cached: bool,
}

/// What a worker records about one completed submission (the result payload
/// itself goes to the completion table for `poll`/`wait`).
struct Completion {
    ok: bool,
    error: Option<String>,
    report: RoundReport,
}

#[derive(Default)]
struct DoneState {
    /// Results not yet collected by the client.
    results: HashMap<u64, Result<Outcome<Response>, Error>>,
    /// Cost records of every completion, consumed by aggregation.
    costs: HashMap<u64, Completion>,
    /// Indices whose results were already handed to the client (so a second
    /// `wait` on the same ticket can fail loudly instead of hanging).
    collected: HashSet<u64>,
    /// Set when a worker panicked: blocked waiters must panic, not hang.
    poisoned: bool,
}

/// State shared between the serve scope's client and workers.
struct Shared<'e> {
    core: &'e EngineCore,
    /// Serial of the owning serve scope; tickets are branded with it.
    scope: u64,
    queue_capacity: usize,
    policy: BackpressurePolicy,
    queue: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    done: Mutex<DoneState>,
    done_cv: Condvar,
    meta: Mutex<Vec<SubmitMeta>>,
    rejected: AtomicU64,
    prep: Mutex<HashMap<u128, RoundReport>>,
}

fn worker_loop(shared: &Shared<'_>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("stream queue");
            loop {
                if let Some(job) = queue.pop() {
                    shared.not_full.notify_all();
                    break Some(job);
                }
                if queue.closed {
                    break None;
                }
                queue = shared.not_empty.wait(queue).expect("stream queue");
            }
        };
        let Some(job) = job else { return };
        // Malformed input surfaces as a typed `Err` result; a panic here is
        // reachable only through a bug or a legacy panicking path below the
        // typed API. Poison the scope before re-panicking so a client
        // blocked in `wait`/`submit` fails loudly instead of hanging, then
        // let `thread::scope` propagate the panic out of `serve`.
        let result = match panic::catch_unwind(AssertUnwindSafe(|| execute_job(shared, &job))) {
            Ok(result) => result,
            Err(payload) => {
                shared.queue.lock().expect("stream queue").poisoned = true;
                shared.not_full.notify_all();
                shared.done.lock().expect("completion table").poisoned = true;
                shared.done_cv.notify_all();
                panic::resume_unwind(payload);
            }
        };
        let completion = match &result {
            Ok(outcome) => Completion {
                ok: true,
                error: None,
                report: outcome.report.clone(),
            },
            Err(e) => Completion {
                ok: false,
                error: Some(e.to_string()),
                report: RoundReport::from_ledger(&RoundLedger::new()),
            },
        };
        let mut done = shared.done.lock().expect("completion table");
        done.costs.insert(job.index, completion);
        done.results.insert(job.index, result);
        drop(done);
        shared.done_cv.notify_all();
    }
}

fn execute_job(shared: &Shared<'_>, job: &Job) -> Result<Outcome<Response>, Error> {
    match job.fp {
        Some(fp) => {
            let graph = match &job.request {
                Request::Laplacian { graph, .. } => graph,
                _ => unreachable!("only laplacian jobs carry a fingerprint"),
            };
            let (entry, _built) = shared
                .core
                .cache
                .get_or_build(fp, || shared.core.build_entry(graph));
            // Record the preprocessing cost once per distinct fingerprint —
            // a pure function of (master seed, graph), so whichever worker
            // records it first records the same value.
            shared
                .prep
                .lock()
                .expect("preprocessing reports")
                .entry(fp.as_u128())
                .or_insert_with(|| entry.1.clone());
            shared
                .core
                .execute(job.index as usize, &job.request, Some(&entry))
        }
        None => shared.core.execute(job.index as usize, &job.request, None),
    }
}

/// The submission/collection handle a serve scope's closure works with.
/// Submissions admit work into the bounded queue; collection takes completed
/// results out, in any order.
pub struct StreamClient<'s> {
    shared: &'s Shared<'s>,
}

impl StreamClient<'_> {
    /// Submits one request under a priority class.
    ///
    /// Admission is governed by the queue bound: with
    /// [`BackpressurePolicy::Block`] a full queue blocks until a worker
    /// frees a slot; with [`BackpressurePolicy::Reject`] it fails fast.
    /// Rejected submissions consume no submission index, so the admitted
    /// sequence stays dense and the determinism contract applies to exactly
    /// the requests that were admitted.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overloaded`] under the reject policy when the queue
    /// is at capacity.
    pub fn submit(&self, request: Request, priority: Priority) -> Result<Ticket, Error> {
        // Fingerprint outside the queue lock — it is the only non-trivial
        // part of admission.
        let fp = match &request {
            Request::Laplacian { graph, .. } => Some(fingerprint(graph)),
            _ => None,
        };
        let pre_cached = fp.is_some_and(|fp| self.shared.core.cache.contains(fp));
        let kind = request.kind();

        let mut queue = self.shared.queue.lock().expect("stream queue");
        while queue.queued >= self.shared.queue_capacity {
            assert!(
                !queue.poisoned,
                "a stream worker panicked while this submission was blocked on backpressure"
            );
            match self.shared.policy {
                BackpressurePolicy::Reject => {
                    self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                    return Err(Error::Overloaded {
                        capacity: self.shared.queue_capacity,
                    });
                }
                BackpressurePolicy::Block => {
                    queue = self.shared.not_full.wait(queue).expect("stream queue");
                }
            }
        }
        let index = queue.next_index;
        queue.next_index += 1;
        queue.push(Job {
            index,
            priority,
            request,
            fp,
        });
        // Record the admission while still holding the queue lock, so the
        // meta log is in submission order by construction.
        self.shared
            .meta
            .lock()
            .expect("submission meta")
            .push(SubmitMeta {
                index,
                kind,
                priority,
                fingerprint: fp,
                pre_cached,
            });
        drop(queue);
        self.shared.not_empty.notify_all();
        Ok(Ticket {
            index,
            priority,
            scope: self.shared.scope,
        })
    }

    /// Panics on a ticket issued by a different serve scope — its index
    /// would otherwise silently redeem this scope's unrelated result.
    fn check_scope(&self, ticket: Ticket) {
        assert!(
            ticket.scope == self.shared.scope,
            "stream ticket {} was issued by serve scope {}, not the current scope {}",
            ticket.index,
            ticket.scope,
            self.shared.scope
        );
    }

    /// Takes the result of a completed submission, or `None` if it is still
    /// queued or running (or was already collected).
    ///
    /// # Panics
    ///
    /// Panics on a ticket kept from an earlier serve scope.
    pub fn poll(&self, ticket: Ticket) -> Option<Result<Outcome<Response>, Error>> {
        self.check_scope(ticket);
        let mut done = self.shared.done.lock().expect("completion table");
        let result = done.results.remove(&ticket.index);
        if result.is_some() {
            done.collected.insert(ticket.index);
        }
        result
    }

    /// Blocks until the submission completes and takes its result.
    ///
    /// # Panics
    ///
    /// Panics if the ticket's result was already collected (waiting on it
    /// again would otherwise block forever), if the ticket was kept from an
    /// earlier serve scope, or if a worker thread panicked while the wait
    /// was blocked.
    pub fn wait(&self, ticket: Ticket) -> Result<Outcome<Response>, Error> {
        self.check_scope(ticket);
        let mut done = self.shared.done.lock().expect("completion table");
        loop {
            if let Some(result) = done.results.remove(&ticket.index) {
                done.collected.insert(ticket.index);
                return result;
            }
            assert!(
                !done.collected.contains(&ticket.index),
                "stream ticket {} was already collected",
                ticket.index
            );
            assert!(
                !done.poisoned,
                "a stream worker panicked while this wait was blocked"
            );
            done = self.shared.done_cv.wait(done).expect("completion table");
        }
    }

    /// Number of submissions admitted so far in this scope.
    pub fn submitted(&self) -> u64 {
        self.shared.queue.lock().expect("stream queue").next_index
    }

    /// Number of submissions completed so far in this scope (collected or
    /// not).
    pub fn completed(&self) -> u64 {
        let done = self.shared.done.lock().expect("completion table");
        done.costs.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(index: u64, priority: Priority) -> Job {
        Job {
            index,
            priority,
            request: Request::sparsify(bcc_graph::generators::complete(4), 0.5),
            fp: None,
        }
    }

    #[test]
    fn queue_pops_interactive_before_bulk_fifo_within_class() {
        let mut queue = QueueState::default();
        queue.push(job(0, Priority::Bulk));
        queue.push(job(1, Priority::Interactive));
        queue.push(job(2, Priority::Bulk));
        queue.push(job(3, Priority::Interactive));
        assert_eq!(queue.queued, 4);
        let order: Vec<u64> = std::iter::from_fn(|| queue.pop())
            .map(|j| j.index)
            .collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
        assert_eq!(queue.queued, 0);
        assert!(queue.pop().is_none());
    }

    #[test]
    fn tickets_expose_index_and_priority() {
        let ticket = Ticket {
            index: 7,
            priority: Priority::Bulk,
            scope: 1,
        };
        assert_eq!(ticket.index(), 7);
        assert_eq!(ticket.priority(), Priority::Bulk);
    }
}
