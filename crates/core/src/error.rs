//! The unified error type of the facade.

use bcc_flow::FlowError;
use bcc_laplacian::LaplacianError;
use bcc_lp::LpError;
use bcc_runtime::RuntimeError;
use bcc_sparsifier::SparsifierError;

/// Unified error of every [`crate::Session`] entry point.
///
/// Each algorithm crate reports malformed input through its own typed error
/// (`RuntimeError`, `SparsifierError`, `LaplacianError`, `LpError`,
/// `FlowError`); this enum wraps them behind `From` impls so `?` composes
/// across the whole pipeline, plus facade-level validation variants.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The simulated network rejected the request (invalid topology,
    /// broadcast violation, round budget, ...).
    Runtime(RuntimeError),
    /// The sparsifier rejected the input graph.
    Sparsifier(SparsifierError),
    /// The Laplacian solver rejected the input (disconnected graph, wrong
    /// right-hand-side length, bad accuracy).
    Laplacian(LaplacianError),
    /// The LP solver rejected the instance or starting point.
    Lp(LpError),
    /// The min-cost max-flow pipeline rejected the instance.
    Flow(FlowError),
    /// A requested accuracy parameter is outside its valid range.
    InvalidEpsilon {
        /// The rejected value.
        epsilon: f64,
    },
    /// A streaming engine's bounded admission queue is full and its
    /// backpressure policy is
    /// [`crate::stream::BackpressurePolicy::Reject`] — the caller should
    /// retry later or shed load.
    Overloaded {
        /// The configured queue capacity that was reached.
        capacity: usize,
    },
    /// A submission made with [`crate::stream::StreamClient::submit_with_deadline`]
    /// was still queued when its deadline passed; it was never dispatched.
    /// Work that was already dispatched always runs to completion and never
    /// reports this error.
    DeadlineExceeded {
        /// How far past its deadline the request already was when the
        /// scheduler expired it.
        late_by: std::time::Duration,
    },
    /// A submission made with [`crate::stream::StreamClient::submit_with_deadline`]
    /// was rejected **at submit time**: the class's expected wait — queued
    /// backlog cost over its weight share, priced by the engine's
    /// calibrated [`crate::cost::CostModel`] — already exceeded the
    /// deadline, so admitting the work would only queue it to expire. The
    /// submission was never admitted and consumes no submission index. An
    /// idle engine (no backlog) or an uncalibrated one (no completion
    /// observed yet) never reports this error.
    DeadlineInfeasible {
        /// The deadline the submission asked for.
        deadline: std::time::Duration,
        /// The expected wait the admission check predicted.
        expected_wait: std::time::Duration,
    },
    /// A [`crate::stream::StreamClient::wait_timeout`] elapsed before the
    /// submission completed. The ticket stays redeemable — the submission
    /// keeps running, and its result can still be collected later.
    WaitTimeout {
        /// The timeout that elapsed.
        waited: std::time::Duration,
    },
    /// A tenant's request would push it past its cache quota — the bound on
    /// distinct prepared topologies one tenant may keep warm in the shared
    /// [`crate::cache`] (see [`crate::tenant::TenantAccounts`]). The request
    /// was never admitted; the tenant can retry on an already-charged
    /// topology or wait for its quota to be released.
    QuotaExceeded {
        /// The tenant whose quota the request would exceed.
        tenant: String,
        /// The tenant's configured quota (distinct prepared topologies).
        quota: u64,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Runtime(e) => write!(f, "runtime: {e}"),
            Error::Sparsifier(e) => write!(f, "sparsifier: {e}"),
            Error::Laplacian(e) => write!(f, "laplacian solver: {e}"),
            Error::Lp(e) => write!(f, "lp solver: {e}"),
            Error::Flow(e) => write!(f, "min-cost max-flow: {e}"),
            Error::InvalidEpsilon { epsilon } => {
                write!(f, "epsilon must be positive and finite, got {epsilon}")
            }
            Error::Overloaded { capacity } => {
                write!(
                    f,
                    "engine overloaded: admission queue at capacity {capacity}"
                )
            }
            Error::DeadlineExceeded { late_by } => {
                write!(
                    f,
                    "deadline exceeded: request was still queued {late_by:?} past its deadline"
                )
            }
            Error::DeadlineInfeasible {
                deadline,
                expected_wait,
            } => {
                write!(
                    f,
                    "deadline infeasible: expected wait {expected_wait:?} already exceeds the \
                     deadline {deadline:?}, rejected at admission"
                )
            }
            Error::WaitTimeout { waited } => {
                write!(
                    f,
                    "wait timed out after {waited:?}: the submission has not completed yet"
                )
            }
            Error::QuotaExceeded { tenant, quota } => {
                write!(
                    f,
                    "tenant `{tenant}` exceeded its cache quota of {quota} distinct prepared \
                     topologies; the request was not admitted"
                )
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Runtime(e) => Some(e),
            Error::Sparsifier(e) => Some(e),
            Error::Laplacian(e) => Some(e),
            Error::Lp(e) => Some(e),
            Error::Flow(e) => Some(e),
            Error::InvalidEpsilon { .. }
            | Error::Overloaded { .. }
            | Error::DeadlineExceeded { .. }
            | Error::DeadlineInfeasible { .. }
            | Error::WaitTimeout { .. }
            | Error::QuotaExceeded { .. } => None,
        }
    }
}

impl From<RuntimeError> for Error {
    fn from(e: RuntimeError) -> Self {
        Error::Runtime(e)
    }
}

impl From<SparsifierError> for Error {
    fn from(e: SparsifierError) -> Self {
        Error::Sparsifier(e)
    }
}

impl From<LaplacianError> for Error {
    fn from(e: LaplacianError) -> Self {
        Error::Laplacian(e)
    }
}

impl From<LpError> for Error {
    fn from(e: LpError) -> Self {
        Error::Lp(e)
    }
}

impl From<FlowError> for Error {
    fn from(e: FlowError) -> Self {
        Error::Flow(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn wrapping_preserves_the_source_chain() {
        let err: Error = LaplacianError::Disconnected.into();
        assert!(matches!(err, Error::Laplacian(_)));
        assert!(err.to_string().contains("connected"));
        assert!(err.source().is_some());

        let err: Error = RuntimeError::InvalidVertex { vertex: 9, n: 4 }.into();
        assert!(err.to_string().contains("runtime"));

        let err: Error = FlowError::Lp(LpError::NotInterior).into();
        assert!(err.to_string().contains("min-cost max-flow"));

        let err = Error::InvalidEpsilon { epsilon: -1.0 };
        assert!(err.to_string().contains("-1"));
        assert!(err.source().is_none());

        let err = Error::Overloaded { capacity: 8 };
        assert!(err.to_string().contains("overloaded"));
        assert!(err.to_string().contains('8'));
        assert!(err.source().is_none());

        let err = Error::DeadlineExceeded {
            late_by: std::time::Duration::from_millis(3),
        };
        assert!(err.to_string().contains("deadline exceeded"));
        assert!(err.to_string().contains("still queued"));
        assert!(err.source().is_none());

        let err = Error::DeadlineInfeasible {
            deadline: std::time::Duration::from_millis(5),
            expected_wait: std::time::Duration::from_millis(90),
        };
        assert!(err.to_string().contains("deadline infeasible"));
        assert!(err.to_string().contains("rejected at admission"));
        assert!(err.source().is_none());

        let err = Error::WaitTimeout {
            waited: std::time::Duration::from_millis(7),
        };
        assert!(err.to_string().contains("timed out"));
        assert!(err.source().is_none());

        let err = Error::QuotaExceeded {
            tenant: "acme".to_string(),
            quota: 4,
        };
        assert!(err.to_string().contains("acme"));
        assert!(err.to_string().contains("cache quota of 4"));
        assert!(err.source().is_none());
    }
}
