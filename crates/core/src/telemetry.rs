//! Live telemetry for the serving engines: a lock-free metrics registry, a
//! per-request lifecycle tracer, and exportable timelines.
//!
//! Every signal the engines emitted before this module existed was post-hoc:
//! [`crate::stream::StreamReport`] and the `BENCH_*.json` artifacts summarize
//! a run only after the serve scope closes. This module adds the *live* side
//! — counters you can read while workers are running, and a timeline you can
//! load into a trace viewer — without perturbing the deterministic report
//! path in any way.
//!
//! # Architecture
//!
//! * [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s and log-bucketed
//!   [`DurationHistogram`]s. Registration (by name, idempotent) takes a brief
//!   lock; the returned handles are plain atomics, so the *hot path* —
//!   incrementing a counter from a worker — is lock-free and wait-free.
//!   [`MetricsRegistry::snapshot`] reads every atomic at any time without
//!   stopping workers and returns a serializable [`MetricsSnapshot`].
//! * [`Tracer`] — bounded per-lane ring buffers of typed [`TraceRecord`]s
//!   (one lane per worker plus one for the admission/collection path). Each
//!   record carries a [`TraceEvent`] from the request lifecycle
//!   (submitted → admitted/rejected/infeasible → queued → dispatched →
//!   cache probe → solve → collected/expired, plus pool resize events) and a
//!   timestamp read from the engine's injectable [`crate::clock::Clock`] —
//!   under a [`crate::clock::VirtualClock`] the whole timeline is
//!   deterministic and byte-stable.
//! * [`TelemetrySink`] — the cheap, cloneable handle the engine builders
//!   accept ([`crate::stream::StreamEngineBuilder::telemetry`],
//!   [`crate::batch::BatchEngineBuilder::telemetry`]). A disabled sink is a
//!   `None`: every emission site checks one `Option` and does nothing else,
//!   so instrumentation is zero-cost when telemetry is off (the default).
//!
//! # Export formats
//!
//! * [`MetricsSnapshot`] serializes to JSON under the `bcc-metrics/v1`
//!   schema tag, with every metric list sorted by name for byte-stable
//!   output.
//! * [`chrome_trace_json`] renders trace records in the Chrome trace-event
//!   format (the JSON object form, `{"traceEvents": [...]}`): open
//!   `chrome://tracing` or <https://ui.perfetto.dev> and load the file.
//!   Timestamps are microseconds in `ts` with the exact nanosecond reading
//!   preserved in `args.ns`.
//!
//! # Determinism contract
//!
//! Telemetry is strictly write-only from the engine's point of view: no
//! scheduling, admission, caching or costing decision ever reads a metric or
//! a trace buffer. The full-report bit-identity guarantees of
//! [`crate::stream::StreamEngine`] therefore hold with tracing on or off —
//! the test suite asserts this.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//! use bcc_core::batch::Request;
//! use bcc_core::clock::VirtualClock;
//! use bcc_core::stream::{Priority, StreamEngine};
//! use bcc_core::telemetry::TelemetrySink;
//!
//! let sink = TelemetrySink::enabled();
//! let mut engine = StreamEngine::builder()
//!     .seed(7)
//!     .clock(Arc::new(VirtualClock::new()))
//!     .telemetry(sink.clone())
//!     .build();
//! engine.serve(|client| {
//!     let g = bcc_core::graph::generators::grid(3, 3);
//!     let t = client
//!         .submit(Request::sparsify(g, 0.5), Priority::Interactive)
//!         .unwrap();
//!     client.wait(t).unwrap();
//!     // Metrics are inspectable mid-flight, without stopping workers.
//!     let live = client.telemetry_snapshot().unwrap();
//!     assert!(live.counter("stream.submitted") >= 1);
//! });
//! // The caller kept a clone of the sink: exports outlive the scope.
//! let snapshot = sink.metrics_snapshot().unwrap();
//! assert_eq!(snapshot.counter("stream.dispatched"), 1);
//! let trace = sink.chrome_trace().unwrap();
//! assert!(trace.starts_with("{\"displayTimeUnit\""));
//! ```

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Schema tag written into every serialized [`MetricsSnapshot`].
pub const METRICS_SCHEMA: &str = "bcc-metrics/v1";

/// Number of histogram buckets: one for zero plus one per power of two of
/// the `u64` nanosecond range (`2^0` … `2^63`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Default number of trace lanes in an [`enabled`](TelemetrySink::enabled)
/// sink: lane 0 for the admission/collection path plus one lane per worker,
/// clamped into this range.
pub const DEFAULT_TRACE_LANES: usize = 64;

/// Default per-lane trace capacity of an
/// [`enabled`](TelemetrySink::enabled) sink, in records.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

// ---------------------------------------------------------------------------
// Metric primitives.
// ---------------------------------------------------------------------------

/// A monotone event counter. All operations are single atomic instructions.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value gauge. All operations are single atomic instructions.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrites the gauge with `value`.
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Raises the gauge to `value` if it is currently lower (a running
    /// maximum).
    pub fn set_max(&self, value: u64) {
        self.value.fetch_max(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed, log-bucketed duration histogram: bucket 0 counts exact zeros,
/// bucket `i ≥ 1` counts nanosecond values `v` with `2^(i-1) ≤ v < 2^i`
/// (so `u64::MAX` lands in bucket 64). Recording is a single atomic
/// increment — no locks, no allocation, no resizing.
#[derive(Debug)]
pub struct DurationHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for DurationHistogram {
    fn default() -> Self {
        DurationHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl DurationHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        DurationHistogram::default()
    }

    /// The bucket index a nanosecond value falls into: 0 for zero, else
    /// `⌊log₂ v⌋ + 1`.
    pub fn bucket_index(ns: u64) -> usize {
        if ns == 0 {
            0
        } else {
            64 - ns.leading_zeros() as usize
        }
    }

    /// The smallest nanosecond value of bucket `index` (0 for bucket 0,
    /// `2^(index-1)` otherwise).
    pub fn bucket_low_ns(index: usize) -> u64 {
        if index == 0 {
            0
        } else {
            1u64 << (index - 1)
        }
    }

    /// Records one nanosecond sample.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[Self::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturate rather than wrap: the sum is advisory, the buckets exact.
        let mut sum = self.sum_ns.load(Ordering::Relaxed);
        loop {
            let next = sum.saturating_add(ns);
            match self
                .sum_ns
                .compare_exchange_weak(sum, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => sum = actual,
            }
        }
    }

    /// Records one [`Duration`] sample (saturating at the `u64` nanosecond
    /// range).
    pub fn record(&self, d: Duration) {
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples in nanoseconds (saturating).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// The count in one bucket.
    pub fn bucket_count(&self, index: usize) -> u64 {
        self.buckets[index].load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Registry and snapshot.
// ---------------------------------------------------------------------------

/// A registry of named metrics. Registration is idempotent — asking for the
/// same name twice returns the same underlying metric — and takes a brief
/// lock; the returned [`Arc`] handles are then updated lock-free. Callers on
/// hot paths should register once and cache the handle.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<DurationHistogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter registered under `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::new());
                map.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// The gauge registered under `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        match map.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::new());
                map.insert(name.to_string(), Arc::clone(&g));
                g
            }
        }
    }

    /// The histogram registered under `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<DurationHistogram> {
        let mut map = self.histograms.lock().unwrap();
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(DurationHistogram::new());
                map.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// Reads every registered metric into a serializable snapshot, sorted
    /// by name. Workers keep running; the values are a consistent-enough
    /// point-in-time read (each atomic individually, not a global barrier).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(name, c)| CounterSnapshot {
                name: name.clone(),
                value: c.get(),
            })
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(name, g)| GaugeSnapshot {
                name: name.clone(),
                value: g.get(),
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(name, h)| {
                let buckets = (0..HISTOGRAM_BUCKETS)
                    .filter_map(|i| {
                        let count = h.bucket_count(i);
                        (count > 0).then(|| HistogramBucket {
                            low_ns: DurationHistogram::bucket_low_ns(i),
                            count,
                        })
                    })
                    .collect();
                HistogramSnapshot {
                    name: name.clone(),
                    count: h.count(),
                    sum_ns: h.sum_ns(),
                    buckets,
                }
            })
            .collect();
        MetricsSnapshot {
            schema: METRICS_SCHEMA.to_string(),
            counters,
            gauges,
            histograms,
        }
    }
}

/// The per-tenant serving counters a multi-tenant front-end (the
/// `bcc-served` daemon) registers for each tenant it authenticates, named
/// `tenant.<name>.submitted` / `tenant.<name>.completed` /
/// `tenant.<name>.quota_rejections` in the [`MetricsRegistry`] so they ride
/// along in every [`MetricsSnapshot`] export.
///
/// Registration is idempotent (the registry returns the same underlying
/// counters for repeated handshakes of one tenant), so every connection can
/// simply call [`TenantCounters::register`] and cache the handles for its
/// lifetime — the lock is paid once per connection, never per request.
#[derive(Debug, Clone)]
pub struct TenantCounters {
    /// Requests admitted into the engine on this tenant's behalf.
    pub submitted: Arc<Counter>,
    /// Results delivered back to this tenant (successful or failed).
    pub completed: Arc<Counter>,
    /// Submissions refused up front because the tenant's cache quota was
    /// exhausted.
    pub quota_rejections: Arc<Counter>,
}

impl TenantCounters {
    /// Resolves (creating on first use) the three counters of `tenant` in
    /// `registry`.
    pub fn register(registry: &MetricsRegistry, tenant: &str) -> Self {
        TenantCounters {
            submitted: registry.counter(&format!("tenant.{tenant}.submitted")),
            completed: registry.counter(&format!("tenant.{tenant}.completed")),
            quota_rejections: registry.counter(&format!("tenant.{tenant}.quota_rejections")),
        }
    }
}

/// One counter in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// One gauge in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Gauge value at snapshot time.
    pub value: u64,
}

/// One non-empty histogram bucket in a [`HistogramSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Smallest nanosecond value of the bucket (inclusive); the bucket ends
    /// just below twice this value (bucket 0 holds exact zeros).
    pub low_ns: u64,
    /// Number of samples in the bucket.
    pub count: u64,
}

/// One histogram in a [`MetricsSnapshot`]: total count, saturating sum and
/// the non-empty log buckets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples in nanoseconds (saturating).
    pub sum_ns: u64,
    /// The non-empty buckets in ascending `low_ns` order.
    pub buckets: Vec<HistogramBucket>,
}

/// A point-in-time, serializable read of a [`MetricsRegistry`] (schema
/// [`METRICS_SCHEMA`]). Metric lists are sorted by name, so serializing a
/// snapshot of a deterministic run is byte-stable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Schema tag, [`METRICS_SCHEMA`].
    pub schema: String,
    /// All registered counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All registered gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All registered histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The value of a counter by name (0 if absent — a never-incremented
    /// counter and an unregistered one are indistinguishable by design).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
            .unwrap_or(0)
    }

    /// The value of a gauge by name (0 if absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|g| g.name == name)
            .map(|g| g.value)
            .unwrap_or(0)
    }

    /// The histogram registered under `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

// ---------------------------------------------------------------------------
// Lifecycle tracing.
// ---------------------------------------------------------------------------

/// A typed request-lifecycle event. The request path is
/// `Submitted → {Queued | Rejected | Infeasible} → Dispatched →
/// {CacheHit | CacheMiss → BuildBegin → BuildEnd} → SolveBegin → SolveEnd →
/// Collected`, with `Expired` replacing dispatch for jobs whose deadline
/// passes in the queue; pool events interleave on worker lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceEvent {
    /// A submission entered admission control.
    Submitted,
    /// Admission rejected the submission (queue full, `Reject` policy).
    Rejected,
    /// Admission rejected the submission as deadline-infeasible.
    Infeasible,
    /// The submission was accepted into the scheduler queue.
    Queued,
    /// A worker popped the job from the queue.
    Dispatched,
    /// The job's Laplacian cache probe hit (includes waiting on another
    /// worker's in-flight build of the same entry).
    CacheHit,
    /// The job's Laplacian cache probe missed; a build follows.
    CacheMiss,
    /// Preprocessing (cache entry build) started.
    BuildBegin,
    /// Preprocessing (cache entry build) finished.
    BuildEnd,
    /// Request execution started on a worker.
    SolveBegin,
    /// Request execution finished on a worker.
    SolveEnd,
    /// The caller collected the result (`poll`/`wait`).
    Collected,
    /// The job's deadline passed while it was still queued.
    Expired,
    /// The elastic pool raised its worker target (detail = new target).
    PoolGrow,
    /// The elastic pool lowered its worker target (detail = new target).
    PoolShrink,
    /// A worker parked because its id is outside the pool target.
    WorkerPark,
}

impl TraceEvent {
    /// The stable label used in exported timelines.
    pub fn label(self) -> &'static str {
        match self {
            TraceEvent::Submitted => "submitted",
            TraceEvent::Rejected => "rejected",
            TraceEvent::Infeasible => "infeasible",
            TraceEvent::Queued => "queued",
            TraceEvent::Dispatched => "dispatched",
            TraceEvent::CacheHit => "cache-hit",
            TraceEvent::CacheMiss => "cache-miss",
            TraceEvent::BuildBegin => "build-begin",
            TraceEvent::BuildEnd => "build-end",
            TraceEvent::SolveBegin => "solve-begin",
            TraceEvent::SolveEnd => "solve-end",
            TraceEvent::Collected => "collected",
            TraceEvent::Expired => "expired",
            TraceEvent::PoolGrow => "pool-grow",
            TraceEvent::PoolShrink => "pool-shrink",
            TraceEvent::WorkerPark => "worker-park",
        }
    }
}

/// Sentinel request id for records that concern no particular request
/// (pool events).
pub const NO_REQUEST: u64 = u64::MAX;

/// One trace record: what happened, to which request, on which lane, when
/// (nanoseconds since the engine clock's epoch), plus one event-specific
/// detail value (queue index, pool target, rounds — see [`TraceEvent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Clock reading in nanoseconds since the engine clock's epoch.
    pub at_ns: u64,
    /// Lane the record was written to (0 = admission/collection path,
    /// `1 + worker id` for worker lanes).
    pub lane: u32,
    /// Submission index the event concerns, or [`NO_REQUEST`].
    pub request: u64,
    /// The lifecycle event.
    pub event: TraceEvent,
    /// Event-specific detail value.
    pub detail: u64,
}

/// Bounded per-lane ring buffers of [`TraceRecord`]s. Each lane has a single
/// writer (its worker), so the per-lane mutex is effectively uncontended;
/// when a lane is full, further records on it are counted as dropped rather
/// than overwriting history, so span counts in an un-dropped trace reconcile
/// exactly with the scheduler's counters.
#[derive(Debug)]
pub struct Tracer {
    lanes: Vec<Mutex<Vec<TraceRecord>>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl Tracer {
    /// A tracer with `lanes` ring buffers of `capacity` records each (both
    /// floored at 1).
    pub fn new(lanes: usize, capacity: usize) -> Self {
        let lanes = lanes.max(1);
        Tracer {
            lanes: (0..lanes).map(|_| Mutex::new(Vec::new())).collect(),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Appends a record to `lane` (clamped to the last lane), dropping it
    /// if the lane is full.
    pub fn record(&self, lane: usize, record: TraceRecord) {
        let lane = lane.min(self.lanes.len() - 1);
        let mut buf = self.lanes[lane].lock().unwrap();
        if buf.len() < self.capacity {
            buf.push(record);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of records dropped because their lane was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// All records, merged across lanes and sorted by `(at_ns, lane,
    /// intra-lane order)` — a deterministic total order whenever the
    /// underlying clock readings are deterministic.
    pub fn records(&self) -> Vec<TraceRecord> {
        let mut all: Vec<(u64, u32, usize, TraceRecord)> = Vec::new();
        for (lane_idx, lane) in self.lanes.iter().enumerate() {
            let buf = lane.lock().unwrap();
            for (pos, rec) in buf.iter().enumerate() {
                all.push((rec.at_ns, lane_idx as u32, pos, *rec));
            }
        }
        all.sort_by_key(|&(at, lane, pos, _)| (at, lane, pos));
        all.into_iter().map(|(_, _, _, rec)| rec).collect()
    }
}

// ---------------------------------------------------------------------------
// The sink handle.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct TelemetryCore {
    registry: MetricsRegistry,
    tracer: Tracer,
}

/// The handle the engine builders accept: either disabled (the default — a
/// single `Option` check per emission site, no allocation, no atomics) or a
/// shared registry-plus-tracer. Cloning is cheap; every clone observes the
/// same metrics and traces, so callers keep a clone to export after the
/// serve scope ends.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySink {
    inner: Option<Arc<TelemetryCore>>,
}

impl TelemetrySink {
    /// The default disabled sink: every emission is a no-op.
    pub fn disabled() -> Self {
        TelemetrySink { inner: None }
    }

    /// An enabled sink with default tracer geometry
    /// ([`DEFAULT_TRACE_LANES`] × [`DEFAULT_TRACE_CAPACITY`]).
    pub fn enabled() -> Self {
        TelemetrySink::with_capacity(DEFAULT_TRACE_LANES, DEFAULT_TRACE_CAPACITY)
    }

    /// An enabled sink with `lanes` trace ring buffers of `capacity`
    /// records each.
    pub fn with_capacity(lanes: usize, capacity: usize) -> Self {
        TelemetrySink {
            inner: Some(Arc::new(TelemetryCore {
                registry: MetricsRegistry::new(),
                tracer: Tracer::new(lanes, capacity),
            })),
        }
    }

    /// Whether the sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The metrics registry, when enabled.
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.inner.as_deref().map(|core| &core.registry)
    }

    /// Records a lifecycle event (no-op when disabled). `at` is a reading
    /// of the engine's clock; `lane` 0 is the admission/collection path and
    /// `1 + worker id` a worker lane.
    pub fn trace(&self, lane: usize, at: Duration, event: TraceEvent, request: u64, detail: u64) {
        if let Some(core) = self.inner.as_deref() {
            core.tracer.record(
                lane,
                TraceRecord {
                    at_ns: u64::try_from(at.as_nanos()).unwrap_or(u64::MAX),
                    lane: lane.min(core.tracer.lanes() - 1) as u32,
                    request,
                    event,
                    detail,
                },
            );
        }
    }

    /// All trace records so far in deterministic order (empty when
    /// disabled). See [`Tracer::records`].
    pub fn trace_records(&self) -> Vec<TraceRecord> {
        self.inner
            .as_deref()
            .map(|core| core.tracer.records())
            .unwrap_or_default()
    }

    /// Number of trace records dropped because a lane was full (0 when
    /// disabled).
    pub fn dropped_events(&self) -> u64 {
        self.inner
            .as_deref()
            .map(|core| core.tracer.dropped())
            .unwrap_or(0)
    }

    /// A point-in-time metrics snapshot, when enabled.
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.registry().map(MetricsRegistry::snapshot)
    }

    /// The recorded timeline in Chrome trace-event JSON, when enabled.
    pub fn chrome_trace(&self) -> Option<String> {
        self.inner
            .as_deref()
            .map(|core| chrome_trace_json(&[("engine".to_string(), core.tracer.records())]))
    }
}

// ---------------------------------------------------------------------------
// Pre-registered engine metric handles.
// ---------------------------------------------------------------------------

/// The standard stream-engine metrics, registered once at engine build so
/// the per-event hot path touches only cached atomic handles. Counter names
/// are `stream.*` and `pool.*`; the histograms record queue wait and worker
/// service time.
#[derive(Debug)]
pub struct EngineCounters {
    /// `stream.submitted`: submissions that entered admission control.
    pub submitted: Arc<Counter>,
    /// `stream.rejected`: submissions bounced by backpressure.
    pub rejected: Arc<Counter>,
    /// `stream.infeasible`: submissions bounced by deadline admission.
    pub infeasible: Arc<Counter>,
    /// `stream.queued`: submissions accepted into the scheduler queue.
    pub queued: Arc<Counter>,
    /// `stream.dispatched`: jobs popped by workers.
    pub dispatched: Arc<Counter>,
    /// `stream.completed`: jobs that finished executing.
    pub completed: Arc<Counter>,
    /// `stream.expired`: jobs whose deadline passed in the queue.
    pub expired: Arc<Counter>,
    /// `stream.collected`: results handed back through `poll`/`wait`.
    pub collected: Arc<Counter>,
    /// `pool.grows`: elastic pool target raises.
    pub pool_grows: Arc<Counter>,
    /// `pool.shrinks`: elastic pool target cuts.
    pub pool_shrinks: Arc<Counter>,
    /// `pool.parks`: workers parked outside the pool target.
    pub pool_parks: Arc<Counter>,
    /// `pool.target`: the current elastic pool worker target.
    pub pool_target: Arc<Gauge>,
    /// `pool.peak`: the highest pool target seen.
    pub pool_peak: Arc<Gauge>,
    /// `stream.queue_depth`: jobs in the scheduler queue right now.
    pub queue_depth: Arc<Gauge>,
    /// `stream.queue_wait_ns`: admission → dispatch, per dispatched job.
    pub queue_wait: Arc<DurationHistogram>,
    /// `stream.service_ns`: dispatch → completion, per executed job.
    pub service: Arc<DurationHistogram>,
}

impl EngineCounters {
    /// Registers (or re-attaches to) the standard engine metrics.
    pub fn register(registry: &MetricsRegistry) -> Self {
        EngineCounters {
            submitted: registry.counter("stream.submitted"),
            rejected: registry.counter("stream.rejected"),
            infeasible: registry.counter("stream.infeasible"),
            queued: registry.counter("stream.queued"),
            dispatched: registry.counter("stream.dispatched"),
            completed: registry.counter("stream.completed"),
            expired: registry.counter("stream.expired"),
            collected: registry.counter("stream.collected"),
            pool_grows: registry.counter("pool.grows"),
            pool_shrinks: registry.counter("pool.shrinks"),
            pool_parks: registry.counter("pool.parks"),
            pool_target: registry.gauge("pool.target"),
            pool_peak: registry.gauge("pool.peak"),
            queue_depth: registry.gauge("stream.queue_depth"),
            queue_wait: registry.histogram("stream.queue_wait_ns"),
            service: registry.histogram("stream.service_ns"),
        }
    }
}

// ---------------------------------------------------------------------------
// Chrome trace-event export.
// ---------------------------------------------------------------------------

fn escape_json(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders trace records as a Chrome trace-event-format JSON document (the
/// object form). Each `(name, records)` group becomes one process (`pid` =
/// group index + 1, named via a `process_name` metadata event); lanes map
/// to threads (`tid`). Every record is an instant event whose `ts` is the
/// timestamp in whole microseconds, with the exact nanosecond reading, the
/// request id and the detail value under `args`. The output is a pure
/// function of the records, so deterministic traces export byte-identically.
pub fn chrome_trace_json(groups: &[(String, Vec<TraceRecord>)]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for (idx, (name, records)) in groups.iter().enumerate() {
        let pid = idx + 1;
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\""
        ));
        escape_json(&mut out, name);
        out.push_str("\"}}");
        for r in records {
            let _ = write!(
                out,
                ",{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{},\"tid\":{},\
                 \"ts\":{},\"args\":{{\"ns\":{},\"request\":{},\"detail\":{}}}}}",
                r.event.label(),
                pid,
                r.lane,
                r.at_ns / 1_000,
                r.at_ns,
                r.request,
                r.detail
            );
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_are_shared_by_name() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("x");
        let b = registry.counter("x");
        a.add(2);
        b.incr();
        assert_eq!(registry.counter("x").get(), 3);
        let g = registry.gauge("y");
        g.set(7);
        g.set_max(5);
        assert_eq!(registry.gauge("y").get(), 7);
        g.set_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn tenant_counters_register_under_prefixed_names_idempotently() {
        let registry = MetricsRegistry::new();
        let first = TenantCounters::register(&registry, "acme");
        first.submitted.incr();
        first.submitted.incr();
        first.completed.incr();
        first.quota_rejections.incr();
        // A second handshake of the same tenant resolves the same counters.
        let second = TenantCounters::register(&registry, "acme");
        second.submitted.incr();
        assert_eq!(registry.counter("tenant.acme.submitted").get(), 3);
        assert_eq!(registry.counter("tenant.acme.completed").get(), 1);
        assert_eq!(registry.counter("tenant.acme.quota_rejections").get(), 1);
        // Distinct tenants get distinct counters.
        let other = TenantCounters::register(&registry, "umbrella");
        other.submitted.incr();
        assert_eq!(registry.counter("tenant.umbrella.submitted").get(), 1);
        assert_eq!(registry.counter("tenant.acme.submitted").get(), 3);
        // The prefixed names ride along in the snapshot export.
        let snapshot = registry.snapshot();
        let names: Vec<&str> = snapshot.counters.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"tenant.acme.submitted"), "{names:?}");
        assert!(names.contains(&"tenant.acme.quota_rejections"), "{names:?}");
        assert!(names.contains(&"tenant.umbrella.submitted"), "{names:?}");
    }

    #[test]
    fn histogram_bucket_boundaries_cover_the_full_u64_range() {
        // Satellite: 0, 1 and u64::MAX-adjacent durations land in the
        // documented buckets.
        assert_eq!(DurationHistogram::bucket_index(0), 0);
        assert_eq!(DurationHistogram::bucket_index(1), 1);
        assert_eq!(DurationHistogram::bucket_index(2), 2);
        assert_eq!(DurationHistogram::bucket_index(3), 2);
        assert_eq!(DurationHistogram::bucket_index(4), 3);
        assert_eq!(DurationHistogram::bucket_index((1 << 63) - 1), 63);
        assert_eq!(DurationHistogram::bucket_index(1 << 63), 64);
        assert_eq!(DurationHistogram::bucket_index(u64::MAX - 1), 64);
        assert_eq!(DurationHistogram::bucket_index(u64::MAX), 64);
        assert_eq!(DurationHistogram::bucket_low_ns(0), 0);
        assert_eq!(DurationHistogram::bucket_low_ns(1), 1);
        assert_eq!(DurationHistogram::bucket_low_ns(64), 1 << 63);

        let h = DurationHistogram::new();
        h.record_ns(0);
        h.record_ns(1);
        h.record_ns(u64::MAX);
        h.record_ns(u64::MAX);
        assert_eq!(h.count(), 4);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(64), 2);
        // The sum saturates instead of wrapping.
        assert_eq!(h.sum_ns(), u64::MAX);
    }

    #[test]
    fn snapshot_is_sorted_and_lookup_works() {
        let registry = MetricsRegistry::new();
        registry.counter("b").add(2);
        registry.counter("a").add(1);
        registry.gauge("g").set(5);
        registry.histogram("h").record(Duration::from_nanos(3));
        let snap = registry.snapshot();
        assert_eq!(snap.schema, METRICS_SCHEMA);
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(snap.counter("b"), 2);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauge("g"), 5);
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum_ns, 3);
        assert_eq!(
            h.buckets,
            vec![HistogramBucket {
                low_ns: 2,
                count: 1
            }]
        );
        // The snapshot round-trips through JSON.
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn tracer_bounds_lanes_and_counts_drops() {
        let tracer = Tracer::new(2, 2);
        let rec = |at_ns, lane| TraceRecord {
            at_ns,
            lane,
            request: 1,
            event: TraceEvent::Queued,
            detail: 0,
        };
        tracer.record(0, rec(5, 0));
        tracer.record(1, rec(3, 1));
        tracer.record(9, rec(4, 1)); // lane clamped to 1
        tracer.record(1, rec(6, 1)); // lane 1 full: dropped
        assert_eq!(tracer.dropped(), 1);
        let records = tracer.records();
        let times: Vec<u64> = records.iter().map(|r| r.at_ns).collect();
        assert_eq!(times, [3, 4, 5]);
    }

    #[test]
    fn disabled_sink_is_a_no_op() {
        let sink = TelemetrySink::disabled();
        assert!(!sink.is_enabled());
        sink.trace(0, Duration::from_nanos(1), TraceEvent::Queued, 0, 0);
        assert!(sink.trace_records().is_empty());
        assert!(sink.metrics_snapshot().is_none());
        assert!(sink.chrome_trace().is_none());
        assert_eq!(sink.dropped_events(), 0);
    }

    #[test]
    fn clones_of_an_enabled_sink_share_state() {
        let sink = TelemetrySink::enabled();
        let clone = sink.clone();
        clone.registry().unwrap().counter("n").add(4);
        sink.trace(1, Duration::from_nanos(2), TraceEvent::Dispatched, 7, 0);
        assert_eq!(sink.metrics_snapshot().unwrap().counter("n"), 4);
        let records = clone.trace_records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].event, TraceEvent::Dispatched);
        assert_eq!(records[0].request, 7);
    }

    #[test]
    fn chrome_trace_export_is_valid_and_deterministic() {
        let records = vec![
            TraceRecord {
                at_ns: 1_500,
                lane: 0,
                request: 0,
                event: TraceEvent::Submitted,
                detail: 0,
            },
            TraceRecord {
                at_ns: 2_500,
                lane: 1,
                request: 0,
                event: TraceEvent::Dispatched,
                detail: 3,
            },
        ];
        let json = chrome_trace_json(&[("run \"a\"".to_string(), records.clone())]);
        // Structurally sound: one document, one metadata event plus one
        // instant event per record, balanced braces.
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 2);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        let again = chrome_trace_json(&[("run \"a\"".to_string(), records)]);
        assert_eq!(json, again);
        assert!(json.contains("\"ts\":1"));
        assert!(json.contains("\"ns\":2500"));
        assert!(json.contains("run \\\"a\\\""));
    }
}
