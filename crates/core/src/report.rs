//! Structured communication-cost reports.
//!
//! Every pipeline run charges rounds on a [`bcc_runtime::RoundLedger`]; a
//! [`RoundReport`] is the caller-facing snapshot of that ledger: totals plus a
//! structured per-phase breakdown in ledger order, serializable for cost
//! telemetry (e.g. `BENCH_*.json` trajectories) and renderable as the classic
//! human-readable table through its [`Display`] impl.

use std::fmt::{self, Display};

use bcc_runtime::{PhaseStats, RoundLedger};
use serde::{Deserialize, Serialize};

/// A compact, structured summary of the communication cost of a pipeline run.
///
/// # Examples
///
/// ```
/// use bcc_core::RoundReport;
/// use bcc_runtime::RoundLedger;
///
/// let mut ledger = RoundLedger::new();
/// ledger.begin_phase("solve");
/// ledger.charge(7, 70);
/// let report = RoundReport::from_ledger(&ledger);
/// assert_eq!(report.total_rounds, 7);
/// assert_eq!(report.phase("solve").unwrap().bits, 70);
/// assert!(report.to_string().contains("TOTAL"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundReport {
    /// Total rounds charged.
    pub total_rounds: u64,
    /// Total bits written to the blackboard / links.
    pub total_bits: u64,
    /// Total number of communication operations.
    pub total_operations: u64,
    /// Per-phase statistics in the order the phases were first started.
    pub breakdown: Vec<(String, PhaseStats)>,
}

impl RoundReport {
    /// Snapshots a ledger into a report.
    pub fn from_ledger(ledger: &RoundLedger) -> Self {
        RoundReport {
            total_rounds: ledger.total_rounds(),
            total_bits: ledger.total_bits(),
            total_operations: ledger.total_operations(),
            breakdown: ledger
                .phase_names()
                .map(|name| {
                    let stats = ledger
                        .phase_stats(name)
                        .expect("phase listed by the ledger exists");
                    (name.to_owned(), stats)
                })
                .collect(),
        }
    }

    /// Statistics of a named phase, if that phase was charged.
    pub fn phase(&self, name: &str) -> Option<PhaseStats> {
        self.breakdown
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, stats)| *stats)
    }

    /// Returns `true` if the run charged a phase with this name.
    pub fn has_phase(&self, name: &str) -> bool {
        self.phase(name).is_some()
    }

    /// Names of the charged phases in ledger order.
    pub fn phase_names(&self) -> impl Iterator<Item = &str> {
        self.breakdown.iter().map(|(name, _)| name.as_str())
    }

    /// The cost charged since an earlier snapshot of the same ledger:
    /// phase-wise saturating difference, keeping only phases that charged
    /// something in between.
    pub fn since(&self, baseline: &RoundReport) -> RoundReport {
        let breakdown = self
            .breakdown
            .iter()
            .filter_map(|(name, stats)| {
                let before = baseline.phase(name).unwrap_or_default();
                let delta = PhaseStats {
                    rounds: stats.rounds.saturating_sub(before.rounds),
                    bits: stats.bits.saturating_sub(before.bits),
                    operations: stats.operations.saturating_sub(before.operations),
                };
                (delta != PhaseStats::default()).then(|| (name.clone(), delta))
            })
            .collect();
        RoundReport {
            total_rounds: self.total_rounds.saturating_sub(baseline.total_rounds),
            total_bits: self.total_bits.saturating_sub(baseline.total_bits),
            total_operations: self
                .total_operations
                .saturating_sub(baseline.total_operations),
            breakdown,
        }
    }
}

impl Display for RoundReport {
    /// Renders the pre-redesign human-readable table: one row per phase plus
    /// a `TOTAL` row.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<36} {:>12} {:>16} {:>10}",
            "phase", "rounds", "bits", "ops"
        )?;
        for (name, stats) in &self.breakdown {
            writeln!(
                f,
                "{:<36} {:>12} {:>16} {:>10}",
                name, stats.rounds, stats.bits, stats.operations
            )?;
        }
        writeln!(
            f,
            "{:<36} {:>12} {:>16} {:>10}",
            "TOTAL", self.total_rounds, self.total_bits, self.total_operations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ledger() -> RoundLedger {
        let mut ledger = RoundLedger::new();
        ledger.begin_phase("preprocess");
        ledger.charge(3, 120);
        ledger.begin_phase("solve");
        ledger.charge(2, 40);
        ledger.begin_phase("preprocess");
        ledger.charge(1, 10);
        ledger
    }

    #[test]
    fn snapshot_preserves_ledger_order_and_totals() {
        let report = RoundReport::from_ledger(&sample_ledger());
        assert_eq!(report.total_rounds, 6);
        assert_eq!(report.total_bits, 170);
        assert_eq!(report.total_operations, 3);
        let names: Vec<_> = report.phase_names().collect();
        assert_eq!(names, vec!["preprocess", "solve"]);
        assert_eq!(report.phase("preprocess").unwrap().rounds, 4);
        assert_eq!(report.phase("solve").unwrap().rounds, 2);
        assert!(report.has_phase("solve"));
        assert!(!report.has_phase("rounding"));
    }

    #[test]
    fn display_matches_the_ledger_table() {
        let ledger = sample_ledger();
        let report = RoundReport::from_ledger(&ledger);
        assert_eq!(report.to_string(), ledger.report());
    }

    #[test]
    fn since_yields_the_phase_wise_delta() {
        let mut ledger = sample_ledger();
        let before = RoundReport::from_ledger(&ledger);
        ledger.begin_phase("solve");
        ledger.charge(5, 50);
        let after = RoundReport::from_ledger(&ledger);
        let delta = after.since(&before);
        assert_eq!(delta.total_rounds, 5);
        assert_eq!(delta.total_bits, 50);
        assert_eq!(delta.total_operations, 1);
        // Only the phase that charged in between survives.
        let names: Vec<_> = delta.phase_names().collect();
        assert_eq!(names, vec!["solve"]);
        assert_eq!(delta.phase("solve").unwrap().rounds, 5);
        // A no-op interval yields an empty delta.
        let nothing = after.since(&after);
        assert_eq!(nothing.total_rounds, 0);
        assert!(nothing.breakdown.is_empty());
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = RoundReport::from_ledger(&sample_ledger());
        let json = serde_json::to_string(&report).unwrap();
        let back: RoundReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
