//! Shared serving internals: the request/response vocabulary and the
//! execution core both the batch and the streaming engine are built on.
//!
//! [`Request`] / [`Response`] describe one unit of work for any of the
//! paper's four pipelines. [`EngineCore`] owns everything the engines share:
//! the model configuration, the master seed, the default accuracy, the
//! [`LaplacianCache`] and the deterministic per-request seed derivation —
//! so [`crate::batch::BatchEngine`] and [`crate::stream::StreamEngine`]
//! produce bit-identical results for the same submissions no matter which
//! front-end scheduled them.

use std::collections::HashMap;
use std::sync::Arc;

use bcc_flow::{McmfOptions, McmfResult};
use bcc_graph::{FlowInstance, Graph, GraphFingerprint};
use bcc_laplacian::LaplacianSolve;
use bcc_lp::{LpInstance, LpSolution};
use bcc_runtime::{ModelConfig, RoundLedger};
use bcc_sparsifier::SparsifierOutput;

use crate::batch::{PreprocessingCost, RequestCost};
use crate::cache::{CacheEntry, EvictionPolicy, LaplacianCache};
use crate::cost::{CostDims, CostKind, CostModel};
use crate::error::Error;
use crate::report::RoundReport;
use crate::session::{LpRequest, Outcome, Session};
use crate::telemetry::{MetricsRegistry, TelemetrySink};

/// One pipeline request submitted to a serving engine.
// Requests are queue items, not hot-loop values: the size skew between an
// LP instance and a sparsify request does not matter at this granularity.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Request {
    /// Theorem 1.2 — compute a `(1 ± ε)`-spectral sparsifier.
    Sparsify {
        /// The input graph.
        graph: Graph,
        /// Target accuracy `ε`.
        epsilon: f64,
    },
    /// Theorem 1.3 — solve `L_G x = b`. Preprocessing is shared across the
    /// engine through the fingerprint-keyed cache.
    Laplacian {
        /// The input graph (the cache key is its fingerprint).
        graph: Graph,
        /// The right-hand side.
        b: Vec<f64>,
        /// Per-solve accuracy; `None` uses the engine default.
        epsilon: Option<f64>,
    },
    /// Theorem 1.4 — solve a linear program.
    Lp {
        /// The LP instance.
        instance: LpInstance,
        /// Starting point, options and Gram-solver choice.
        request: LpRequest,
    },
    /// Theorem 1.1 — exact min-cost max-flow.
    MinCostMaxFlow {
        /// The flow instance.
        instance: FlowInstance,
        /// Explicit options; `None` derives laboratory options from the
        /// request seed.
        options: Option<McmfOptions>,
    },
}

impl Request {
    /// A sparsify request.
    pub fn sparsify(graph: Graph, epsilon: f64) -> Self {
        Request::Sparsify { graph, epsilon }
    }

    /// A Laplacian-solve request at the engine's default accuracy.
    pub fn laplacian(graph: Graph, b: Vec<f64>) -> Self {
        Request::Laplacian {
            graph,
            b,
            epsilon: None,
        }
    }

    /// A Laplacian-solve request at an explicit accuracy.
    pub fn laplacian_with_epsilon(graph: Graph, b: Vec<f64>, epsilon: f64) -> Self {
        Request::Laplacian {
            graph,
            b,
            epsilon: Some(epsilon),
        }
    }

    /// An LP request.
    pub fn lp(instance: LpInstance, request: LpRequest) -> Self {
        Request::Lp { instance, request }
    }

    /// A min-cost max-flow request with laboratory options.
    pub fn min_cost_max_flow(instance: FlowInstance) -> Self {
        Request::MinCostMaxFlow {
            instance,
            options: None,
        }
    }

    /// The request's pipeline name, as recorded in
    /// [`crate::batch::RequestCost::kind`].
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Sparsify { .. } => "sparsify",
            Request::Laplacian { .. } => "laplacian",
            Request::Lp { .. } => "lp",
            Request::MinCostMaxFlow { .. } => "mcmf",
        }
    }

    /// What a [`CostModel`] prices this request as: the execution cost kind
    /// plus the instance dimensions the prediction is derived from. The
    /// model turns the dimensions into a nonlinear basis (`m·log n`-shaped
    /// for graph kinds, solve-dominated for LP/MCMF) and scales it by the
    /// calibrated rate of the request's `(kind, size-bucket)` cell — see
    /// the [`crate::cost`] module docs. For Laplacian requests this is the
    /// *solve*; a possible preprocessing (re)build is priced separately
    /// under [`CostKind::LaplacianPreprocess`].
    pub fn cost_profile(&self) -> (CostKind, CostDims) {
        match self {
            Request::Sparsify { graph, .. } => (CostKind::Sparsify, CostDims::of_graph(graph)),
            Request::Laplacian { graph, .. } => {
                (CostKind::LaplacianSolve, CostDims::of_graph(graph))
            }
            Request::Lp { instance, .. } => (
                CostKind::Lp,
                CostDims {
                    n: instance.n() as u64,
                    m: instance.m() as u64,
                },
            ),
            Request::MinCostMaxFlow { instance, .. } => (
                CostKind::Mcmf,
                CostDims {
                    n: instance.graph.n() as u64,
                    m: instance.graph.m() as u64,
                },
            ),
        }
    }
}

/// The value computed by one [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Result of a [`Request::Sparsify`].
    Sparsify(SparsifierOutput),
    /// Result of a [`Request::Laplacian`].
    Laplacian(LaplacianSolve),
    /// Result of a [`Request::Lp`].
    Lp(LpSolution),
    /// Result of a [`Request::MinCostMaxFlow`].
    MinCostMaxFlow(McmfResult),
}

impl Response {
    /// The sparsifier output, if this is a sparsify response.
    pub fn as_sparsify(&self) -> Option<&SparsifierOutput> {
        match self {
            Response::Sparsify(v) => Some(v),
            _ => None,
        }
    }

    /// The Laplacian solve, if this is a Laplacian response.
    pub fn as_laplacian(&self) -> Option<&LaplacianSolve> {
        match self {
            Response::Laplacian(v) => Some(v),
            _ => None,
        }
    }

    /// The LP solution, if this is an LP response.
    pub fn as_lp(&self) -> Option<&LpSolution> {
        match self {
            Response::Lp(v) => Some(v),
            _ => None,
        }
    }

    /// The flow result, if this is a min-cost max-flow response.
    pub fn as_min_cost_max_flow(&self) -> Option<&McmfResult> {
        match self {
            Response::MinCostMaxFlow(v) => Some(v),
            _ => None,
        }
    }
}

/// The deterministic seed of request `index` under master seed `master`: a
/// splitmix64 finalizer over the two, shared by both engines so a request
/// observes the same randomness whether it was batched or streamed.
pub(crate) fn derive_request_seed(master: u64, index: usize) -> u64 {
    bcc_runtime::splitmix64(
        master.wrapping_add((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    )
}

/// The engine-agnostic serving core: configuration, seed derivation, the
/// shared Laplacian cache and the shared [`CostModel`] every engine decision
/// is priced by. Scheduling front-ends (batch slices, streaming queues)
/// layer on top of this without touching result semantics.
#[derive(Debug)]
pub(crate) struct EngineCore {
    pub(crate) model: ModelConfig,
    pub(crate) seed: u64,
    pub(crate) epsilon: f64,
    pub(crate) cache: LaplacianCache,
    /// The unified cost model: calibrated by completions (and cache
    /// builds), consulted by the scheduler, deadline admission and
    /// cost-aware eviction.
    pub(crate) cost: Arc<CostModel>,
    /// The engine's telemetry sink: disabled by default, in which case
    /// every emission site is a single `Option` check. Telemetry is
    /// write-only — nothing on the result or accounting path reads it.
    pub(crate) telemetry: TelemetrySink,
}

impl EngineCore {
    pub(crate) fn new(
        model: ModelConfig,
        seed: u64,
        epsilon: f64,
        shards: usize,
        cache_capacity: Option<usize>,
        eviction_policy: EvictionPolicy,
        cost: Arc<CostModel>,
        telemetry: TelemetrySink,
    ) -> Self {
        EngineCore {
            model,
            seed,
            epsilon,
            cache: LaplacianCache::new(
                shards,
                cache_capacity,
                eviction_policy,
                Arc::clone(&cost),
                &telemetry,
            ),
            cost,
            telemetry,
        }
    }

    /// Publishes the point-in-time gauges of the core's shared components
    /// (cache occupancy, cost-model calibration) into `registry`; live event
    /// counters stream in as they happen instead.
    pub(crate) fn publish_metrics(&self, registry: &MetricsRegistry) {
        self.cache.publish_metrics(registry);
        self.cost.publish_metrics(registry);
    }

    /// See [`derive_request_seed`].
    pub(crate) fn request_seed(&self, index: usize) -> u64 {
        derive_request_seed(self.seed, index)
    }

    /// A fresh worker session at the given seed, mirroring the engine's
    /// configuration.
    pub(crate) fn worker_session(&self, seed: u64) -> Session {
        Session::builder()
            .model(self.model)
            .seed(seed)
            .epsilon(self.epsilon)
            .build()
    }

    /// Builds the cache entry of one graph at the master seed, exactly as
    /// `Session::laplacian(graph).preprocess()` would — a pure function of
    /// `(master seed, graph)`, which is what makes entries shareable (and
    /// rebuildable after eviction) without affecting results.
    pub(crate) fn build_entry(&self, graph: &Graph) -> CacheEntry {
        let session = self.worker_session(self.seed);
        match session.laplacian(graph).preprocess() {
            Ok(prepared) => {
                let report = prepared.preprocessing_report().clone();
                (Ok(prepared), report)
            }
            Err(e) => (
                Err(e),
                RoundReport {
                    total_rounds: 0,
                    total_bits: 0,
                    total_operations: 0,
                    breakdown: Vec::new(),
                },
            ),
        }
    }

    /// Executes one request on a fresh worker session seeded by the request
    /// index. Laplacian requests solve **directly on the shared cached
    /// entry** — `PreparedLaplacian::solve_shared` runs each solve on a
    /// fresh per-request network with the worker's [`ScratchArena`], so no
    /// per-request clone of the preprocessing state is needed and every
    /// solve still starts from the same pristine state regardless of
    /// scheduling.
    pub(crate) fn execute(
        &self,
        index: usize,
        request: &Request,
        entry: Option<&CacheEntry>,
        arena: &mut bcc_laplacian::ScratchArena,
    ) -> Result<Outcome<Response>, Error> {
        match request {
            Request::Sparsify { graph, epsilon } => self
                .worker_session(self.request_seed(index))
                .sparsify(graph, *epsilon)
                .map(|o| o.map(Response::Sparsify)),
            Request::Laplacian { b, epsilon, .. } => {
                let (prepared, _) = entry.expect("laplacian requests carry their cache entry");
                let prepared = prepared.as_ref().map_err(Error::clone)?;
                let outcome = prepared.solve_shared(b, *epsilon, arena)?;
                Ok(outcome.map(Response::Laplacian))
            }
            Request::Lp { instance, request } => self
                .worker_session(self.request_seed(index))
                .lp(instance, request)
                .map(|o| o.map(Response::Lp)),
            Request::MinCostMaxFlow { instance, options } => {
                let mut session = self.worker_session(self.request_seed(index));
                match options {
                    Some(opts) => session.min_cost_max_flow_with(instance, opts),
                    None => session.min_cost_max_flow(instance),
                }
                .map(|o| o.map(Response::MinCostMaxFlow))
            }
        }
    }

    /// Folds per-request completion records into the deterministic cost
    /// accounting both engines report: [`RequestCost`]s in submission order,
    /// analytic hit/miss classification (the first record of a fingerprint is
    /// the miss unless the entry pre-dated the run), one [`PreprocessingCost`]
    /// per distinct fingerprint in first-use order, and a ledger charging
    /// every successful request plus each *new* preprocessing exactly once.
    ///
    /// `preprocessing_report_of` resolves a fingerprint to its preprocessing
    /// cost snapshot (batch: the run's pinned entries; stream: the reports
    /// recorded at build time) — a pure function of `(master seed, graph)`,
    /// which is what keeps the whole accounting scheduling-independent.
    pub(crate) fn account(
        &self,
        records: Vec<RequestRecord>,
        preprocessing_report_of: impl Fn(u128) -> RoundReport,
    ) -> Accounting {
        let mut order: Vec<(GraphFingerprint, bool)> = Vec::new();
        let mut uses: HashMap<u128, u64> = HashMap::new();
        let mut ledger = RoundLedger::new();
        let mut per_request = Vec::with_capacity(records.len());
        let mut failures = 0u64;
        let mut cache_hits = 0u64;
        let mut cache_misses = 0u64;
        for record in records {
            let cache_hit = match record.fingerprint {
                Some(fp) => {
                    let count = uses.entry(fp.as_u128()).or_insert(0);
                    let first_use = *count == 0;
                    if first_use {
                        order.push((fp, record.pre_cached));
                    }
                    *count += 1;
                    // A repeat of an earlier fingerprint always hits; the
                    // first use hits only if the entry pre-dated the run.
                    let hit = !first_use || record.pre_cached;
                    if hit {
                        cache_hits += 1;
                    } else {
                        cache_misses += 1;
                    }
                    hit
                }
                None => false,
            };
            if !record.ok {
                failures += 1;
            }
            ledger.charge_phases(
                record
                    .report
                    .breakdown
                    .iter()
                    .map(|(n, s)| (n.as_str(), *s)),
            );
            per_request.push(RequestCost {
                index: record.index,
                kind: record.kind.to_string(),
                seed: self.request_seed(record.index as usize),
                fingerprint: record.fingerprint.map(|f| f.to_hex()),
                cache_hit,
                ok: record.ok,
                error: record.error,
                report: record.report,
            });
        }
        let preprocessing: Vec<PreprocessingCost> = order
            .iter()
            .map(|(fp, pre_cached)| {
                let report = preprocessing_report_of(fp.as_u128());
                if !pre_cached {
                    ledger.charge_phases(report.breakdown.iter().map(|(n, s)| (n.as_str(), *s)));
                }
                PreprocessingCost {
                    fingerprint: fp.to_hex(),
                    requests: uses[&fp.as_u128()],
                    cached: *pre_cached,
                    report,
                }
            })
            .collect();
        Accounting {
            failures,
            cache_hits,
            cache_misses,
            total: RoundReport::from_ledger(&ledger),
            ledger,
            preprocessing,
            per_request,
        }
    }
}

/// One request's completion record, as fed to [`EngineCore::account`]: the
/// deterministic admission metadata plus the execution outcome.
pub(crate) struct RequestRecord {
    pub(crate) index: u64,
    pub(crate) kind: &'static str,
    pub(crate) fingerprint: Option<GraphFingerprint>,
    /// Whether the fingerprint's cache entry pre-dated the run (only the
    /// first record of each fingerprint is consulted).
    pub(crate) pre_cached: bool,
    pub(crate) ok: bool,
    pub(crate) error: Option<String>,
    pub(crate) report: RoundReport,
}

/// The result of [`EngineCore::account`], shared by `BatchReport` and
/// `StreamReport` construction.
pub(crate) struct Accounting {
    pub(crate) failures: u64,
    pub(crate) cache_hits: u64,
    pub(crate) cache_misses: u64,
    pub(crate) total: RoundReport,
    /// The same totals as a ledger, for folding into an engine's cumulative
    /// ledger.
    pub(crate) ledger: RoundLedger,
    pub(crate) preprocessing: Vec<PreprocessingCost>,
    pub(crate) per_request: Vec<RequestCost>,
}
