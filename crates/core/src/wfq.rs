//! The weighted-fair-queueing scheduler, extracted from the streaming
//! engine and generic over its job payload.
//!
//! [`crate::stream::StreamEngine`] and the `bench` crate's deterministic
//! load harness share one scheduling discipline: per-class FIFO queues,
//! virtual-finish-time dispatch (`max(V, F_class) + cost × VT_UNIT /
//! weight` in u128 fixed point), work-conserving token-bucket rate limits
//! whose windows count consecutive dispatches, deadline expiry sweeps, and
//! backlog-based expected-wait estimates for deadline-aware admission.
//! [`WfqQueue`] is that discipline with the payload abstracted away — the
//! engine queues real [`crate::stream::Request`]s behind it, the load
//! harness queues simulated arrivals, and both observe exactly the same
//! dispatch order for the same (class, cost, deadline) sequence.
//!
//! Deadlines are expressed on the engine's [`crate::clock::Clock`] axis:
//! a job's deadline is the clock reading (duration since the clock's
//! epoch) past which it must not dispatch, and [`WfqQueue::take_expired`]
//! sweeps against the current reading. The queue itself never reads a
//! clock — callers pass `now` in, which is what makes the discipline
//! drivable by a virtual clock.

use std::collections::VecDeque;
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Scheduling class of one submission. Classes form a small open set: the
/// two built-in classes plus up to 256 caller-defined ones
/// ([`Priority::custom`]). Each class has a WFQ weight (and optionally a
/// rate limit); dispatch order follows virtual-finish-time weighted fair
/// queueing, FIFO within a class. Classes affect *latency only* — results
/// are bit-identical whichever class a request is submitted under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive traffic (default WFQ weight 4).
    Interactive,
    /// Throughput traffic (default WFQ weight 1).
    Bulk,
    /// A caller-defined class (default WFQ weight 1 unless configured).
    /// Prefer the [`Priority::custom`] constructor.
    Custom(u8),
}

impl Priority {
    /// A caller-defined scheduling class. Classes with the same id share
    /// one queue, weight and rate limit.
    pub fn custom(id: u8) -> Self {
        Priority::Custom(id)
    }

    /// The class name used in [`ClassStats::class`]: `"interactive"`,
    /// `"bulk"` or `"custom-<id>"`.
    pub fn label(&self) -> String {
        match self {
            Priority::Interactive => "interactive".to_string(),
            Priority::Bulk => "bulk".to_string(),
            Priority::Custom(id) => format!("custom-{id}"),
        }
    }

    /// Parses a class label back into its [`Priority`] — the inverse of
    /// [`Priority::label`]. Accepts `"interactive"`, `"bulk"` and
    /// `"custom-<id>"` with `id` in `0..=255`.
    pub fn parse_label(label: &str) -> Option<Priority> {
        match label {
            "interactive" => Some(Priority::Interactive),
            "bulk" => Some(Priority::Bulk),
            _ => {
                let id = label.strip_prefix("custom-")?;
                id.parse::<u8>().ok().map(Priority::Custom)
            }
        }
    }

    /// Dense ordering key: built-in classes first, then customs by id. This
    /// is the deterministic order of [`SchedulerStats::classes`].
    pub(crate) fn key(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Bulk => 1,
            Priority::Custom(id) => 2 + id as usize,
        }
    }

    /// The default WFQ weight of the class.
    pub(crate) fn default_weight(self) -> u32 {
        match self {
            Priority::Interactive => 4,
            Priority::Bulk | Priority::Custom(_) => 1,
        }
    }
}

/// Serializes as the class label string ([`Priority::label`]), so configs
/// and scenario files spell classes the same way: `"interactive"`,
/// `"bulk"`, `"custom-7"`.
impl Serialize for Priority {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.label())
    }
}

/// Deserializes from a class label string — the inverse of
/// [`Priority::label`], via [`Priority::parse_label`].
impl Deserialize for Priority {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        match value {
            serde::Value::String(label) => Priority::parse_label(label).ok_or_else(|| {
                serde::Error::custom(format!(
                    "unknown scheduling-class label `{label}` \
                     (expected `interactive`, `bulk` or `custom-<id>`)"
                ))
            }),
            _ => Err(serde::Error::custom(
                "expected a scheduling-class label string",
            )),
        }
    }
}

/// A token-bucket rate limit on one scheduling class: at most `tokens`
/// dispatches of the class per scheduling window of `window` consecutive
/// dispatches (across all classes). The limiter is work-conserving — it
/// shapes dispatch order among competing classes but never idles a worker
/// when only throttled work is queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RateLimit {
    /// Dispatch budget of the class per window (min 1).
    pub tokens: u32,
    /// Window length, in consecutive dispatches across all classes (min 1).
    pub window: u32,
}

impl RateLimit {
    /// A rate limit of `tokens` dispatches per window of `window` total
    /// dispatches. Both are clamped to at least 1.
    pub fn new(tokens: u32, window: u32) -> Self {
        RateLimit {
            tokens: tokens.max(1),
            window: window.max(1),
        }
    }

    /// The same clamp as [`RateLimit::new`], re-applied where limits enter
    /// the scheduler — the public fields (and `Deserialize`) can bypass the
    /// constructor, and a zero window must never reach the window
    /// arithmetic.
    pub(crate) fn clamped(self) -> Self {
        RateLimit::new(self.tokens, self.window)
    }
}

/// Per-class configuration of a [`WfqQueue`]: the WFQ weight and an
/// optional token-bucket rate limit.
#[derive(Debug, Clone, Copy)]
pub struct ClassConfig {
    /// The class's WFQ weight (clamped to at least 1 by the queue).
    pub weight: u32,
    /// The class's rate limit, if any.
    pub rate: Option<RateLimit>,
}

impl ClassConfig {
    /// The default configuration of `class`: its default weight, no rate
    /// limit.
    pub fn default_for(class: Priority) -> Self {
        ClassConfig {
            weight: class.default_weight(),
            rate: None,
        }
    }
}

/// Per-class scheduler counters of one queue's lifetime, surfaced in
/// [`SchedulerStats::classes`] (and through it in `BENCH_stream.json`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassStats {
    /// Class name ([`Priority::label`]).
    pub class: String,
    /// The configured WFQ weight.
    pub weight: u32,
    /// The configured rate limit, if any.
    pub rate_limit: Option<RateLimit>,
    /// Submissions admitted under this class.
    pub submitted: u64,
    /// Jobs of this class dispatched to a worker.
    pub dispatched: u64,
    /// Jobs that expired in the queue
    /// ([`crate::error::Error::DeadlineExceeded`]) and were never
    /// dispatched.
    pub expired: u64,
    /// Scheduling decisions that skipped this class because its rate-limit
    /// budget for the current window was spent. Timing-dependent under
    /// concurrency; always zero without a rate limit.
    pub throttled: u64,
    /// Submissions rejected at admission with
    /// [`crate::error::Error::DeadlineInfeasible`] (expected wait already
    /// past the deadline). Like rejected backpressure they consume no
    /// submission index. Timing-dependent under concurrency; always zero
    /// for deadline-less workloads.
    pub infeasible: u64,
    /// Sum of the cost model's predicted rounds over this class's executed
    /// submissions, computed by a deterministic submission-order replay of
    /// the calibration loop (so it is a pure function of the admitted
    /// workload — see [`crate::cost`]). Expired submissions are excluded:
    /// they never executed, so there is no actual to compare against.
    pub predicted_rounds: u64,
    /// Sum of the actual rounds this class's executed submissions charged —
    /// the measured half of [`ClassStats::predicted_rounds`]. Compare the
    /// two for the class's estimation error
    /// ([`ClassStats::estimation_error`]).
    pub actual_rounds: u64,
}

impl ClassStats {
    /// The class's symmetric ratio estimation error:
    /// `max(predicted, actual) / min(predicted, actual) − 1`
    /// ([`symmetric_ratio_error`]). A 2x miss reads 1.0 whichever side is
    /// short — unlike the earlier `|p − a| / a`, which saturated at 1.0 for
    /// any under-prediction and let a 10,000x miss pass a 2.0 bound
    /// forever. `None` only when both sides are zero (nothing happened),
    /// infinite when exactly one side is zero.
    pub fn estimation_error(&self) -> Option<f64> {
        symmetric_ratio_error(self.predicted_rounds, self.actual_rounds)
    }
}

/// The symmetric ratio error between a predicted and an actual quantity:
/// `max / min − 1`, so over- and under-prediction of the same magnitude
/// score the same and nothing saturates. `None` when both sides are zero
/// (no evidence either way), [`f64::INFINITY`] when exactly one is — a
/// model that predicted rounds for work that charged none (or none for
/// work that charged some) is wrong by any bound.
pub fn symmetric_ratio_error(predicted: u64, actual: u64) -> Option<f64> {
    let hi = predicted.max(actual);
    let lo = predicted.min(actual);
    if hi == 0 {
        return None;
    }
    if lo == 0 {
        return Some(f64::INFINITY);
    }
    Some(hi as f64 / lo as f64 - 1.0)
}

/// Scheduler-level accounting: the discipline plus one [`ClassStats`] per
/// class, in deterministic class order (built-ins first, then customs by
/// id).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// The scheduling discipline (`"wfq"`).
    pub policy: String,
    /// Per-class counters. The built-in classes are always present; custom
    /// classes appear once configured or used.
    pub classes: Vec<ClassStats>,
}

impl SchedulerStats {
    /// Counters of one class, by its [`Priority`].
    pub fn class(&self, priority: Priority) -> Option<&ClassStats> {
        let label = priority.label();
        self.classes.iter().find(|c| c.class == label)
    }

    /// Total deadline expirations across all classes.
    pub fn expired(&self) -> u64 {
        self.classes.iter().map(|c| c.expired).sum()
    }

    /// Total infeasible-deadline admission rejections across all classes.
    pub fn infeasible(&self) -> u64 {
        self.classes.iter().map(|c| c.infeasible).sum()
    }
}

/// One admitted job travelling through a [`WfqQueue`].
#[derive(Debug)]
pub struct WfqJob<T> {
    /// The submission index assigned at admission (dense, in admission
    /// order).
    pub index: u64,
    /// The scheduling class the job was admitted under.
    pub class: Priority,
    /// The caller's payload.
    pub payload: T,
    /// Queueing deadline on the owning clock's axis; a job still queued
    /// past it expires instead of dispatching.
    pub deadline: Option<Duration>,
    /// The job's estimated cost in rounds — what its virtual finish tag
    /// charged, and its contribution to the class backlog deadline
    /// admission prices.
    pub cost: u64,
    /// WFQ virtual finish tag, assigned at admission.
    finish: u128,
}

/// Virtual-time charge of one estimated round at weight 1. Tags are
/// `max(V, F_class) + cost × VT_UNIT / weight` in fixed-point arithmetic,
/// so any weight up to `u32::MAX` keeps a non-zero, exactly representable
/// per-round charge; with unit costs (size-aware tags off) this degenerates
/// to the classic unit-job virtual clock. Costs are clamped to
/// [`crate::cost::MAX_ESTIMATE_ROUNDS`] (2⁴⁰), so `cost × VT_UNIT` stays
/// below 2⁷² and the u128 clock cannot realistically overflow.
const VT_UNIT: u128 = 1 << 32;

/// One class inside the scheduler: its FIFO queue, WFQ state, rate-limit
/// window and counters.
struct ClassState<T> {
    priority: Priority,
    weight: u32,
    rate: Option<RateLimit>,
    queue: VecDeque<WfqJob<T>>,
    /// Summed estimated cost of the queued jobs — the class backlog
    /// deadline admission prices.
    queued_cost: u128,
    /// Finish tag of the last job admitted to this class.
    last_finish: u128,
    /// Rate-limit window this class last dispatched in.
    window_index: u64,
    /// Dispatches consumed in that window.
    window_used: u32,
    submitted: u64,
    dispatched: u64,
    expired: u64,
    throttled: u64,
    infeasible: u64,
}

impl<T> ClassState<T> {
    fn new(priority: Priority, config: ClassConfig) -> Self {
        ClassState {
            priority,
            weight: config.weight.max(1),
            rate: config.rate.map(RateLimit::clamped),
            queue: VecDeque::new(),
            queued_cost: 0,
            last_finish: 0,
            window_index: 0,
            window_used: 0,
            submitted: 0,
            dispatched: 0,
            expired: 0,
            throttled: 0,
            infeasible: 0,
        }
    }

    /// Whether the class has spent its dispatch budget for the window the
    /// next dispatch slot falls into.
    fn throttled_at(&self, dispatches: u64) -> bool {
        let Some(rate) = self.rate else { return false };
        let window = dispatches / rate.window as u64;
        self.window_index == window && self.window_used >= rate.tokens
    }

    fn stats(&self) -> ClassStats {
        ClassStats {
            class: self.priority.label(),
            weight: self.weight,
            rate_limit: self.rate,
            submitted: self.submitted,
            dispatched: self.dispatched,
            expired: self.expired,
            throttled: self.throttled,
            infeasible: self.infeasible,
            // Filled in by the engine's deterministic replay at
            // aggregation; the live scheduler never sees actual costs.
            predicted_rounds: 0,
            actual_rounds: 0,
        }
    }
}

/// The weighted-fair-queueing admission queue: one FIFO per class, dispatch
/// by smallest virtual finish tag, token-bucket throttling, deadline expiry
/// sweeps. Within a class, FIFO in submission order (tags are monotone per
/// class by construction). Generic over the job payload `T` — see the
/// [module documentation](self).
pub struct WfqQueue<T> {
    /// Classes in deterministic key order; extended on demand for custom
    /// classes that were never configured.
    classes: Vec<ClassState<T>>,
    queued: usize,
    /// How many queued jobs carry a deadline, so the per-dispatch expiry
    /// sweep is free for deadline-less workloads.
    deadlined: usize,
    next_index: u64,
    /// WFQ virtual clock: the largest finish tag dispatched so far.
    virtual_time: u128,
    /// Total dispatches, the clock of the rate-limit windows.
    dispatches: u64,
}

impl<T> WfqQueue<T> {
    /// An empty queue over the given classes (more join on first use with
    /// their default configuration).
    pub fn new(classes: &[(Priority, ClassConfig)]) -> Self {
        WfqQueue {
            classes: classes
                .iter()
                .map(|(p, c)| ClassState::new(*p, *c))
                .collect(),
            queued: 0,
            deadlined: 0,
            next_index: 0,
            virtual_time: 0,
            dispatches: 0,
        }
    }

    /// Number of jobs currently queued (admitted, not yet dispatched or
    /// expired).
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Total estimated cost (rounds) of every queued job across all classes
    /// — the backlog the elastic worker pool sizes itself against, saturated
    /// to `u64`.
    pub fn backlog_rounds(&self) -> u64 {
        let total: u128 = self.classes.iter().map(|c| c.queued_cost).sum();
        u64::try_from(total).unwrap_or(u64::MAX)
    }

    /// The submission index the next admitted job will receive — i.e. how
    /// many jobs have been admitted so far.
    pub fn next_index(&self) -> u64 {
        self.next_index
    }

    /// The class state of `priority`, created with defaults on first use.
    fn class_mut(&mut self, priority: Priority) -> &mut ClassState<T> {
        let key = priority.key();
        let pos = self
            .classes
            .iter()
            .position(|c| c.priority.key() >= key)
            .unwrap_or(self.classes.len());
        if self.classes.get(pos).is_none_or(|c| c.priority != priority) {
            self.classes.insert(
                pos,
                ClassState::new(priority, ClassConfig::default_for(priority)),
            );
        }
        &mut self.classes[pos]
    }

    /// Admits one job, assigning its submission index and WFQ finish tag.
    /// `cost` is the job's estimated rounds; the tag charges
    /// `cost × VT_UNIT / weight` (unit-job scheduling passes `cost = 1`). A
    /// zero cost is legal — the tag simply does not advance, and the
    /// `(finish, index)` tie-break keeps dispatch FIFO and starvation-free
    /// regardless. `deadline` is a reading on the caller's clock axis,
    /// compared against the `now` passed to [`WfqQueue::take_expired`].
    pub fn push(
        &mut self,
        priority: Priority,
        payload: T,
        deadline: Option<Duration>,
        cost: u64,
    ) -> u64 {
        let index = self.next_index;
        self.next_index += 1;
        let virtual_time = self.virtual_time;
        let class = self.class_mut(priority);
        let finish =
            virtual_time.max(class.last_finish) + cost as u128 * VT_UNIT / class.weight as u128;
        class.last_finish = finish;
        class.submitted += 1;
        class.queued_cost += cost as u128;
        class.queue.push_back(WfqJob {
            index,
            class: priority,
            payload,
            deadline,
            cost,
            finish,
        });
        self.queued += 1;
        if deadline.is_some() {
            self.deadlined += 1;
        }
        index
    }

    /// The rounds a new submission of `priority` should expect to wait for
    /// before dispatch, given the queued backlog: the class's own backlog
    /// served at its WFQ weight share (but never more than the whole
    /// backlog — the scheduler is work-conserving), spread over the worker
    /// pool. Zero on an idle queue.
    pub fn expected_wait_rounds(&self, priority: Priority, workers: usize) -> u64 {
        let mut class_backlog = 0u128;
        let mut total_backlog = 0u128;
        let mut active_weight = 0u128;
        let mut class_weight = u128::from(
            self.classes
                .iter()
                .find(|c| c.priority == priority)
                .map(|c| c.weight)
                .unwrap_or_else(|| priority.default_weight()),
        );
        for class in &self.classes {
            total_backlog += class.queued_cost;
            if class.priority == priority {
                class_backlog = class.queued_cost;
                class_weight = u128::from(class.weight);
                active_weight += u128::from(class.weight);
            } else if !class.queue.is_empty() {
                active_weight += u128::from(class.weight);
            }
        }
        // The class's share of service is weight / active_weight, so its
        // backlog takes backlog ÷ share rounds of total service — capped at
        // the whole backlog, which a work-conserving scheduler never exceeds.
        let scaled = (class_backlog * active_weight / class_weight).min(total_backlog);
        u64::try_from(scaled / workers.max(1) as u128).unwrap_or(u64::MAX)
    }

    /// Charges one infeasible-deadline admission rejection to a class.
    pub fn reject_infeasible(&mut self, priority: Priority) {
        self.class_mut(priority).infeasible += 1;
    }

    /// Removes every queued job whose deadline has passed, returning each
    /// with how late it already is. Expired jobs are charged to their class
    /// and free their queue slots; they are never dispatched. Free when no
    /// queued job carries a deadline — the common case on the dispatch hot
    /// path.
    pub fn take_expired(&mut self, now: Duration) -> Vec<(WfqJob<T>, Duration)> {
        if self.deadlined == 0 {
            return Vec::new();
        }
        let mut expired = Vec::new();
        for class in &mut self.classes {
            let mut i = 0;
            while i < class.queue.len() {
                match class.queue[i].deadline {
                    Some(deadline) if deadline <= now => {
                        let job = class.queue.remove(i).expect("index in bounds");
                        class.expired += 1;
                        class.queued_cost -= job.cost as u128;
                        expired.push((job, now - deadline));
                    }
                    _ => i += 1,
                }
            }
        }
        self.queued -= expired.len();
        self.deadlined -= expired.len();
        expired.sort_by_key(|(job, _)| job.index);
        expired
    }

    /// Dispatches the queued job with the smallest virtual finish tag whose
    /// class still has rate-limit budget; when every queued class is
    /// throttled, the smallest tag runs anyway (work-conserving). Ties break
    /// by submission index.
    pub fn pop(&mut self) -> Option<WfqJob<T>> {
        if self.queued == 0 {
            return None;
        }
        let dispatches = self.dispatches;
        let mut best_allowed: Option<(u128, u64, usize)> = None;
        let mut best_any: Option<(u128, u64, usize)> = None;
        let mut throttled: Vec<usize> = Vec::new();
        for (i, class) in self.classes.iter().enumerate() {
            let Some(head) = class.queue.front() else {
                continue;
            };
            let key = (head.finish, head.index, i);
            if best_any.is_none_or(|b| key < b) {
                best_any = Some(key);
            }
            if class.throttled_at(dispatches) {
                throttled.push(i);
            } else if best_allowed.is_none_or(|b| key < b) {
                best_allowed = Some(key);
            }
        }
        let (_, _, i) = match best_allowed {
            Some(key) => {
                for t in throttled {
                    self.classes[t].throttled += 1;
                }
                key
            }
            // Every queued class is over budget: stay work-conserving and
            // dispatch the smallest tag anyway.
            None => best_any?,
        };
        let job = self.classes[i].queue.pop_front().expect("head exists");
        debug_assert_eq!(self.classes[i].priority, job.class);
        self.queued -= 1;
        if job.deadline.is_some() {
            self.deadlined -= 1;
        }
        self.virtual_time = self.virtual_time.max(job.finish);
        self.dispatches += 1;
        let consumed_slot = self.dispatches - 1;
        let class = &mut self.classes[i];
        class.dispatched += 1;
        class.queued_cost -= job.cost as u128;
        if let Some(rate) = class.rate {
            let window = consumed_slot / rate.window as u64;
            if class.window_index != window {
                class.window_index = window;
                class.window_used = 0;
            }
            class.window_used += 1;
        }
        Some(job)
    }

    /// Per-class counters in deterministic class order.
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            policy: "wfq".to_string(),
            classes: self.classes.iter().map(|c| c.stats()).collect(),
        }
    }

    /// Publishes the queue's state into a telemetry registry: global gauges
    /// (`wfq.queued`, `wfq.backlog_rounds`) plus one gauge per class counter
    /// (`wfq.<class>.submitted` / `.dispatched` / `.expired` / `.throttled`
    /// / `.infeasible`). The queue itself is the source of truth, so these
    /// are point-in-time gauges rather than live counters; read-only, never
    /// consulted by scheduling.
    pub fn publish_metrics(&self, registry: &crate::telemetry::MetricsRegistry) {
        registry.gauge("wfq.queued").set(self.queued as u64);
        registry
            .gauge("wfq.backlog_rounds")
            .set(self.backlog_rounds());
        for class in &self.classes {
            let stats = class.stats();
            let label = &stats.class;
            registry
                .gauge(&format!("wfq.{label}.submitted"))
                .set(stats.submitted);
            registry
                .gauge(&format!("wfq.{label}.dispatched"))
                .set(stats.dispatched);
            registry
                .gauge(&format!("wfq.{label}.expired"))
                .set(stats.expired);
            registry
                .gauge(&format!("wfq.{label}.throttled"))
                .set(stats.throttled);
            registry
                .gauge(&format!("wfq.{label}.infeasible"))
                .set(stats.infeasible);
        }
    }
}

impl<T> std::fmt::Debug for WfqQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WfqQueue")
            .field("classes", &self.classes.len())
            .field("queued", &self.queued)
            .field("next_index", &self.next_index)
            .field("dispatches", &self.dispatches)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(classes: &[(Priority, u32, Option<RateLimit>)]) -> Vec<(Priority, ClassConfig)> {
        classes
            .iter()
            .map(|(p, w, r)| {
                (
                    *p,
                    ClassConfig {
                        weight: *w,
                        rate: *r,
                    },
                )
            })
            .collect()
    }

    fn push(s: &mut WfqQueue<()>, priority: Priority) -> u64 {
        s.push(priority, (), None, 1)
    }

    #[test]
    fn labels_round_trip_through_parse() {
        for p in [
            Priority::Interactive,
            Priority::Bulk,
            Priority::custom(0),
            Priority::custom(255),
        ] {
            assert_eq!(Priority::parse_label(&p.label()), Some(p));
        }
        assert_eq!(Priority::parse_label("custom-256"), None);
        assert_eq!(Priority::parse_label("background"), None);
    }

    #[test]
    fn default_weights_schedule_interactive_ahead_of_bulk_fifo_within_class() {
        // With the default 4:1 weights a small mixed burst still dispatches
        // every interactive job first (their finish tags are 4x denser), and
        // FIFO order holds within each class.
        let mut s = WfqQueue::new(&config(&[
            (Priority::Interactive, 4, None),
            (Priority::Bulk, 1, None),
        ]));
        push(&mut s, Priority::Bulk);
        push(&mut s, Priority::Interactive);
        push(&mut s, Priority::Bulk);
        push(&mut s, Priority::Interactive);
        assert_eq!(s.queued(), 4);
        let order: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|j| j.index).collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
        assert_eq!(s.queued(), 0);
        assert!(s.pop().is_none());
    }

    #[test]
    fn wfq_never_starves_bulk_under_sustained_interactive_load() {
        // The regression the WFQ redesign fixes: under the old strict
        // two-class priority queue, one bulk job behind a sustained
        // interactive flood (one new interactive submission per dispatch)
        // was NEVER dispatched — interactive always popped first. Under WFQ
        // at weight 1:1 the bulk job's finish tag is passed by the second
        // interactive arrival, so it dispatches within a small, bounded
        // number of dispatches.
        let mut s = WfqQueue::new(&config(&[
            (Priority::Interactive, 1, None),
            (Priority::Bulk, 1, None),
        ]));
        push(&mut s, Priority::Interactive);
        let bulk_index = push(&mut s, Priority::Bulk);
        let mut bulk_dispatched_at = None;
        for step in 0..16 {
            let job = s.pop().expect("work is always queued");
            if job.index == bulk_index {
                bulk_dispatched_at = Some(step);
                break;
            }
            // Sustained interactive load: a fresh submission per dispatch.
            push(&mut s, Priority::Interactive);
        }
        let step = bulk_dispatched_at
            .expect("WFQ must dispatch the bulk job despite the interactive flood");
        assert!(
            step <= 3,
            "bulk work must complete within a bounded number of dispatches, took {step}"
        );
        // And the flood is still being served around it.
        assert!(s.classes[0].dispatched >= 1);
    }

    #[test]
    fn weights_apportion_dispatches_proportionally() {
        // Weight 3:1 over a long backlog: every window of 4 dispatches
        // carries 3 interactive and 1 bulk job.
        let mut s = WfqQueue::new(&config(&[
            (Priority::Interactive, 3, None),
            (Priority::Bulk, 1, None),
        ]));
        for _ in 0..12 {
            push(&mut s, Priority::Interactive);
        }
        for _ in 0..4 {
            push(&mut s, Priority::Bulk);
        }
        let order: Vec<Priority> = std::iter::from_fn(|| s.pop()).map(|j| j.class).collect();
        for (w, chunk) in order.chunks(4).take(3).enumerate() {
            let bulk = chunk.iter().filter(|p| **p == Priority::Bulk).count();
            assert_eq!(
                bulk, 1,
                "window {w} must carry one bulk dispatch: {order:?}"
            );
        }
    }

    #[test]
    fn rate_limited_class_stays_within_its_token_budget_while_contended() {
        // Bulk limited to 1 dispatch per window of 4; equal weights so only
        // the limiter shapes the schedule. While interactive work competes,
        // every window of 4 dispatches carries at most one bulk job.
        let mut s = WfqQueue::new(&config(&[
            (Priority::Interactive, 1, None),
            (Priority::Bulk, 1, Some(RateLimit::new(1, 4))),
        ]));
        for _ in 0..10 {
            push(&mut s, Priority::Bulk);
        }
        for _ in 0..10 {
            push(&mut s, Priority::Interactive);
        }
        let order: Vec<Priority> = std::iter::from_fn(|| s.pop()).map(|j| j.class).collect();
        assert_eq!(order.len(), 20, "the limiter never drops work");
        // Interactive lasts through the first three windows; within them the
        // budget must hold exactly.
        for (w, chunk) in order.chunks(4).take(3).enumerate() {
            let bulk = chunk.iter().filter(|p| **p == Priority::Bulk).count();
            assert!(
                bulk <= 1,
                "window {w} exceeded the bulk token budget: {order:?}"
            );
        }
        // Once only throttled work remains the scheduler stays
        // work-conserving: everything still drains.
        assert!(order[14..].iter().all(|p| *p == Priority::Bulk));
        let stats = s.stats();
        let bulk = stats.class(Priority::Bulk).unwrap();
        assert_eq!(bulk.dispatched, 10);
        assert!(
            bulk.throttled > 0,
            "the limiter must have bitten: {stats:?}"
        );
        assert_eq!(bulk.rate_limit, Some(RateLimit::new(1, 4)));
        assert_eq!(stats.policy, "wfq");
    }

    #[test]
    fn a_zero_window_rate_limit_is_clamped_not_a_division_panic() {
        // The pub fields (and Deserialize) can bypass RateLimit::new, so the
        // scheduler must clamp again: a literal zero window behaves as 1/1
        // instead of panicking on the window arithmetic.
        let mut s = WfqQueue::new(&config(&[
            (Priority::Interactive, 1, None),
            (
                Priority::Bulk,
                1,
                Some(RateLimit {
                    tokens: 0,
                    window: 0,
                }),
            ),
        ]));
        push(&mut s, Priority::Bulk);
        push(&mut s, Priority::Interactive);
        push(&mut s, Priority::Bulk);
        let order: Vec<Priority> = std::iter::from_fn(|| s.pop()).map(|j| j.class).collect();
        assert_eq!(order.len(), 3, "everything drains without panicking");
        assert_eq!(
            s.stats().class(Priority::Bulk).unwrap().rate_limit,
            Some(RateLimit::new(1, 1)),
            "the clamped limit is what the report surfaces"
        );
    }

    #[test]
    fn the_expiry_sweep_is_free_without_deadlines() {
        let mut s = WfqQueue::new(&config(&[
            (Priority::Interactive, 4, None),
            (Priority::Bulk, 1, None),
        ]));
        push(&mut s, Priority::Bulk);
        assert_eq!(s.deadlined, 0);
        assert!(s.take_expired(Duration::from_secs(1)).is_empty());
        // A dispatched deadline job leaves the deadline count with it.
        s.push(Priority::Interactive, (), Some(Duration::from_secs(600)), 1);
        assert_eq!(s.deadlined, 1);
        while s.pop().is_some() {}
        assert_eq!(s.deadlined, 0);
    }

    #[test]
    fn expired_jobs_are_swept_before_dispatch_and_charged_to_their_class() {
        let mut s = WfqQueue::new(&config(&[
            (Priority::Interactive, 4, None),
            (Priority::Bulk, 1, None),
        ]));
        let now = Duration::from_secs(5);
        s.push(Priority::Bulk, (), Some(now), 1);
        push(&mut s, Priority::Interactive);
        // The sweep a worker runs before every dispatch decision.
        let expired = s.take_expired(now + Duration::from_millis(1));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].0.index, 0);
        assert_eq!(expired[0].1, Duration::from_millis(1));
        assert_eq!(s.queued(), 1, "expired jobs free their queue slots");
        // The survivor dispatches normally; counters split expiry from
        // dispatch.
        assert_eq!(s.pop().unwrap().index, 1);
        let stats = s.stats();
        assert_eq!(stats.class(Priority::Bulk).unwrap().expired, 1);
        assert_eq!(stats.class(Priority::Bulk).unwrap().dispatched, 0);
        assert_eq!(stats.class(Priority::Interactive).unwrap().dispatched, 1);
        assert_eq!(stats.expired(), 1);
    }

    #[test]
    fn custom_classes_join_the_schedule_with_default_weight() {
        let mut s = WfqQueue::new(&config(&[
            (Priority::Interactive, 4, None),
            (Priority::Bulk, 1, None),
        ]));
        push(&mut s, Priority::custom(3));
        push(&mut s, Priority::Interactive);
        let order: Vec<Priority> = std::iter::from_fn(|| s.pop()).map(|j| j.class).collect();
        // Weight 4 interactive outruns the default-weight-1 custom class.
        assert_eq!(order, vec![Priority::Interactive, Priority::custom(3)]);
        let stats = s.stats();
        assert_eq!(stats.classes.len(), 3);
        assert_eq!(stats.classes[2].class, "custom-3");
        assert_eq!(stats.classes[2].weight, 1);
        assert_eq!(stats.class(Priority::custom(3)).unwrap().dispatched, 1);
    }

    #[test]
    fn cost_charged_tags_apportion_dispatches_by_work_not_job_count() {
        // Equal weights, but class A's jobs are three times the estimated
        // work of class B's: fair queueing over *work* means every window
        // of 4 dispatches carries one A job (3 units) and three B jobs
        // (3 units) — unit-job WFQ would alternate 2/2 instead.
        let mut s = WfqQueue::new(&config(&[
            (Priority::Interactive, 1, None),
            (Priority::Bulk, 1, None),
        ]));
        for _ in 0..4 {
            s.push(Priority::Interactive, (), None, 3);
        }
        for _ in 0..12 {
            s.push(Priority::Bulk, (), None, 1);
        }
        let order: Vec<Priority> = std::iter::from_fn(|| s.pop()).map(|j| j.class).collect();
        for (w, chunk) in order.chunks(4).take(3).enumerate() {
            let heavy = chunk
                .iter()
                .filter(|p| **p == Priority::Interactive)
                .count();
            assert_eq!(
                heavy, 1,
                "window {w} must carry exactly one heavy dispatch: {order:?}"
            );
        }
    }

    #[test]
    fn zero_cost_tags_degrade_to_global_fifo_without_starvation() {
        // An adversarial (or merely uncalibrated-to-zero) model charges
        // nothing: tags never advance, the (finish, index) tie-break takes
        // over, and everything still drains in submission order.
        let mut s = WfqQueue::new(&config(&[
            (Priority::Interactive, 4, None),
            (Priority::Bulk, 1, None),
        ]));
        for i in 0..6 {
            let priority = if i % 2 == 0 {
                Priority::Bulk
            } else {
                Priority::Interactive
            };
            s.push(priority, (), None, 0);
        }
        let order: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|j| j.index).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn expected_wait_scales_with_backlog_weight_share_and_workers() {
        let mut s = WfqQueue::new(&config(&[
            (Priority::Interactive, 3, None),
            (Priority::Bulk, 1, None),
        ]));
        // An idle queue predicts zero wait for every class.
        assert_eq!(s.expected_wait_rounds(Priority::Bulk, 1), 0);
        assert_eq!(s.expected_wait_rounds(Priority::Interactive, 4), 0);
        // 100 rounds queued in each class; active weight is 3 + 1 = 4.
        s.push(Priority::Interactive, (), None, 100);
        s.push(Priority::Bulk, (), None, 100);
        // Bulk serves its backlog at a 1/4 share: 400 scaled rounds, capped
        // at the 200-round total backlog (work conservation), one worker.
        assert_eq!(s.expected_wait_rounds(Priority::Bulk, 1), 200);
        // Interactive's 3/4 share: 100 × 4 / 3 = 133 rounds.
        assert_eq!(s.expected_wait_rounds(Priority::Interactive, 1), 133);
        // More workers shrink the wait proportionally.
        assert_eq!(s.expected_wait_rounds(Priority::Bulk, 4), 50);
        // Infeasible rejections are charged to their class.
        s.reject_infeasible(Priority::Bulk);
        assert_eq!(s.stats().class(Priority::Bulk).unwrap().infeasible, 1);
        assert_eq!(s.stats().infeasible(), 1);
    }
}
