//! A bounded, sharded, LRU cache of prepared Laplacian solvers.
//!
//! Both serving engines ([`crate::batch::BatchEngine`] and
//! [`crate::stream::StreamEngine`]) route every Laplacian request through one
//! of these caches, keyed by the deterministic graph fingerprint of
//! [`bcc_graph::fingerprint`]: repeated solves on the same topology pay the
//! sparsifier preprocessing of Theorem 1.3 once, no matter which worker (or
//! which batch / stream submission) serves them.
//!
//! The cache is **sharded** for concurrency (fingerprints are spread over
//! independently locked shards) and **bounded**: when a capacity is
//! configured, inserting beyond it evicts the least-recently-used entry
//! across all shards, so long-lived serving processes cannot grow without
//! limit. Eviction never changes results — a prepared solver is a pure
//! function of `(master seed, graph)`, so a rebuilt entry is bit-identical to
//! the evicted one; the only observable effect is the re-paid preprocessing,
//! surfaced through the [`CacheStats`] counters.
//!
//! Concurrent misses on the same fingerprint are collapsed: one worker
//! builds, the others wait on the build and then share the entry, so a
//! fingerprint is preprocessed at most once per miss-window regardless of the
//! worker count.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use bcc_graph::GraphFingerprint;
use serde::{Deserialize, Serialize};

use crate::error::Error;
use crate::report::RoundReport;
use crate::session::PreparedLaplacian;

/// A cache entry: the prepared handle (or the typed preprocessing error,
/// which is served to every request on that graph) plus its preprocessing
/// cost snapshot.
pub(crate) type CacheEntry = (Result<PreparedLaplacian, Error>, RoundReport);

/// Serializable counters of a Laplacian cache, surfaced in
/// [`crate::batch::BatchReport`] and [`crate::stream::StreamReport`].
///
/// `hits` counts lookups served from an existing entry (including lookups
/// that waited for a concurrent build of the same fingerprint), `misses`
/// counts actual preprocessing builds, and `evictions` counts entries
/// dropped to enforce the capacity bound. The counters accumulate over the
/// owning engine's lifetime; under capacity pressure with concurrent workers
/// they may depend on scheduling (an evicted entry is rebuilt by whichever
/// request needs it next), while results never do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups served from a cached entry.
    pub hits: u64,
    /// Lookups that built (and cached) a new entry.
    pub misses: u64,
    /// Entries evicted to enforce the capacity bound.
    pub evictions: u64,
    /// Entries currently cached (including cached preprocessing failures).
    pub entries: u64,
    /// The configured capacity bound; `None` means unbounded.
    pub capacity: Option<u64>,
}

/// One cached slot: the entry plus its last-use tick for LRU ordering.
struct Slot {
    entry: CacheEntry,
    tick: u64,
}

/// The sharded, bounded, fingerprint-keyed cache both engines share.
pub(crate) struct LaplacianCache {
    shards: Vec<Mutex<HashMap<u128, Slot>>>,
    capacity: Option<usize>,
    /// Monotonic logical clock; every lookup/insert stamps its slot.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Fingerprints currently being preprocessed, so concurrent misses on the
    /// same graph collapse into one build.
    building: Mutex<HashSet<u128>>,
    built: Condvar,
}

impl std::fmt::Debug for LaplacianCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaplacianCache")
            .field("shards", &self.shards.len())
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

impl LaplacianCache {
    /// An empty cache with `shards` shards and an optional capacity bound
    /// (total entries across all shards; `None` = unbounded).
    pub(crate) fn new(shards: usize, capacity: Option<usize>) -> Self {
        LaplacianCache {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            capacity,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            building: Mutex::new(HashSet::new()),
            built: Condvar::new(),
        }
    }

    fn shard(&self, fp: GraphFingerprint) -> &Mutex<HashMap<u128, Slot>> {
        &self.shards[fp.shard(self.shards.len())]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Number of cached entries across all shards.
    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard").len())
            .sum()
    }

    /// The configured capacity bound.
    pub(crate) fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Snapshot of the hit/miss/eviction counters.
    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len() as u64,
            capacity: self.capacity.map(|c| c as u64),
        }
    }

    /// Whether an entry for this fingerprint is currently cached (no counter
    /// or recency effect).
    pub(crate) fn contains(&self, fp: GraphFingerprint) -> bool {
        self.shard(fp)
            .lock()
            .expect("shard")
            .contains_key(&fp.as_u128())
    }

    /// Drops every cached entry (counters are kept).
    pub(crate) fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("shard").clear();
        }
    }

    /// Looks an entry up, bumping its recency and the hit counter on success.
    fn lookup(&self, fp: GraphFingerprint) -> Option<CacheEntry> {
        let mut shard = self.shard(fp).lock().expect("shard");
        let slot = shard.get_mut(&fp.as_u128())?;
        slot.tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let entry = slot.entry.clone();
        drop(shard);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(entry)
    }

    /// Returns the cached entry for `fp`, building (and caching) it with
    /// `build` on a miss. The boolean is `true` when this call built the
    /// entry. Concurrent callers on the same fingerprint wait for the one
    /// build instead of duplicating it; callers on other fingerprints are
    /// never blocked.
    pub(crate) fn get_or_build(
        &self,
        fp: GraphFingerprint,
        build: impl FnOnce() -> CacheEntry,
    ) -> (CacheEntry, bool) {
        let key = fp.as_u128();
        loop {
            if let Some(entry) = self.lookup(fp) {
                return (entry, false);
            }
            let mut building = self.building.lock().expect("building set");
            if building.contains(&key) {
                // Another worker is preprocessing this graph: wait for it,
                // then re-check the cache (the entry may also have been
                // evicted again in the meantime — the loop handles both).
                let guard = self.built.wait(building).expect("building set");
                drop(guard);
                continue;
            }
            building.insert(key);
            drop(building);
            // Re-check: a build may have completed (insert + claim release)
            // between our failed lookup and claiming the build.
            if let Some(entry) = self.lookup(fp) {
                self.release_build_claim(key);
                return (entry, false);
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
            let entry = build();
            self.insert(fp, entry.clone());
            self.release_build_claim(key);
            return (entry, true);
        }
    }

    fn release_build_claim(&self, key: u128) {
        self.building.lock().expect("building set").remove(&key);
        self.built.notify_all();
    }

    /// Inserts an entry, then evicts least-recently-used entries until the
    /// capacity bound holds again.
    fn insert(&self, fp: GraphFingerprint, entry: CacheEntry) {
        let tick = self.tick();
        self.shard(fp)
            .lock()
            .expect("shard")
            .insert(fp.as_u128(), Slot { entry, tick });
        self.enforce_capacity();
    }

    /// Evicts globally-least-recently-used entries while the cache exceeds
    /// its capacity. Shards are locked one at a time, so this never deadlocks
    /// with concurrent lookups; a concurrent eviction of the same victim just
    /// re-checks the size and converges.
    ///
    /// Each eviction scans every shard for the globally-oldest tick — O(n)
    /// in the entry count, which the capacity bounds. That favours exact
    /// global LRU and simplicity over per-insert throughput; a per-shard
    /// bound or an ordered tick index would trade accuracy or memory for
    /// speed if bounded caches ever grow past a few hundred entries (each of
    /// which holds a full prepared solver, so in practice they do not).
    fn enforce_capacity(&self) {
        let Some(capacity) = self.capacity else {
            return;
        };
        while self.len() > capacity {
            let mut victim: Option<(usize, u128, u64)> = None;
            for (i, shard) in self.shards.iter().enumerate() {
                let shard = shard.lock().expect("shard");
                for (key, slot) in shard.iter() {
                    if victim.is_none_or(|(_, _, tick)| slot.tick < tick) {
                        victim = Some((i, *key, slot.tick));
                    }
                }
            }
            let Some((i, key, _)) = victim else {
                break;
            };
            if self.shards[i].lock().expect("shard").remove(&key).is_some() {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use bcc_graph::{fingerprint, generators};

    fn entry_for(seed: u64, graph: &bcc_graph::Graph) -> CacheEntry {
        let session = Session::builder().seed(seed).build();
        match session.laplacian(graph).preprocess() {
            Ok(prepared) => {
                let report = prepared.preprocessing_report().clone();
                (Ok(prepared), report)
            }
            Err(e) => (
                Err(e),
                RoundReport {
                    total_rounds: 0,
                    total_bits: 0,
                    total_operations: 0,
                    breakdown: Vec::new(),
                },
            ),
        }
    }

    #[test]
    fn capacity_one_evicts_the_least_recently_used_entry() {
        let cache = LaplacianCache::new(16, Some(1));
        let a = generators::grid(3, 3);
        let b = generators::grid(2, 4);
        let fa = fingerprint(&a);
        let fb = fingerprint(&b);

        let (_, built) = cache.get_or_build(fa, || entry_for(1, &a));
        assert!(built);
        assert_eq!(cache.len(), 1);

        let (_, built) = cache.get_or_build(fb, || entry_for(1, &b));
        assert!(built, "second graph is a miss");
        assert_eq!(cache.len(), 1, "capacity bound holds");
        assert!(cache.contains(fb));
        assert!(!cache.contains(fa), "the older entry was evicted");

        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.capacity, Some(1));

        // Re-requesting the evicted graph rebuilds it (a pure function of the
        // seed and graph, so the rebuilt entry is identical) and evicts the
        // other one.
        let (rebuilt, built) = cache.get_or_build(fa, || entry_for(1, &a));
        assert!(built);
        let (original, _) = cache.get_or_build(fa, || entry_for(1, &a));
        assert_eq!(rebuilt.1, original.1);
        assert!(!cache.contains(fb));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn unbounded_cache_counts_hits_and_never_evicts() {
        let cache = LaplacianCache::new(4, None);
        let g = generators::grid(3, 3);
        let fp = fingerprint(&g);
        let _ = cache.get_or_build(fp, || entry_for(1, &g));
        for _ in 0..3 {
            let (_, built) = cache.get_or_build(fp, || entry_for(1, &g));
            assert!(!built);
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.capacity, None);
        cache.clear();
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn lru_order_follows_recency_of_use_not_insertion() {
        let cache = LaplacianCache::new(8, Some(2));
        let a = generators::grid(3, 3);
        let b = generators::grid(2, 4);
        let c = generators::grid(2, 5);
        let (fa, fb, fc) = (fingerprint(&a), fingerprint(&b), fingerprint(&c));
        let _ = cache.get_or_build(fa, || entry_for(1, &a));
        let _ = cache.get_or_build(fb, || entry_for(1, &b));
        // Touch `a` so `b` becomes the LRU entry.
        let _ = cache.get_or_build(fa, || entry_for(1, &a));
        let _ = cache.get_or_build(fc, || entry_for(1, &c));
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(fa));
        assert!(cache.contains(fc));
        assert!(!cache.contains(fb), "the least recently used entry went");
    }
}
