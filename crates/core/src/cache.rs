//! A bounded, sharded cache of prepared Laplacian solvers with selectable
//! eviction policies.
//!
//! Both serving engines ([`crate::batch::BatchEngine`] and
//! [`crate::stream::StreamEngine`]) route every Laplacian request through one
//! of these caches, keyed by the deterministic graph fingerprint of
//! [`bcc_graph::fingerprint()`]: repeated solves on the same topology pay the
//! sparsifier preprocessing of Theorem 1.3 once, no matter which worker (or
//! which batch / stream submission) serves them.
//!
//! The cache is **sharded** for concurrency (fingerprints are spread over
//! independently locked shards) and **bounded**: when a capacity is
//! configured, inserting beyond it evicts entries across all shards per the
//! configured [`EvictionPolicy`], so long-lived serving processes cannot
//! grow without limit:
//!
//! * [`EvictionPolicy::Lru`] (the default) evicts the globally
//!   least-recently-used entry — the right choice when request recency
//!   predicts reuse.
//! * [`EvictionPolicy::CostAware`] evicts the entry with the lowest
//!   *retention score* — `(1 + hits since insertion) × (1 + estimated
//!   rebuild rounds)`, where the rebuild estimate comes from the engine's
//!   shared [`CostModel`] ([`crate::cost::CostKind::LaplacianPreprocess`] at
//!   the entry's graph dimensions, calibrated online by the builds the
//!   cache itself observes) — so a rarely-hit, cheap-to-rebuild entry goes
//!   before an expensive, hot preprocessing even if the latter was used
//!   less recently. Ties break toward the least recently used. This is the
//!   policy to pick when topologies differ wildly in preprocessing cost
//!   (recomputation-heavy deadline-sensitive serving): the evicted rounds,
//!   not the evicted entry count, are what the next miss re-pays.
//!
//! Eviction never changes results — a prepared solver is a pure function of
//! `(master seed, graph)`, so a rebuilt entry is bit-identical to the
//! evicted one; the only observable effect is the re-paid preprocessing,
//! surfaced through the [`CacheStats`] counters (which also carry the
//! configured policy and per-policy eviction counts).
//!
//! Concurrent misses on the same fingerprint are collapsed: one worker
//! builds, the others wait on the build and then share the entry, so a
//! fingerprint is preprocessed at most once per miss-window regardless of
//! the worker count. The waiters count as **hits**, not misses —
//! [`CacheStats::misses`] counts completed preprocessing builds only — and
//! the build claim is released even if the build panics, so waiting workers
//! fail over to building instead of hanging.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use bcc_graph::GraphFingerprint;
use serde::{Deserialize, Serialize};

use crate::cost::{CostDims, CostKind, CostModel};
use crate::error::Error;
use crate::report::RoundReport;
use crate::session::PreparedLaplacian;
use crate::telemetry::{Counter, MetricsRegistry, TelemetrySink};

/// A cache entry: the prepared handle (or the typed preprocessing error,
/// which is served to every request on that graph) plus its preprocessing
/// cost snapshot.
pub(crate) type CacheEntry = (Result<PreparedLaplacian, Error>, RoundReport);

/// Which entry a bounded [`crate::batch::BatchEngine`] /
/// [`crate::stream::StreamEngine`] cache evicts when it exceeds its
/// capacity. Selected on the engine builders
/// ([`crate::batch::BatchEngineBuilder::eviction_policy`],
/// [`crate::stream::StreamEngineBuilder::eviction_policy`]); the policy
/// only affects *which* preprocessing is re-paid later, never any result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Evict the globally least-recently-used entry (the default).
    #[default]
    Lru,
    /// Evict the entry with the lowest rebuild-cost × recent-hit retention
    /// score, so hot or expensive preprocessings outlive cold, cheap ones.
    /// Rebuild costs are the shared [`CostModel`]'s calibrated estimates at
    /// the entry's graph dimensions.
    CostAware,
}

impl EvictionPolicy {
    /// The policy name surfaced in [`CacheStats::policy`]: `"lru"` or
    /// `"cost-aware"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::CostAware => "cost-aware",
        }
    }
}

impl std::fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Serializes as the policy name string ([`EvictionPolicy::as_str`]).
impl Serialize for EvictionPolicy {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.as_str().to_string())
    }
}

/// Deserializes from the policy name: `"lru"` or `"cost-aware"`.
impl Deserialize for EvictionPolicy {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        match value {
            serde::Value::String(name) => match name.as_str() {
                "lru" => Ok(EvictionPolicy::Lru),
                "cost-aware" => Ok(EvictionPolicy::CostAware),
                other => Err(serde::Error::custom(format!(
                    "unknown eviction policy `{other}` (expected `lru` or `cost-aware`)"
                ))),
            },
            _ => Err(serde::Error::custom("expected an eviction-policy string")),
        }
    }
}

/// Serializable counters of a Laplacian cache, surfaced in
/// [`crate::batch::BatchReport`] and [`crate::stream::StreamReport`].
///
/// `hits` counts lookups served from an existing entry (including lookups
/// that waited for a concurrent build of the same fingerprint — collapsed
/// waiters are hits, never misses), `misses` counts completed preprocessing
/// builds, and `evictions` counts entries dropped to enforce the capacity
/// bound (attributed per policy in `lru_evictions` / `cost_evictions`). The
/// counters accumulate over the owning engine's lifetime; under capacity
/// pressure with concurrent workers they may depend on scheduling (an
/// evicted entry is rebuilt by whichever request needs it next), while
/// results never do.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups served from a cached entry.
    pub hits: u64,
    /// Lookups that built (and cached) a new entry.
    pub misses: u64,
    /// Entries evicted to enforce the capacity bound (all policies).
    pub evictions: u64,
    /// Evictions decided by [`EvictionPolicy::Lru`].
    pub lru_evictions: u64,
    /// Evictions decided by [`EvictionPolicy::CostAware`].
    pub cost_evictions: u64,
    /// Entries currently cached (including cached preprocessing failures).
    pub entries: u64,
    /// The configured capacity bound; `None` means unbounded.
    pub capacity: Option<u64>,
    /// The configured eviction policy ([`EvictionPolicy::as_str`]).
    pub policy: String,
    /// Sum of the cost model's **prior** (uncalibrated) rebuild estimates
    /// over every completed preprocessing build — the predicted half of the
    /// cache's estimation error. The prior is a pure function of the graph
    /// dimensions, so with an unbounded cache this sum is
    /// scheduling-independent (the calibrated estimate is not: it depends
    /// on build completion order, so it steers eviction but is never
    /// reported).
    pub rebuild_predicted_rounds: u64,
    /// Sum of the actual preprocessing rounds over every completed build —
    /// the measured half of the cache's estimation error. Compare against
    /// [`CacheStats::rebuild_predicted_rounds`] to see how far the
    /// uncalibrated prior is from reality (the calibrated model closes
    /// exactly this gap).
    pub rebuild_actual_rounds: u64,
}

/// One cached slot: the entry plus the recency/usage bookkeeping the
/// eviction policies rank by.
struct Slot {
    entry: Arc<CacheEntry>,
    /// Graph dimensions of the cached topology — what the cost model prices
    /// a rebuild of this slot from.
    dims: CostDims,
    /// Last-use tick (LRU order; tie-break for cost-aware eviction).
    tick: u64,
    /// Hits served from this slot since it was inserted.
    uses: u64,
}

impl Slot {
    /// The cost-aware retention score: entries with many recent hits or an
    /// expensive *estimated* rebuild (per the shared [`CostModel`]) score
    /// high and survive, cold cheap entries score low and go first. `+1` on
    /// both factors keeps never-hit and zero-estimate entries comparable
    /// instead of collapsing to 0.
    fn retention_score(&self, cost: &CostModel) -> u128 {
        let rebuild = cost.estimate(CostKind::LaplacianPreprocess, self.dims);
        (1 + self.uses as u128) * (1 + rebuild as u128)
    }
}

/// Live telemetry counters mirroring the cache's own atomics into the
/// engine's metrics registry (`cache.*` names); absent when telemetry is
/// disabled, so the hot path pays one `Option` check.
struct CacheCounters {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
}

/// The sharded, bounded, fingerprint-keyed cache both engines share.
pub(crate) struct LaplacianCache {
    shards: Vec<Mutex<HashMap<u128, Slot>>>,
    capacity: Option<usize>,
    policy: EvictionPolicy,
    /// The engine's shared cost model: calibrated by every completed build,
    /// consulted by cost-aware eviction for rebuild estimates.
    cost: Arc<CostModel>,
    /// Monotonic logical clock; every lookup/insert stamps its slot.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    lru_evictions: AtomicU64,
    cost_evictions: AtomicU64,
    /// Sum of prior rebuild estimates over completed builds (see
    /// [`CacheStats::rebuild_predicted_rounds`]).
    rebuild_predicted: AtomicU64,
    /// Sum of actual preprocessing rounds over completed builds.
    rebuild_actual: AtomicU64,
    /// Fingerprints currently being preprocessed, so concurrent misses on the
    /// same graph collapse into one build.
    building: Mutex<HashSet<u128>>,
    built: Condvar,
    /// Live telemetry mirrors of the hit/miss/eviction counters.
    live: Option<CacheCounters>,
}

impl std::fmt::Debug for LaplacianCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaplacianCache")
            .field("shards", &self.shards.len())
            .field("capacity", &self.capacity)
            .field("policy", &self.policy)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Releases a fingerprint's build claim on drop, so a panicking build frees
/// its waiters (they fail over to building) instead of deadlocking them.
struct BuildClaim<'c> {
    cache: &'c LaplacianCache,
    key: u128,
}

impl Drop for BuildClaim<'_> {
    fn drop(&mut self) {
        self.cache
            .building
            .lock()
            .expect("building set")
            .remove(&self.key);
        self.cache.built.notify_all();
    }
}

impl LaplacianCache {
    /// An empty cache with `shards` shards, an optional capacity bound
    /// (total entries across all shards; `None` = unbounded), an eviction
    /// policy, the engine's shared cost model and the engine's telemetry
    /// sink (hit/miss/eviction counters mirror into `cache.*` metrics when
    /// the sink is enabled).
    pub(crate) fn new(
        shards: usize,
        capacity: Option<usize>,
        policy: EvictionPolicy,
        cost: Arc<CostModel>,
        telemetry: &TelemetrySink,
    ) -> Self {
        LaplacianCache {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            capacity,
            policy,
            cost,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            lru_evictions: AtomicU64::new(0),
            cost_evictions: AtomicU64::new(0),
            rebuild_predicted: AtomicU64::new(0),
            rebuild_actual: AtomicU64::new(0),
            building: Mutex::new(HashSet::new()),
            built: Condvar::new(),
            live: telemetry.registry().map(|registry| CacheCounters {
                hits: registry.counter("cache.hits"),
                misses: registry.counter("cache.misses"),
                evictions: registry.counter("cache.evictions"),
            }),
        }
    }

    /// Publishes the point-in-time gauges (entry count, capacity) into a
    /// metrics registry; the event counters stream in live instead.
    pub(crate) fn publish_metrics(&self, registry: &MetricsRegistry) {
        registry.gauge("cache.entries").set(self.len() as u64);
        if let Some(capacity) = self.capacity {
            registry.gauge("cache.capacity").set(capacity as u64);
        }
    }

    fn shard(&self, fp: GraphFingerprint) -> &Mutex<HashMap<u128, Slot>> {
        &self.shards[fp.shard(self.shards.len())]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Number of cached entries across all shards.
    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard").len())
            .sum()
    }

    /// The configured capacity bound.
    pub(crate) fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// The configured eviction policy.
    pub(crate) fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Snapshot of the hit/miss/eviction counters.
    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            lru_evictions: self.lru_evictions.load(Ordering::Relaxed),
            cost_evictions: self.cost_evictions.load(Ordering::Relaxed),
            entries: self.len() as u64,
            capacity: self.capacity.map(|c| c as u64),
            policy: self.policy.as_str().to_string(),
            rebuild_predicted_rounds: self.rebuild_predicted.load(Ordering::Relaxed),
            rebuild_actual_rounds: self.rebuild_actual.load(Ordering::Relaxed),
        }
    }

    /// Whether an entry for this fingerprint is currently cached (no counter
    /// or recency effect).
    pub(crate) fn contains(&self, fp: GraphFingerprint) -> bool {
        self.shard(fp)
            .lock()
            .expect("shard")
            .contains_key(&fp.as_u128())
    }

    /// Drops every cached entry (counters are kept).
    pub(crate) fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("shard").clear();
        }
    }

    /// Looks an entry up, bumping its recency, usage count and the hit
    /// counter on success.
    fn lookup(&self, fp: GraphFingerprint) -> Option<Arc<CacheEntry>> {
        let mut shard = self.shard(fp).lock().expect("shard");
        let slot = shard.get_mut(&fp.as_u128())?;
        slot.tick = self.tick();
        slot.uses += 1;
        let entry = Arc::clone(&slot.entry);
        drop(shard);
        self.hits.fetch_add(1, Ordering::Relaxed);
        if let Some(live) = &self.live {
            live.hits.incr();
        }
        Some(entry)
    }

    /// Returns the cached entry for `fp` (a topology of dimensions `dims`),
    /// building (and caching) it with `build` on a miss. The boolean is
    /// `true` when this call built the entry. Concurrent callers on the
    /// same fingerprint wait for the one build instead of duplicating it
    /// (and count as **hits** once it lands); callers on other fingerprints
    /// are never blocked.
    ///
    /// Every completed build feeds the shared cost model: its actual
    /// preprocessing rounds calibrate the
    /// [`CostKind::LaplacianPreprocess`] rate, and the predicted/actual
    /// sums of [`CacheStats`] record how far the uncalibrated prior was
    /// from reality.
    pub(crate) fn get_or_build(
        &self,
        fp: GraphFingerprint,
        dims: CostDims,
        build: impl FnOnce() -> CacheEntry,
    ) -> (Arc<CacheEntry>, bool) {
        let key = fp.as_u128();
        loop {
            if let Some(entry) = self.lookup(fp) {
                return (entry, false);
            }
            let mut building = self.building.lock().expect("building set");
            if building.contains(&key) {
                // Another worker is preprocessing this graph: wait for it,
                // then re-check the cache (the entry may also have been
                // evicted again in the meantime — the loop handles both).
                let guard = self.built.wait(building).expect("building set");
                drop(guard);
                continue;
            }
            building.insert(key);
            drop(building);
            // The claim is released when this guard drops — including on a
            // panicking `build`, so waiters wake up and take over instead
            // of blocking forever.
            let claim = BuildClaim { cache: self, key };
            // Re-check: a build may have completed (insert + claim release)
            // between our failed lookup and claiming the build.
            if let Some(entry) = self.lookup(fp) {
                return (entry, false);
            }
            let entry = Arc::new(build());
            // Count the miss (and feed the calibration loop) only for a
            // *completed* build, so an aborted build never skews the
            // hit/miss ratio or the model.
            self.misses.fetch_add(1, Ordering::Relaxed);
            if let Some(live) = &self.live {
                live.misses.incr();
            }
            self.rebuild_predicted.fetch_add(
                self.cost
                    .prior_estimate(CostKind::LaplacianPreprocess, dims),
                Ordering::Relaxed,
            );
            self.rebuild_actual
                .fetch_add(entry.1.total_rounds, Ordering::Relaxed);
            self.cost
                .observe(CostKind::LaplacianPreprocess, dims, entry.1.total_rounds);
            self.insert(fp, dims, Arc::clone(&entry));
            drop(claim);
            return (entry, true);
        }
    }

    /// Inserts an entry, then evicts per the configured policy until the
    /// capacity bound holds again.
    fn insert(&self, fp: GraphFingerprint, dims: CostDims, entry: Arc<CacheEntry>) {
        let tick = self.tick();
        self.shard(fp).lock().expect("shard").insert(
            fp.as_u128(),
            Slot {
                entry,
                dims,
                tick,
                uses: 0,
            },
        );
        self.enforce_capacity();
    }

    /// Evicts entries while the cache exceeds its capacity, choosing the
    /// victim per the configured [`EvictionPolicy`]. Shards are locked one
    /// at a time, so this never deadlocks with concurrent lookups; a
    /// concurrent eviction of the same victim just re-checks the size and
    /// converges.
    ///
    /// Each eviction scans every shard for the global victim — O(n) in the
    /// entry count, which the capacity bounds. That favours exact global
    /// victim selection and simplicity over per-insert throughput; a
    /// per-shard bound or an ordered index would trade accuracy or memory
    /// for speed if bounded caches ever grow past a few hundred entries
    /// (each of which holds a full prepared solver, so in practice they do
    /// not).
    fn enforce_capacity(&self) {
        let Some(capacity) = self.capacity else {
            return;
        };
        while self.len() > capacity {
            // Rank = (primary score, tick): strictly smaller loses. LRU
            // ranks by recency alone; cost-aware ranks by retention score
            // with recency as the tie-break.
            let rank = |slot: &Slot| -> (u128, u64) {
                match self.policy {
                    EvictionPolicy::Lru => (0, slot.tick),
                    EvictionPolicy::CostAware => (slot.retention_score(&self.cost), slot.tick),
                }
            };
            // The most recently stamped slot (normally the entry whose
            // insert triggered this pass) is exempt while alternatives
            // exist: without the exemption the cost-aware policy would
            // evict every fresh zero-hit entry right after building it.
            let mut newest: Option<(usize, u128, u64)> = None;
            let mut entries = 0usize;
            for (i, shard) in self.shards.iter().enumerate() {
                let shard = shard.lock().expect("shard");
                entries += shard.len();
                for (key, slot) in shard.iter() {
                    if newest.is_none_or(|(_, _, tick)| slot.tick > tick) {
                        newest = Some((i, *key, slot.tick));
                    }
                }
            }
            let exempt = (entries > 1).then_some(newest).flatten();
            let mut victim: Option<(usize, u128, (u128, u64))> = None;
            for (i, shard) in self.shards.iter().enumerate() {
                let shard = shard.lock().expect("shard");
                for (key, slot) in shard.iter() {
                    if exempt.is_some_and(|(ei, ek, _)| ei == i && ek == *key) {
                        continue;
                    }
                    let r = rank(slot);
                    if victim.is_none_or(|(_, _, best)| r < best) {
                        victim = Some((i, *key, r));
                    }
                }
            }
            let Some((i, key, _)) = victim else {
                break;
            };
            if self.shards[i].lock().expect("shard").remove(&key).is_some() {
                self.evictions.fetch_add(1, Ordering::Relaxed);
                if let Some(live) = &self.live {
                    live.evictions.incr();
                }
                match self.policy {
                    EvictionPolicy::Lru => self.lru_evictions.fetch_add(1, Ordering::Relaxed),
                    EvictionPolicy::CostAware => {
                        self.cost_evictions.fetch_add(1, Ordering::Relaxed)
                    }
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use bcc_graph::{fingerprint, generators};

    /// A test cache with a fresh default cost model.
    fn cache_with(
        shards: usize,
        capacity: Option<usize>,
        policy: EvictionPolicy,
    ) -> LaplacianCache {
        LaplacianCache::new(
            shards,
            capacity,
            policy,
            Arc::new(CostModel::new()),
            &TelemetrySink::disabled(),
        )
    }

    /// `get_or_build` with the dims derived from the graph, as the engines
    /// call it.
    fn get_or_build_for(
        cache: &LaplacianCache,
        graph: &bcc_graph::Graph,
        build: impl FnOnce() -> CacheEntry,
    ) -> (Arc<CacheEntry>, bool) {
        cache.get_or_build(fingerprint(graph), CostDims::of_graph(graph), build)
    }

    fn entry_for(seed: u64, graph: &bcc_graph::Graph) -> CacheEntry {
        let session = Session::builder().seed(seed).build();
        match session.laplacian(graph).preprocess() {
            Ok(prepared) => {
                let report = prepared.preprocessing_report().clone();
                (Ok(prepared), report)
            }
            Err(e) => (
                Err(e),
                RoundReport {
                    total_rounds: 0,
                    total_bits: 0,
                    total_operations: 0,
                    breakdown: Vec::new(),
                },
            ),
        }
    }

    #[test]
    fn capacity_one_evicts_the_least_recently_used_entry() {
        let cache = cache_with(16, Some(1), EvictionPolicy::Lru);
        let a = generators::grid(3, 3);
        let b = generators::grid(2, 4);
        let fa = fingerprint(&a);
        let fb = fingerprint(&b);

        let (_, built) = get_or_build_for(&cache, &a, || entry_for(1, &a));
        assert!(built);
        assert_eq!(cache.len(), 1);

        let (_, built) = get_or_build_for(&cache, &b, || entry_for(1, &b));
        assert!(built, "second graph is a miss");
        assert_eq!(cache.len(), 1, "capacity bound holds");
        assert!(cache.contains(fb));
        assert!(!cache.contains(fa), "the older entry was evicted");

        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.lru_evictions, 1);
        assert_eq!(stats.cost_evictions, 0);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.capacity, Some(1));
        assert_eq!(stats.policy, "lru");

        // Re-requesting the evicted graph rebuilds it (a pure function of the
        // seed and graph, so the rebuilt entry is identical) and evicts the
        // other one.
        let (rebuilt, built) = get_or_build_for(&cache, &a, || entry_for(1, &a));
        assert!(built);
        let (original, _) = get_or_build_for(&cache, &a, || entry_for(1, &a));
        assert_eq!(rebuilt.1, original.1);
        assert!(!cache.contains(fb));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn unbounded_cache_counts_hits_and_never_evicts() {
        let cache = cache_with(4, None, EvictionPolicy::Lru);
        let g = generators::grid(3, 3);
        let _fp = fingerprint(&g);
        let _ = get_or_build_for(&cache, &g, || entry_for(1, &g));
        for _ in 0..3 {
            let (_, built) = get_or_build_for(&cache, &g, || entry_for(1, &g));
            assert!(!built);
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.capacity, None);
        cache.clear();
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn lru_order_follows_recency_of_use_not_insertion() {
        let cache = cache_with(8, Some(2), EvictionPolicy::Lru);
        let a = generators::grid(3, 3);
        let b = generators::grid(2, 4);
        let c = generators::grid(2, 5);
        let (fa, fb, fc) = (fingerprint(&a), fingerprint(&b), fingerprint(&c));
        let _ = get_or_build_for(&cache, &a, || entry_for(1, &a));
        let _ = get_or_build_for(&cache, &b, || entry_for(1, &b));
        // Touch `a` so `b` becomes the LRU entry.
        let _ = get_or_build_for(&cache, &a, || entry_for(1, &a));
        let _ = get_or_build_for(&cache, &c, || entry_for(1, &c));
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(fa));
        assert!(cache.contains(fc));
        assert!(!cache.contains(fb), "the least recently used entry went");
    }

    #[test]
    fn cost_aware_eviction_keeps_the_hot_entry_where_lru_would_drop_it() {
        // `a` is inserted first and hit three times; `b` is newer but hit
        // only once. LRU is decided by raw recency; the cost-aware policy
        // by hits × rebuild cost.
        let a = generators::grid(3, 3);
        let b = generators::grid(2, 4);
        let c = generators::grid(2, 5);
        let (fa, fb, _fc) = (fingerprint(&a), fingerprint(&b), fingerprint(&c));
        let exercise = |cache: &LaplacianCache| {
            let _ = get_or_build_for(cache, &a, || entry_for(1, &a));
            for _ in 0..3 {
                let _ = get_or_build_for(cache, &a, || entry_for(1, &a));
            }
            let _ = get_or_build_for(cache, &b, || entry_for(1, &b));
            let _ = get_or_build_for(cache, &b, || entry_for(1, &b));
            // The insert that overflows capacity 2.
            let _ = get_or_build_for(cache, &c, || entry_for(1, &c));
        };

        let lru = cache_with(8, Some(2), EvictionPolicy::Lru);
        exercise(&lru);
        assert!(!lru.contains(fa), "LRU drops the older-touched entry");
        assert!(lru.contains(fb));
        assert_eq!(lru.stats().lru_evictions, 1);

        let cost = cache_with(8, Some(2), EvictionPolicy::CostAware);
        exercise(&cost);
        assert!(
            cost.contains(fa),
            "the thrice-hit entry outscores the once-hit one"
        );
        assert!(!cost.contains(fb));
        let stats = cost.stats();
        assert_eq!(stats.policy, "cost-aware");
        assert_eq!(stats.cost_evictions, 1);
        assert_eq!(stats.lru_evictions, 0);
    }

    #[test]
    fn cost_aware_eviction_prefers_dropping_cheap_rebuilds() {
        // Never-hit entries tie on the usage factor, so the retention score
        // reduces to rebuild cost: the cheaper preprocessing goes first,
        // whatever the insertion order says.
        let cheap = generators::grid(2, 2);
        let dear = generators::grid(5, 5);
        let next = generators::grid(2, 3);
        let (fc_, fd, _fn_) = (fingerprint(&cheap), fingerprint(&dear), fingerprint(&next));
        let cheap_entry = entry_for(1, &cheap);
        let dear_entry = entry_for(1, &dear);
        assert!(
            dear_entry.1.total_rounds > cheap_entry.1.total_rounds,
            "the larger grid must cost more to preprocess"
        );

        let cache = cache_with(8, Some(2), EvictionPolicy::CostAware);
        // Insert the expensive entry FIRST so pure LRU would evict it.
        let _ = get_or_build_for(&cache, &dear, || entry_for(1, &dear));
        let _ = get_or_build_for(&cache, &cheap, || entry_for(1, &cheap));
        let _ = get_or_build_for(&cache, &next, || entry_for(1, &next));
        assert!(
            cache.contains(fd),
            "the expensive preprocessing must survive"
        );
        assert!(!cache.contains(fc_), "the cheap rebuild is the victim");
    }

    #[test]
    fn collapsed_concurrent_misses_count_the_waiters_as_hits() {
        // Regression test for the collapsed-miss accounting: N workers race
        // on one uncached fingerprint; exactly one build happens, and the
        // N-1 collapsed waiters are hits, never misses.
        let cache = cache_with(4, None, EvictionPolicy::Lru);
        let g = generators::grid(4, 4);
        let _fp = fingerprint(&g);
        let threads = 6;
        let barrier = std::sync::Barrier::new(threads);
        let builds: Vec<bool> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        let (_, built) = get_or_build_for(&cache, &g, || {
                            // Widen the race window so the waiters really
                            // queue up behind this build.
                            std::thread::sleep(std::time::Duration::from_millis(50));
                            entry_for(1, &g)
                        });
                        built
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            builds.iter().filter(|b| **b).count(),
            1,
            "concurrent misses on one fingerprint collapse into one build"
        );
        let stats = cache.stats();
        assert_eq!(
            stats.misses, 1,
            "collapsed waiters must not count as misses"
        );
        assert_eq!(
            stats.hits,
            threads as u64 - 1,
            "every collapsed waiter counts as a hit"
        );
    }

    #[test]
    fn a_panicking_build_releases_its_claim_so_waiters_take_over() {
        // The claim is RAII-released: if a build dies, a waiter must be able
        // to build instead of blocking forever on the never-notified claim.
        let cache = cache_with(4, None, EvictionPolicy::Lru);
        let g = generators::grid(3, 3);
        let fp = fingerprint(&g);
        let first = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            get_or_build_for(&cache, &g, || panic!("injected preprocessing failure"))
        }));
        assert!(first.is_err(), "the injected panic propagates");
        let (_, built) = get_or_build_for(&cache, &g, || entry_for(1, &g));
        assert!(built, "the claim was released, so the retry builds");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "an aborted build is not a miss");
        assert!(cache.contains(fp));
    }
}
