//! Multi-tenant routing and accounting over the serving engines.
//!
//! A *tenant* is one externally authenticated client population sharing a
//! serving process — the unit of isolation the `bcc-served` daemon offers.
//! This module is deliberately thin, because the scheduler already supports
//! an open class set: a tenant **is** a [`Priority::custom`] WFQ class plus
//! accounting. Three pieces compose the isolation story:
//!
//! * **Routing.** A [`TenantDirectory`] maps tenant names to dense
//!   [`Priority::Custom`] class ids in registration order; every request a
//!   tenant submits is scheduled under its own class, so weighted fair
//!   queueing isolates its latency share from every other tenant's.
//! * **Shaping.** Each [`TenantConfig`] carries the class's WFQ weight and
//!   optional token-bucket [`RateLimit`];
//!   [`TenantDirectory::apply`] writes them into an [`EngineConfig`]'s
//!   class table, so a flooding tenant is throttled by the scheduler
//!   itself, not by per-connection bookkeeping.
//! * **Cache quotas.** The shared prepared-Laplacian cache is the one
//!   resource WFQ cannot isolate — a tenant churning through distinct
//!   topologies evicts every other tenant's warm entries.
//!   [`TenantAccounts`] bounds the *distinct prepared topologies* a tenant
//!   may charge; past the bound, new topologies are refused with the typed
//!   [`Error::QuotaExceeded`] **before** submission, so the flood never
//!   reaches the cache.
//!
//! Everything here is engine-agnostic bookkeeping: no scheduler or cache
//! code knows about tenants, and a single-tenant embedder never pays for
//! any of it.

use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

use bcc_graph::GraphFingerprint;
use serde::{Deserialize, Serialize};

use crate::config::{ConfigError, EngineConfig};
use crate::error::Error;
use crate::wfq::{Priority, RateLimit};

/// The version tag written into [`TenantDirectory::schema`].
pub const TENANT_DIRECTORY_SCHEMA: &str = "bcc-tenants/v1";

/// One tenant's isolation contract: its authenticated name, its WFQ share,
/// and the resource bounds the serving layer enforces on its behalf.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantConfig {
    /// The name presented at handshake. Tenant names are exact-match,
    /// case-sensitive identifiers.
    pub name: String,
    /// WFQ weight of the tenant's class (validated ≥ 1).
    pub weight: u32,
    /// Token-bucket rate limit of the tenant's class, if any.
    pub rate_limit: Option<RateLimit>,
    /// Bound on the distinct prepared topologies the tenant may keep warm
    /// in the shared cache; `None` = unmetered.
    pub cache_quota: Option<u64>,
}

impl TenantConfig {
    /// A tenant at the default weight (1) with no rate limit and no cache
    /// quota — the open-enrollment default of `bcc-served`.
    pub fn new(name: impl Into<String>) -> Self {
        TenantConfig {
            name: name.into(),
            weight: 1,
            rate_limit: None,
            cache_quota: None,
        }
    }
}

/// The serializable registry of tenants a serving process accepts, in
/// class-id order: the tenant at index `i` schedules under
/// [`Priority::Custom`]`(i)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantDirectory {
    /// Schema tag consumers dispatch on ([`TENANT_DIRECTORY_SCHEMA`]).
    pub schema: String,
    /// The registered tenants; index is the custom-class id.
    pub tenants: Vec<TenantConfig>,
}

impl Default for TenantDirectory {
    fn default() -> Self {
        TenantDirectory {
            schema: TENANT_DIRECTORY_SCHEMA.to_string(),
            tenants: Vec::new(),
        }
    }
}

impl TenantDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        TenantDirectory::default()
    }

    /// Registers a tenant, returning its scheduling class.
    ///
    /// # Errors
    ///
    /// [`ConfigError::DuplicateTenant`] when the name is taken,
    /// [`ConfigError::TooManyTenants`] past the 256 custom-class ids,
    /// [`ConfigError::ZeroTenantWeight`] on a zero WFQ weight.
    pub fn register(&mut self, tenant: TenantConfig) -> Result<Priority, ConfigError> {
        if self.tenants.iter().any(|t| t.name == tenant.name) {
            return Err(ConfigError::DuplicateTenant { name: tenant.name });
        }
        if self.tenants.len() >= 256 {
            return Err(ConfigError::TooManyTenants {
                count: self.tenants.len() + 1,
            });
        }
        if tenant.weight == 0 {
            return Err(ConfigError::ZeroTenantWeight { name: tenant.name });
        }
        let class = Priority::custom(self.tenants.len() as u8);
        self.tenants.push(tenant);
        Ok(class)
    }

    /// The scheduling class of a registered tenant.
    pub fn class_of(&self, name: &str) -> Option<Priority> {
        self.tenants
            .iter()
            .position(|t| t.name == name)
            .map(|i| Priority::custom(i as u8))
    }

    /// The configuration of a registered tenant.
    pub fn get(&self, name: &str) -> Option<&TenantConfig> {
        self.tenants.iter().find(|t| t.name == name)
    }

    /// Checks the directory's invariants — the same checks
    /// [`TenantDirectory::register`] enforces incrementally, for
    /// directories deserialized from disk.
    ///
    /// # Errors
    ///
    /// See [`TenantDirectory::register`]; additionally
    /// [`ConfigError::UnsupportedSchema`] on a schema-tag mismatch.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.schema != TENANT_DIRECTORY_SCHEMA {
            return Err(ConfigError::UnsupportedSchema {
                found: self.schema.clone(),
            });
        }
        if self.tenants.len() > 256 {
            return Err(ConfigError::TooManyTenants {
                count: self.tenants.len(),
            });
        }
        for (i, tenant) in self.tenants.iter().enumerate() {
            if self.tenants[..i].iter().any(|t| t.name == tenant.name) {
                return Err(ConfigError::DuplicateTenant {
                    name: tenant.name.clone(),
                });
            }
            if tenant.weight == 0 {
                return Err(ConfigError::ZeroTenantWeight {
                    name: tenant.name.clone(),
                });
            }
        }
        Ok(())
    }

    /// Writes every tenant's weight and rate limit into `config`'s class
    /// table, so an engine built from the config schedules each tenant
    /// under its contract. Existing entries for the same classes are
    /// overwritten; other classes are untouched.
    pub fn apply(&self, config: &mut EngineConfig) {
        for (i, tenant) in self.tenants.iter().enumerate() {
            let entry = config.class_entry(Priority::custom(i as u8));
            entry.weight = tenant.weight;
            entry.rate_limit = tenant.rate_limit;
        }
    }
}

/// Thread-safe per-tenant cache-quota accounting: which distinct prepared
/// topologies each tenant has charged against its
/// [`TenantConfig::cache_quota`].
///
/// The accounts layer sits **in front of** the shared cache (the daemon
/// charges a tenant before submitting a Laplacian request), so a refused
/// topology never costs a cache slot, an eviction, or a scheduler round.
/// Re-requesting an already-charged topology is always free — the point of
/// the quota is to bound *distinct* topologies, which is what bounds the
/// tenant's worst-case share of cache slots.
#[derive(Debug, Default)]
pub struct TenantAccounts {
    charged: Mutex<HashMap<String, HashSet<GraphFingerprint>>>,
}

impl TenantAccounts {
    /// Empty accounts.
    pub fn new() -> Self {
        TenantAccounts::default()
    }

    /// Charges `fingerprint` against `tenant`'s quota, returning whether
    /// the topology was newly charged (`false` = already charged, free).
    ///
    /// # Errors
    ///
    /// [`Error::QuotaExceeded`] when the topology is new and the tenant is
    /// already at its [`TenantConfig::cache_quota`]; nothing is charged.
    pub fn charge(
        &self,
        tenant: &TenantConfig,
        fingerprint: GraphFingerprint,
    ) -> Result<bool, Error> {
        let mut charged = self.charged.lock().expect("tenant accounts poisoned");
        let entries = charged.entry(tenant.name.clone()).or_default();
        if entries.contains(&fingerprint) {
            return Ok(false);
        }
        if let Some(quota) = tenant.cache_quota {
            if entries.len() as u64 >= quota {
                return Err(Error::QuotaExceeded {
                    tenant: tenant.name.clone(),
                    quota,
                });
            }
        }
        entries.insert(fingerprint);
        Ok(true)
    }

    /// The number of distinct topologies currently charged to `name`.
    pub fn charged(&self, name: &str) -> u64 {
        self.charged
            .lock()
            .expect("tenant accounts poisoned")
            .get(name)
            .map(|s| s.len() as u64)
            .unwrap_or(0)
    }

    /// Releases every charge held by `name` (e.g. when a tenant's cached
    /// topologies have been evicted wholesale), freeing its whole quota.
    pub fn release_all(&self, name: &str) {
        self.charged
            .lock()
            .expect("tenant accounts poisoned")
            .remove(name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::{fingerprint, generators};

    fn directory() -> TenantDirectory {
        let mut dir = TenantDirectory::new();
        dir.register(TenantConfig {
            name: "victim".to_string(),
            weight: 4,
            rate_limit: None,
            cache_quota: Some(2),
        })
        .unwrap();
        dir.register(TenantConfig {
            name: "flooder".to_string(),
            weight: 1,
            rate_limit: Some(RateLimit::new(1, 8)),
            cache_quota: Some(1),
        })
        .unwrap();
        dir
    }

    #[test]
    fn registration_assigns_dense_custom_classes() {
        let dir = directory();
        assert_eq!(dir.class_of("victim"), Some(Priority::custom(0)));
        assert_eq!(dir.class_of("flooder"), Some(Priority::custom(1)));
        assert_eq!(dir.class_of("stranger"), None);
        assert_eq!(dir.get("flooder").unwrap().weight, 1);
        dir.validate().unwrap();
    }

    #[test]
    fn duplicate_and_zero_weight_registrations_fail_typed() {
        let mut dir = directory();
        assert_eq!(
            dir.register(TenantConfig::new("victim")),
            Err(ConfigError::DuplicateTenant {
                name: "victim".to_string()
            })
        );
        let mut zero = TenantConfig::new("zero");
        zero.weight = 0;
        assert_eq!(
            dir.register(zero),
            Err(ConfigError::ZeroTenantWeight {
                name: "zero".to_string()
            })
        );
    }

    #[test]
    fn directory_round_trips_through_json_and_applies_to_a_config() {
        let dir = directory();
        let json = serde_json::to_string_pretty(&dir).unwrap();
        let back: TenantDirectory = serde_json::from_str(&json).unwrap();
        assert_eq!(back, dir);

        let mut config = EngineConfig::default();
        dir.apply(&mut config);
        config.validate().unwrap();
        let victim = config
            .classes
            .iter()
            .find(|e| e.class == Priority::custom(0))
            .unwrap();
        assert_eq!(victim.weight, 4);
        let flooder = config
            .classes
            .iter()
            .find(|e| e.class == Priority::custom(1))
            .unwrap();
        assert_eq!(flooder.rate_limit, Some(RateLimit::new(1, 8)));
    }

    #[test]
    fn quota_charges_distinct_topologies_only() {
        let dir = directory();
        let accounts = TenantAccounts::new();
        let flooder = dir.get("flooder").unwrap();
        let grid = fingerprint(&generators::grid(3, 3));
        let complete = fingerprint(&generators::complete(8));

        // First topology charges; re-charging it is free.
        assert_eq!(accounts.charge(flooder, grid), Ok(true));
        assert_eq!(accounts.charge(flooder, grid), Ok(false));
        assert_eq!(accounts.charged("flooder"), 1);

        // The second distinct topology breaches the quota of 1.
        assert_eq!(
            accounts.charge(flooder, complete),
            Err(Error::QuotaExceeded {
                tenant: "flooder".to_string(),
                quota: 1,
            })
        );

        // Quotas are per-tenant: the victim still has room.
        let victim = dir.get("victim").unwrap();
        assert_eq!(accounts.charge(victim, grid), Ok(true));
        assert_eq!(accounts.charge(victim, complete), Ok(true));

        // Releasing frees the whole quota.
        accounts.release_all("flooder");
        assert_eq!(accounts.charge(flooder, complete), Ok(true));
    }
}
