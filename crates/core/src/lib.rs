//! # bcc-core
//!
//! Facade crate for the reproduction of *"The Laplacian Paradigm in the
//! Broadcast Congested Clique"* (Forster & de Vos, PODC 2022): re-exports the
//! whole workspace and serves the paper's four theorems through one typed,
//! fallible, reusable pipeline API — [`Session`].
//!
//! | Paper result | Entry point |
//! |---|---|
//! | Theorem 1.2 (spectral sparsifier, Broadcast CONGEST) | [`Session::sparsify`] |
//! | Theorem 1.3 (Laplacian solver, BCC) | [`Session::laplacian`] → [`PreparedLaplacian`] |
//! | Theorem 1.4 (LP solver, BCC) | [`Session::lp`] |
//! | Theorem 1.1 (min-cost max-flow, BCC) | [`Session::min_cost_max_flow`] |
//!
//! Every entry point validates its input and returns
//! `Result<`[`Outcome`]`<T>, `[`Error`]`>` — malformed input (disconnected
//! graphs, mismatched dimensions, infeasible starting points, invalid
//! topologies) surfaces as a typed error instead of a panic, and every
//! [`Outcome`] carries a structured, serializable [`RoundReport`] with the
//! per-phase round/bit accounting the theorems bound.
//!
//! ## Quickstart
//!
//! ```
//! use bcc_core::Session;
//!
//! // A session owns the model configuration, the master seed and a
//! // cumulative cost ledger; it serves any number of requests.
//! let mut session = Session::builder().seed(42).build();
//!
//! // Theorem 1.3: preprocess a graph once, then solve many right-hand
//! // sides — the preprocessing rounds are charged exactly once.
//! let graph = bcc_core::graph::generators::grid(4, 4);
//! let mut prepared = session.laplacian(&graph).preprocess().unwrap();
//! let mut b = vec![0.0; graph.n()];
//! b[0] = 1.0;
//! b[graph.n() - 1] = -1.0;
//! let solve = prepared.solve(&b).unwrap();
//! assert_eq!(solve.value.solution.len(), graph.n());
//! assert!(solve.report.has_phase("laplacian solve"));
//! assert!(prepared.preprocessing_report().total_rounds > 0);
//!
//! // Malformed input is an error, not a panic.
//! let disconnected = bcc_core::graph::Graph::from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)]);
//! assert!(session.laplacian(&disconnected).preprocess().is_err());
//! ```
//!
//! The pre-`Session` free functions (`spectral_sparsify`,
//! `solve_laplacian_bcc`, `min_cost_max_flow_bcc`) remain as thin panicking
//! wrappers over `Session` for backwards compatibility, but are
//! **deprecated**: they panic on malformed input where [`Session`] returns a
//! typed [`Error`]. Configure engines through [`config::EngineConfig`] — the
//! one serde-roundtrippable schema both engine builders and the `bcc-served`
//! daemon consume.
//!
//! ## Live telemetry and tracing
//!
//! The serving engines accept a [`telemetry::TelemetrySink`]: a cheap,
//! cloneable handle that is a no-op by default and, when enabled, records
//! lock-free metrics plus a per-request lifecycle timeline timestamped
//! through the engine's injectable [`Clock`] — under a [`VirtualClock`]
//! the exported trace is byte-for-byte deterministic, and telemetry never
//! feeds back into scheduling, so reports stay bit-identical with tracing
//! on or off.
//!
//! ```
//! use bcc_core::batch::Request;
//! use bcc_core::stream::{Priority, StreamEngine};
//! use bcc_core::telemetry::{TelemetrySink, TraceEvent};
//!
//! let sink = TelemetrySink::enabled();
//! let mut engine = StreamEngine::builder()
//!     .seed(2022)
//!     .telemetry(sink.clone())
//!     .build();
//! engine.serve(|client| {
//!     let g = bcc_core::graph::generators::grid(3, 3);
//!     let t = client
//!         .submit(Request::sparsify(g, 0.5), Priority::Interactive)
//!         .unwrap();
//!     client.wait(t).unwrap();
//! });
//! // Metrics snapshot (JSON-serializable) and a Chrome trace-event
//! // timeline (load it into chrome://tracing or ui.perfetto.dev).
//! let metrics = sink.metrics_snapshot().unwrap();
//! assert_eq!(metrics.counter("stream.dispatched"), 1);
//! let dispatched = sink
//!     .trace_records()
//!     .iter()
//!     .filter(|r| r.event == TraceEvent::Dispatched)
//!     .count();
//! assert_eq!(dispatched as u64, metrics.counter("stream.dispatched"));
//! let timeline: String = sink.chrome_trace().unwrap();
//! assert!(timeline.contains("\"traceEvents\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bcc_flow as flow;
pub use bcc_graph as graph;
pub use bcc_laplacian as laplacian;
pub use bcc_linalg as linalg;
pub use bcc_lp as lp;
pub use bcc_runtime as runtime;
pub use bcc_spanner as spanner;
pub use bcc_sparsifier as sparsifier;

pub mod algorithm;
pub mod batch;
pub mod cache;
pub mod clock;
pub mod config;
pub mod cost;
pub mod error;
pub mod latency;
pub mod report;
mod serve;
pub mod session;
pub mod stream;
pub mod telemetry;
pub mod tenant;
pub mod wfq;

pub use algorithm::{
    BccAlgorithm, LaplacianAlgorithm, LaplacianProblem, LpAlgorithm, LpProblem, McmfAlgorithm,
    SparsifyAlgorithm,
};
pub use batch::{BatchEngine, BatchEngineBuilder, BatchOutput, BatchReport, Request, Response};
pub use cache::{CacheStats, EvictionPolicy};
pub use clock::{Clock, SystemClock, VirtualClock};
pub use config::{ClassEntry, ConfigError, EngineConfig, ENGINE_CONFIG_SCHEMA};
pub use cost::{CostDims, CostKind, CostModel};
pub use error::Error;
pub use latency::{ClassLatency, LatencyPercentiles, LatencyReport};
pub use report::RoundReport;
pub use session::{
    GramChoice, LaplacianRequest, LpRequest, Outcome, PreparedLaplacian, Session, SessionBuilder,
};
pub use stream::{
    BackpressurePolicy, ClassStats, Priority, RateLimit, SchedulerStats, StreamClient,
    StreamEngine, StreamEngineBuilder, StreamOutput, StreamReport, Ticket,
};
pub use telemetry::{MetricsSnapshot, TelemetrySink, TraceEvent, TraceRecord};
pub use tenant::{TenantAccounts, TenantConfig, TenantDirectory};

/// Commonly used types, re-exported for `use bcc_core::prelude::*`.
pub mod prelude {
    pub use crate::algorithm::BccAlgorithm;
    pub use crate::cache::EvictionPolicy;
    pub use crate::clock::{Clock, SystemClock, VirtualClock};
    pub use crate::config::EngineConfig;
    pub use crate::cost::{CostDims, CostKind, CostModel};
    pub use crate::error::Error;
    pub use crate::latency::{LatencyPercentiles, LatencyReport};
    pub use crate::report::RoundReport;
    pub use crate::session::{LpRequest, Outcome, PreparedLaplacian, Session};
    pub use crate::stream::{BackpressurePolicy, Priority, RateLimit, StreamEngine};
    pub use crate::telemetry::{MetricsSnapshot, TelemetrySink, TraceEvent};
    pub use bcc_flow::{min_cost_max_flow_bcc, ssp_min_cost_max_flow, McmfOptions};
    pub use bcc_graph::{DiGraph, FlowInstance, Graph};
    pub use bcc_laplacian::LaplacianSolver;
    pub use bcc_lp::{lp_solve, LpInstance, LpOptions};
    pub use bcc_runtime::{Model, ModelConfig, Network, RoundLedger};
    pub use bcc_spanner::{baswana_sen_spanner, SpannerParams};
    pub use bcc_sparsifier::{sparsify_ad_hoc, SparsifierConfig};
}

// ---------------------------------------------------------------------------
// Legacy one-call pipeline functions (pre-`Session` API).
// ---------------------------------------------------------------------------

/// Computes a spectral sparsifier of `graph` in the Broadcast CONGEST model
/// (Theorem 1.2) with laboratory parameters, returning the sparsifier and the
/// round report.
///
/// Legacy wrapper over [`Session::sparsify`]; results are identical to the
/// session API at equal seeds. Prefer `Session` in new code — it reports
/// malformed input as [`Error`] instead of panicking.
///
/// # Panics
///
/// Panics when the session API would return an error (invalid topology,
/// empty graph, non-positive `epsilon`).
#[deprecated(
    since = "0.9.0",
    note = "use `Session::sparsify`, which returns a typed `Error` instead of panicking"
)]
pub fn spectral_sparsify(
    graph: &bcc_graph::Graph,
    epsilon: f64,
    seed: u64,
) -> (bcc_graph::Graph, RoundReport) {
    let mut session = Session::builder().seed(seed).build();
    let outcome = session
        .sparsify(graph, epsilon)
        .unwrap_or_else(|e| panic!("spectral_sparsify: {e}"));
    (outcome.value.sparsifier, outcome.report)
}

/// Solves the Laplacian system `L_G x = b` in the Broadcast Congested Clique
/// (Theorem 1.3), returning the solution and the round report (preprocessing
/// plus solve).
///
/// Legacy wrapper over [`Session::laplacian`]; results are identical to the
/// session API at equal seeds. Prefer `Session` in new code — it separates
/// preprocessing from per-instance solves ([`PreparedLaplacian::solve_many`])
/// and reports malformed input as [`Error`] instead of panicking.
///
/// # Panics
///
/// Panics when the session API would return an error (disconnected graph,
/// wrong right-hand-side length, non-positive `epsilon`).
#[deprecated(
    since = "0.9.0",
    note = "use `Session::laplacian` + `PreparedLaplacian::solve`, which return a typed `Error` \
            instead of panicking and charge preprocessing once across many right-hand sides"
)]
pub fn solve_laplacian_bcc(
    graph: &bcc_graph::Graph,
    b: &[f64],
    epsilon: f64,
    seed: u64,
) -> (Vec<f64>, RoundReport) {
    let session = Session::builder().seed(seed).build();
    let mut prepared = session
        .laplacian(graph)
        .epsilon(epsilon.min(0.5))
        .preprocess()
        .unwrap_or_else(|e| panic!("solve_laplacian_bcc: {e}"));
    let outcome = prepared
        .solve(b)
        .unwrap_or_else(|e| panic!("solve_laplacian_bcc: {e}"));
    (outcome.value.solution, prepared.report())
}

/// Computes an exact minimum cost maximum flow in the Broadcast Congested
/// Clique (Theorem 1.1) with default laboratory options, returning the result
/// and the round report.
///
/// Legacy wrapper over [`Session::min_cost_max_flow`]; results are identical
/// to the session API at equal seeds. Prefer `Session` in new code — it
/// reports malformed input as [`Error`] instead of panicking.
///
/// # Panics
///
/// Panics when the session API would return an error (empty instance,
/// rejected LP encoding).
#[deprecated(
    since = "0.9.0",
    note = "use `Session::min_cost_max_flow`, which returns a typed `Error` instead of panicking"
)]
pub fn min_cost_max_flow_bcc(
    instance: &bcc_graph::FlowInstance,
    seed: u64,
) -> (bcc_flow::McmfResult, RoundReport) {
    let mut session = Session::builder().seed(seed).build();
    let outcome = session
        .min_cost_max_flow(instance)
        .unwrap_or_else(|e| panic!("min_cost_max_flow_bcc: {e}"));
    (outcome.value, outcome.report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(deprecated)]
    fn sparsify_pipeline_produces_a_connected_sparsifier() {
        let g = bcc_graph::generators::complete(18);
        let (h, report) = spectral_sparsify(&g, 0.5, 3);
        assert!(h.is_connected());
        assert!(h.m() <= g.m());
        assert!(report.total_rounds > 0);
        assert!(report.has_phase("sparsifier"));
        assert!(report.to_string().contains("TOTAL"));
    }

    #[test]
    #[allow(deprecated)]
    fn laplacian_pipeline_solves_a_grid_system() {
        let g = bcc_graph::generators::grid(4, 4);
        let mut b = vec![0.0; g.n()];
        b[0] = 1.0;
        b[15] = -1.0;
        let (x, report) = solve_laplacian_bcc(&g, &b, 1e-6, 5);
        let lx = bcc_graph::laplacian::laplacian_apply(&g, &x);
        assert!(bcc_linalg::vector::approx_eq(&lx, &b, 1e-3));
        assert!(report.total_rounds > 0);
    }

    #[test]
    #[allow(deprecated)]
    fn flow_pipeline_matches_the_baseline() {
        let g = bcc_graph::DiGraph::from_arcs(
            4,
            [(0, 1, 2, 1), (1, 3, 2, 1), (0, 2, 1, 3), (2, 3, 1, 3)],
        );
        let instance = bcc_graph::FlowInstance::new(g, 0, 3);
        let baseline = bcc_flow::ssp_min_cost_max_flow(&instance);
        let (result, report) = min_cost_max_flow_bcc(&instance, 11);
        assert_eq!(result.flow.value, baseline.value);
        assert_eq!(result.flow.cost, baseline.cost);
        assert!(report.total_rounds > 0);
    }

    #[test]
    fn session_accumulates_cumulative_telemetry() {
        let mut session = Session::builder().seed(9).build();
        let g = bcc_graph::generators::complete(12);
        let first = session.sparsify(&g, 0.5).unwrap();
        let after_one = session.cumulative_report();
        assert_eq!(after_one.total_rounds, first.report.total_rounds);
        let second = session.sparsify(&g, 1.0).unwrap();
        let after_two = session.cumulative_report();
        assert_eq!(
            after_two.total_rounds,
            first.report.total_rounds + second.report.total_rounds
        );
    }

    #[test]
    fn algorithms_run_generically_over_one_session() {
        fn drive<A: BccAlgorithm>(
            algorithm: &A,
            session: &mut Session,
            input: &A::Input,
        ) -> (String, u64) {
            let outcome = algorithm
                .run(session, input)
                .unwrap_or_else(|e| panic!("{e}"));
            (algorithm.name().to_string(), outcome.report.total_rounds)
        }

        let mut session = Session::builder().seed(4).build();
        let graph = bcc_graph::generators::grid(3, 4);
        let mut b = vec![0.0; graph.n()];
        b[0] = 1.0;
        b[11] = -1.0;

        let (name, rounds) = drive(&SparsifyAlgorithm { epsilon: 0.5 }, &mut session, &graph);
        assert_eq!(name, "sparsify");
        assert!(rounds > 0);

        let problem = LaplacianProblem {
            graph: graph.clone(),
            b,
        };
        let (name, rounds) = drive(
            &LaplacianAlgorithm { epsilon: 1e-4 },
            &mut session,
            &problem,
        );
        assert_eq!(name, "laplacian");
        assert!(rounds > 0);

        let flow = bcc_graph::DiGraph::from_arcs(3, [(0, 1, 2, 1), (1, 2, 2, 1)]);
        let instance = bcc_graph::FlowInstance::new(flow, 0, 2);
        let (name, rounds) = drive(&McmfAlgorithm, &mut session, &instance);
        assert_eq!(name, "min-cost max-flow");
        assert!(rounds > 0);

        // All three requests accumulated on the session ledger.
        assert!(session.cumulative_report().total_rounds > 0);
        assert_eq!(
            McmfAlgorithm.theorem(),
            "Theorem 1.1 (min-cost max-flow, BCC)"
        );
    }
}
