//! # bcc-core
//!
//! Facade crate for the reproduction of *"The Laplacian Paradigm in the
//! Broadcast Congested Clique"* (Forster & de Vos, PODC 2022): re-exports the
//! whole workspace and provides one-call pipeline functions mirroring the
//! paper's four theorems.
//!
//! | Paper result | Entry point |
//! |---|---|
//! | Theorem 1.2 (spectral sparsifier, Broadcast CONGEST) | [`spectral_sparsify`] |
//! | Theorem 1.3 (Laplacian solver, BCC) | [`solve_laplacian_bcc`] |
//! | Theorem 1.4 (LP solver, BCC) | [`bcc_lp::lp_solve`] |
//! | Theorem 1.1 (min-cost max-flow, BCC) | [`min_cost_max_flow_bcc`] |
//!
//! ## Quickstart
//!
//! ```
//! use bcc_core::prelude::*;
//!
//! // A weighted graph and a Laplacian system on it.
//! let graph = bcc_core::graph::generators::grid(4, 4);
//! let (solution, report) = bcc_core::solve_laplacian_bcc(&graph, &demand_vector(&graph), 1e-6, 42);
//! assert!(report.total_rounds > 0);
//! assert_eq!(solution.len(), graph.n());
//!
//! fn demand_vector(g: &bcc_core::graph::Graph) -> Vec<f64> {
//!     let mut b = vec![0.0; g.n()];
//!     b[0] = 1.0;
//!     b[g.n() - 1] = -1.0;
//!     b
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bcc_flow as flow;
pub use bcc_graph as graph;
pub use bcc_laplacian as laplacian;
pub use bcc_linalg as linalg;
pub use bcc_lp as lp;
pub use bcc_runtime as runtime;
pub use bcc_spanner as spanner;
pub use bcc_sparsifier as sparsifier;

/// Commonly used types, re-exported for `use bcc_core::prelude::*`.
pub mod prelude {
    pub use bcc_flow::{min_cost_max_flow_bcc, ssp_min_cost_max_flow, McmfOptions};
    pub use bcc_graph::{DiGraph, FlowInstance, Graph};
    pub use bcc_laplacian::LaplacianSolver;
    pub use bcc_lp::{lp_solve, LpInstance, LpOptions};
    pub use bcc_runtime::{Model, ModelConfig, Network, RoundLedger};
    pub use bcc_spanner::{baswana_sen_spanner, SpannerParams};
    pub use bcc_sparsifier::{sparsify_ad_hoc, SparsifierConfig};
}

/// A compact summary of the communication cost of a pipeline run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundReport {
    /// Total rounds charged.
    pub total_rounds: u64,
    /// Total bits written to the blackboard / links.
    pub total_bits: u64,
    /// Human-readable per-phase breakdown.
    pub breakdown: String,
}

impl RoundReport {
    fn from_ledger(ledger: &bcc_runtime::RoundLedger) -> Self {
        RoundReport {
            total_rounds: ledger.total_rounds(),
            total_bits: ledger.total_bits(),
            breakdown: ledger.report(),
        }
    }
}

/// Computes a spectral sparsifier of `graph` in the Broadcast CONGEST model
/// (Theorem 1.2) with laboratory parameters, returning the sparsifier and the
/// round report.
pub fn spectral_sparsify(
    graph: &bcc_graph::Graph,
    epsilon: f64,
    seed: u64,
) -> (bcc_graph::Graph, RoundReport) {
    let cfg = bcc_sparsifier::SparsifierConfig::laboratory(graph.n(), graph.m().max(2), epsilon, seed);
    let mut net = bcc_runtime::Network::on_graph(
        bcc_runtime::ModelConfig::broadcast_congest(),
        graph.adjacency_lists(),
    )
    .expect("graph adjacency lists form a valid topology");
    let out = bcc_sparsifier::sparsify_ad_hoc(&mut net, graph, &cfg);
    (out.sparsifier, RoundReport::from_ledger(net.ledger()))
}

/// Solves the Laplacian system `L_G x = b` in the Broadcast Congested Clique
/// (Theorem 1.3), returning the solution and the round report (preprocessing
/// plus solve).
pub fn solve_laplacian_bcc(
    graph: &bcc_graph::Graph,
    b: &[f64],
    epsilon: f64,
    seed: u64,
) -> (Vec<f64>, RoundReport) {
    let cfg = bcc_sparsifier::SparsifierConfig::laboratory(graph.n(), graph.m().max(2), 0.5, seed)
        .with_t(6)
        .with_k(2);
    let mut net = bcc_runtime::Network::clique(bcc_runtime::ModelConfig::bcc(), graph.n());
    let solver = bcc_laplacian::LaplacianSolver::preprocess(&mut net, graph, &cfg);
    let solve = solver.solve(&mut net, b, epsilon.min(0.5));
    (solve.solution, RoundReport::from_ledger(net.ledger()))
}

/// Computes an exact minimum cost maximum flow in the Broadcast Congested
/// Clique (Theorem 1.1) with default laboratory options, returning the result
/// and the round report.
pub fn min_cost_max_flow_bcc(
    instance: &bcc_graph::FlowInstance,
    seed: u64,
) -> (bcc_flow::McmfResult, RoundReport) {
    let mut net = bcc_runtime::Network::clique(bcc_runtime::ModelConfig::bcc(), instance.graph.n());
    let options = bcc_flow::McmfOptions {
        seed,
        ..bcc_flow::McmfOptions::default()
    };
    let result = bcc_flow::min_cost_max_flow_bcc(&mut net, instance, &options);
    let report = RoundReport::from_ledger(net.ledger());
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparsify_pipeline_produces_a_connected_sparsifier() {
        let g = bcc_graph::generators::complete(18);
        let (h, report) = spectral_sparsify(&g, 0.5, 3);
        assert!(h.is_connected());
        assert!(h.m() <= g.m());
        assert!(report.total_rounds > 0);
        assert!(report.breakdown.contains("TOTAL"));
    }

    #[test]
    fn laplacian_pipeline_solves_a_grid_system() {
        let g = bcc_graph::generators::grid(4, 4);
        let mut b = vec![0.0; g.n()];
        b[0] = 1.0;
        b[15] = -1.0;
        let (x, report) = solve_laplacian_bcc(&g, &b, 1e-6, 5);
        let lx = bcc_graph::laplacian::laplacian_apply(&g, &x);
        assert!(bcc_linalg::vector::approx_eq(&lx, &b, 1e-3));
        assert!(report.total_rounds > 0);
    }

    #[test]
    fn flow_pipeline_matches_the_baseline() {
        let g = bcc_graph::DiGraph::from_arcs(
            4,
            [(0, 1, 2, 1), (1, 3, 2, 1), (0, 2, 1, 3), (2, 3, 1, 3)],
        );
        let instance = bcc_graph::FlowInstance::new(g, 0, 3);
        let baseline = bcc_flow::ssp_min_cost_max_flow(&instance);
        let (result, report) = min_cost_max_flow_bcc(&instance, 11);
        assert_eq!(result.flow.value, baseline.value);
        assert_eq!(result.flow.cost, baseline.cost);
        assert!(report.total_rounds > 0);
    }
}
