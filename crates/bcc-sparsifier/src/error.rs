//! Typed errors of the sparsifier pipeline.

/// Errors raised by the sparsifier entry points on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparsifierError {
    /// The graph has no edges, so there is nothing to sparsify (and the
    /// bundle-spanner machinery would degenerate).
    EmptyGraph,
    /// The network simulates a different number of processors than the graph
    /// has vertices.
    NetworkSizeMismatch {
        /// Processors in the network.
        network: usize,
        /// Vertices in the graph.
        graph: usize,
    },
}

impl std::fmt::Display for SparsifierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparsifierError::EmptyGraph => {
                write!(f, "cannot sparsify a graph with no edges")
            }
            SparsifierError::NetworkSizeMismatch { network, graph } => write!(
                f,
                "network simulates {network} processors but the graph has {graph} vertices"
            ),
        }
    }
}

impl std::error::Error for SparsifierError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(SparsifierError::EmptyGraph.to_string().contains("no edges"));
        let err = SparsifierError::NetworkSizeMismatch {
            network: 3,
            graph: 8,
        };
        assert!(err.to_string().contains('3'));
        assert!(err.to_string().contains('8'));
    }
}
