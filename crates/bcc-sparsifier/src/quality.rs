//! Spectral-approximation quality measurements.
//!
//! Theorem 1.2 promises `(1−ε)·L_H ≼ L_G ≼ (1+ε)·L_H`. For connected graphs
//! both Laplacians have the all-ones kernel, so the guarantee is equivalent to
//! all generalized eigenvalues of the pencil `(L_G, L_H)` (restricted to the
//! complement of the kernel) lying in `[1−ε, 1+ε]`. These utilities compute
//! the exact extreme generalized eigenvalues on dense ground-truth matrices —
//! feasible for the instance sizes the experiments use, and a *certificate*
//! rather than a sampled estimate.

use bcc_graph::{laplacian, Graph};
use bcc_linalg::{generalized_extreme_eigenvalues, DenseMatrix};

/// The extreme generalized eigenvalues `(λ_min, λ_max)` of `(L_G, L_H)`:
/// the sparsifier satisfies a `(1±ε)` guarantee iff
/// `1 − ε ≤ λ_min` and `λ_max ≤ 1 + ε`.
///
/// # Panics
///
/// Panics if the graphs have different vertex counts.
pub fn approximation_bounds(g: &Graph, h: &Graph) -> (f64, f64) {
    assert_eq!(g.n(), h.n(), "graphs must share the vertex set");
    let lg = dense_laplacian(g);
    let lh = dense_laplacian(h);
    let ones = vec![1.0; g.n()];
    generalized_extreme_eigenvalues(&lg, &lh, &ones)
}

/// The smallest `ε ≥ 0` such that `H` is a `(1±ε)`-spectral sparsifier of `G`
/// (`f64::INFINITY` if `H` does not even dominate a positive fraction of `G`,
/// e.g. when `H` is disconnected but `G` is not).
pub fn achieved_epsilon(g: &Graph, h: &Graph) -> f64 {
    // The eigenvalue certificate restricts to the range of L_H; if H has more
    // connected components than G there is a direction with xᵀL_H x = 0 but
    // xᵀL_G x > 0, so no finite ε exists.
    let comps_g = bcc_graph::traversal::connected_components(g)
        .into_iter()
        .max()
        .map_or(0, |c| c + 1);
    let comps_h = bcc_graph::traversal::connected_components(h)
        .into_iter()
        .max()
        .map_or(0, |c| c + 1);
    if comps_h > comps_g {
        return f64::INFINITY;
    }
    let (lo, hi) = approximation_bounds(g, h);
    if lo <= 0.0 || !lo.is_finite() || !hi.is_finite() {
        return f64::INFINITY;
    }
    (1.0 - lo).max(hi - 1.0).max(0.0)
}

/// Relative quadratic-form error on a specific test vector:
/// `|xᵀL_G x − xᵀL_H x| / xᵀL_G x`. A cheap spot check used by the larger
/// experiments where dense eigen-decomposition would be too slow.
pub fn quadratic_form_error(g: &Graph, h: &Graph, x: &[f64]) -> f64 {
    let qg = laplacian::quadratic_form(g, x);
    let qh = laplacian::quadratic_form(h, x);
    if qg <= 0.0 {
        return 0.0;
    }
    (qg - qh).abs() / qg
}

fn dense_laplacian(g: &Graph) -> DenseMatrix {
    let rows = laplacian::laplacian_dense(g);
    DenseMatrix::from_rows(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::generators;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn identical_graphs_have_unit_bounds() {
        let g = generators::grid(3, 4);
        let (lo, hi) = approximation_bounds(&g, &g);
        assert!((lo - 1.0).abs() < 1e-8);
        assert!((hi - 1.0).abs() < 1e-8);
        assert!(achieved_epsilon(&g, &g) < 1e-8);
    }

    #[test]
    fn uniform_reweighting_shifts_bounds() {
        let g = generators::cycle(8);
        let h = g.map_weights(|e| 2.0 * e.weight);
        // L_G = 0.5 L_H, so both generalized eigenvalues are 0.5.
        let (lo, hi) = approximation_bounds(&g, &h);
        assert!((lo - 0.5).abs() < 1e-8);
        assert!((hi - 0.5).abs() < 1e-8);
        assert!((achieved_epsilon(&g, &h) - 0.5).abs() < 1e-8);
    }

    #[test]
    fn dropping_an_edge_of_a_cycle_is_detected() {
        let g = generators::cycle(6);
        let h = g.subgraph(&(0..5).collect::<Vec<_>>());
        let eps = achieved_epsilon(&g, &h);
        // The cycle is not spectrally close to a path with the same weights.
        assert!(eps > 0.5, "eps = {eps}");
    }

    #[test]
    fn disconnected_candidate_gives_infinite_epsilon() {
        let g = generators::cycle(6);
        let h = g.subgraph(&[0, 2]);
        assert_eq!(achieved_epsilon(&g, &h), f64::INFINITY);
    }

    #[test]
    fn quadratic_form_error_is_zero_for_identical_graphs() {
        let g = generators::grid(3, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let x: Vec<f64> = (0..g.n()).map(|_| rng.gen::<f64>()).collect();
        assert!(quadratic_form_error(&g, &g, &x) < 1e-12);
    }

    #[test]
    fn bounds_certify_quadratic_forms() {
        // Whatever bounds the certificate reports must hold for random vectors.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = generators::random_connected(15, 0.4, 5, &mut rng);
        // A crude "sparsifier": double every third edge's weight and drop the rest.
        let keep: Vec<usize> = (0..g.m()).step_by(2).collect();
        let h_candidate = g.subgraph(&keep);
        if !h_candidate.is_connected() {
            return;
        }
        let (lo, hi) = approximation_bounds(&g, &h_candidate);
        for _ in 0..20 {
            let x: Vec<f64> = (0..g.n()).map(|_| rng.gen::<f64>() - 0.5).collect();
            let qg = bcc_graph::laplacian::quadratic_form(&g, &x);
            let qh = bcc_graph::laplacian::quadratic_form(&h_candidate, &x);
            assert!(qg <= hi * qh + 1e-6);
            assert!(qg >= lo * qh - 1e-6);
        }
    }
}
