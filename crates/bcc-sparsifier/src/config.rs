//! Parameters of the spectral sparsification algorithms.

/// Parameters of Algorithms 4 and 5 (Section 3.2).
///
/// The paper fixes `k = ⌈log n⌉`, `t = 400·log²(n)/ε²` and
/// `⌈log m⌉` iterations. Those constants make even toy instances enormous
/// (`t > 10⁴` for `n = 64`, `ε = 1/2`), so the struct also provides
/// *laboratory* defaults that keep the same asymptotic shape with smaller
/// constants; the experiment harness sweeps both.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsifierConfig {
    /// Spanner stretch parameter `k` (spanners have stretch `2k − 1`).
    pub k: usize,
    /// Number of spanners per bundle, `t`.
    pub t: usize,
    /// Number of outer iterations (the paper uses `⌈log m⌉`).
    pub iterations: usize,
    /// Master seed.
    pub seed: u64,
}

impl SparsifierConfig {
    /// The constants exactly as stated in Algorithm 5:
    /// `k = ⌈log₂ n⌉`, `t = ⌈400·log₂²(n)/ε²⌉`, `⌈log₂ m⌉` iterations.
    pub fn paper_defaults(n: usize, m: usize, epsilon: f64, seed: u64) -> Self {
        assert!(epsilon > 0.0);
        let log_n = (n.max(2) as f64).log2();
        let log_m = (m.max(2) as f64).log2();
        SparsifierConfig {
            k: log_n.ceil() as usize,
            t: (400.0 * log_n * log_n / (epsilon * epsilon)).ceil() as usize,
            iterations: log_m.ceil() as usize,
            seed,
        }
    }

    /// Laboratory defaults: the same `Θ(log n)` / `Θ(log²(n)/ε²)` /
    /// `Θ(log m)` shape with constants small enough to exercise interesting
    /// behaviour (actual edge reduction) on graphs with tens to hundreds of
    /// vertices.
    pub fn laboratory(n: usize, m: usize, epsilon: f64, seed: u64) -> Self {
        assert!(epsilon > 0.0);
        let log_n = (n.max(2) as f64).log2();
        let log_m = (m.max(2) as f64).log2();
        SparsifierConfig {
            k: (log_n.ceil() as usize).clamp(2, 4),
            t: ((2.0 * log_n * log_n / (epsilon * epsilon)).ceil() as usize).max(2),
            iterations: (log_m.ceil() as usize).clamp(2, 8),
            seed,
        }
    }

    /// Overrides the number of spanners per bundle.
    pub fn with_t(mut self, t: usize) -> Self {
        assert!(t >= 1);
        self.t = t;
        self
    }

    /// Overrides the number of outer iterations.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        assert!(iterations >= 1);
        self.iterations = iterations;
        self
    }

    /// Overrides the stretch parameter.
    pub fn with_k(mut self, k: usize) -> Self {
        assert!(k >= 1);
        self.k = k;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_formulae() {
        let cfg = SparsifierConfig::paper_defaults(1024, 1 << 16, 0.5, 1);
        assert_eq!(cfg.k, 10);
        assert_eq!(cfg.t, (400.0f64 * 100.0 / 0.25).ceil() as usize);
        assert_eq!(cfg.iterations, 16);
    }

    #[test]
    fn laboratory_defaults_are_small_but_positive() {
        let cfg = SparsifierConfig::laboratory(64, 2016, 0.5, 1);
        assert!(cfg.k >= 2 && cfg.k <= 4);
        assert!(cfg.t >= 2 && cfg.t < 1000);
        assert!(cfg.iterations >= 2);
    }

    #[test]
    fn builders_override_fields() {
        let cfg = SparsifierConfig::laboratory(64, 2016, 0.5, 1)
            .with_t(7)
            .with_iterations(3)
            .with_k(2);
        assert_eq!(cfg.t, 7);
        assert_eq!(cfg.iterations, 3);
        assert_eq!(cfg.k, 2);
    }

    #[test]
    #[should_panic]
    fn zero_epsilon_rejected() {
        let _ = SparsifierConfig::paper_defaults(16, 32, 0.0, 1);
    }
}
