//! # bcc-sparsifier
//!
//! Spectral sparsification in the Broadcast CONGEST model (Section 3.2 of
//! *"The Laplacian Paradigm in the Broadcast Congested Clique"*, Forster &
//! de Vos, PODC 2022).
//!
//! * [`SparsifierConfig`] — the parameters of Algorithms 4/5 with paper and
//!   laboratory defaults.
//! * [`sparsify_ad_hoc`] — Algorithm 5 (Theorem 1.2): sampling happens on the
//!   fly inside the probabilistic-edge spanner and outcomes are communicated
//!   implicitly; implementable under the broadcast constraint.
//! * [`sparsify_a_priori`] — Algorithm 4: the Koutis–Xu / Kyng et al.
//!   reference with per-edge a-priori coin flips (needs unicast).
//! * [`quality`] — exact generalized-eigenvalue certificates of the
//!   `(1±ε)` guarantee.
//!
//! ## Example
//!
//! ```
//! use bcc_graph::generators;
//! use bcc_runtime::{ModelConfig, Network};
//! use bcc_sparsifier::{quality, sparsify_ad_hoc, SparsifierConfig};
//!
//! let g = generators::complete(20);
//! let cfg = SparsifierConfig::laboratory(g.n(), g.m(), 0.5, 1).with_t(4).with_k(2);
//! let mut net = Network::on_graph(ModelConfig::broadcast_congest(), g.adjacency_lists()).unwrap();
//! let out = sparsify_ad_hoc(&mut net, &g, &cfg);
//! assert!(out.sparsifier.is_connected());
//! assert!(quality::achieved_epsilon(&g, &out.sparsifier).is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod quality;
pub mod sparsify;

pub use config::SparsifierConfig;
pub use error::SparsifierError;
pub use sparsify::{sparsify_a_priori, sparsify_ad_hoc, try_sparsify_ad_hoc, SparsifierOutput};
