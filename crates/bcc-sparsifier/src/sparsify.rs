//! Spectral sparsification (Section 3.2 of the paper).
//!
//! Two variants are implemented:
//!
//! * [`sparsify_a_priori`] — Algorithm 4, the Koutis–Xu / Kyng et al.
//!   framework with *a-priori* sampling: after each bundle spanner, every
//!   remaining edge is kept with probability 1/4 (and re-weighted by 4). This
//!   sampling step is trivial in the (unicast) CONGEST model but not in a
//!   broadcast model; the variant serves as the reference for the
//!   distributional-equivalence experiment (Lemma 3.3 / experiment E2).
//! * [`sparsify_ad_hoc`] — Algorithm 5, the paper's Broadcast CONGEST
//!   algorithm: the probability that an edge still exists is *maintained*
//!   (divided by 4 whenever the edge survives outside a bundle) and the edge
//!   is only actually sampled when some vertex wants to use it inside the
//!   spanner construction — or in the final clean-up step, where the
//!   lower-identifier endpoint samples it and broadcasts the outcome.

use bcc_graph::Graph;
use bcc_runtime::{ceil_log2, payload, Network};
use bcc_spanner::{bundle_spanner, SpannerParams};
use rand::Rng;

use crate::config::SparsifierConfig;
use crate::error::SparsifierError;

/// The result of a sparsification run.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsifierOutput {
    /// The sparsifier `H`: same vertex set, re-weighted subset of the edges.
    pub sparsifier: Graph,
    /// For every edge of `H`, the index of the originating edge in the input
    /// graph.
    pub edge_origin: Vec<usize>,
    /// Which vertex is responsible for (added / announced) each sparsifier
    /// edge; the orientation whose out-degree Theorem 1.2 bounds.
    pub added_by: Vec<usize>,
}

impl SparsifierOutput {
    /// Out-degree of every vertex under the "added by" orientation.
    pub fn out_degrees(&self, n: usize) -> Vec<usize> {
        let mut deg = vec![0; n];
        for &v in &self.added_by {
            deg[v] += 1;
        }
        deg
    }

    /// The maximum out-degree — the number of rounds needed for every vertex
    /// to make its share of the sparsifier global knowledge in the BCC.
    pub fn max_out_degree(&self, n: usize) -> usize {
        self.out_degrees(n).into_iter().max().unwrap_or(0)
    }
}

/// Shared driver state for both variants.
struct Driver<'a> {
    graph: &'a Graph,
    weights: Vec<f64>,
    active: Vec<bool>,
}

impl<'a> Driver<'a> {
    fn new(graph: &'a Graph) -> Self {
        Driver {
            graph,
            weights: graph.edges().iter().map(|e| e.weight).collect(),
            active: vec![true; graph.m()],
        }
    }

    fn finish(self, kept: Vec<(usize, usize)>) -> SparsifierOutput {
        // kept: (edge index, responsible vertex)
        let mut h = Graph::new(self.graph.n());
        let mut edge_origin = Vec::with_capacity(kept.len());
        let mut added_by = Vec::with_capacity(kept.len());
        for (e, owner) in kept {
            let edge = self.graph.edge(e);
            h.add_edge(edge.u, edge.v, self.weights[e]);
            edge_origin.push(e);
            added_by.push(owner);
        }
        SparsifierOutput {
            sparsifier: h,
            edge_origin,
            added_by,
        }
    }
}

/// Fallible variant of [`sparsify_ad_hoc`]: validates the input before
/// charging any rounds.
///
/// # Errors
///
/// * [`SparsifierError::EmptyGraph`] — the graph has no edges.
/// * [`SparsifierError::NetworkSizeMismatch`] — `net` does not simulate one
///   processor per vertex.
pub fn try_sparsify_ad_hoc(
    net: &mut Network,
    graph: &Graph,
    config: &SparsifierConfig,
) -> Result<SparsifierOutput, SparsifierError> {
    if net.n() != graph.n() {
        return Err(SparsifierError::NetworkSizeMismatch {
            network: net.n(),
            graph: graph.n(),
        });
    }
    if graph.m() == 0 {
        return Err(SparsifierError::EmptyGraph);
    }
    Ok(sparsify_ad_hoc(net, graph, config))
}

/// Algorithm 5: spectral sparsification with ad-hoc sampling in the Broadcast
/// CONGEST model (Theorem 1.2).
///
/// Rounds are charged on `net` (the bundle-spanner calls dominate,
/// `O(log⁵(n)/ε² · log(nU/ε))` with the paper's constants).
pub fn sparsify_ad_hoc(
    net: &mut Network,
    graph: &Graph,
    config: &SparsifierConfig,
) -> SparsifierOutput {
    let n = graph.n();
    let m = graph.m();
    let mut driver = Driver::new(graph);
    let mut probability = vec![1.0f64; m];
    net.begin_phase("sparsifier");

    let mut last_bundle: Vec<usize> = (0..m).collect();
    for iteration in 0..config.iterations {
        let params = SpannerParams {
            k: config.k,
            seed: config
                .seed
                .wrapping_add(0xB5AD_4ECE_DA1C_E2A9_u64.wrapping_mul(iteration as u64 + 1)),
        };
        let bundle = bundle_spanner(
            net,
            graph,
            &driver.weights,
            &probability,
            &driver.active,
            params,
            config.t,
        );
        // E_i := E_{i-1} \ C_i.
        for &e in &bundle.sampled_out {
            driver.active[e] = false;
        }
        // Edges inside the bundle are now certain again.
        let in_bundle: std::collections::BTreeSet<usize> = bundle.bundle.iter().copied().collect();
        for e in 0..m {
            if !driver.active[e] {
                continue;
            }
            if in_bundle.contains(&e) {
                probability[e] = 1.0;
            } else {
                probability[e] /= 4.0;
                driver.weights[e] *= 4.0;
            }
        }
        last_bundle = bundle.bundle;
    }

    // Final step: E' := B_last; every remaining active edge is sampled by its
    // lower-identifier endpoint with its maintained probability and broadcast
    // if kept.
    let in_last_bundle: std::collections::BTreeSet<usize> = last_bundle.iter().copied().collect();
    let mut kept: Vec<(usize, usize)> = Vec::new();
    // Bundle edges were added (and broadcast) by the spanner layers; attribute
    // them to their lower endpoint for the orientation report (the spanner
    // already charged their announcement).
    for &e in &last_bundle {
        let edge = graph.edge(e);
        kept.push((e, edge.u.min(edge.v)));
    }
    let mut rngs: Vec<_> = (0..n)
        .map(|v| bcc_runtime::vertex_rng(config.seed ^ 0xF1A7_C0DE, v))
        .collect();
    let mut announce_counts = vec![0usize; n];
    for e in 0..m {
        if !driver.active[e] || in_last_bundle.contains(&e) {
            continue;
        }
        let edge = graph.edge(e);
        let owner = edge.u.min(edge.v);
        if rngs[owner].gen::<f64>() < probability[e] {
            kept.push((e, owner));
            announce_counts[owner] += 1;
        }
    }
    let max_w = driver.weights.iter().cloned().fold(1.0f64, f64::max);
    let weight_bits = u64::from(payload::bits_for_real(max_w, 1.0));
    let id_bits = u64::from(ceil_log2(n.max(2) as u64));
    net.share_varying(&announce_counts, 2 * id_bits + weight_bits);

    kept.sort_unstable_by_key(|&(e, _)| e);
    driver.finish(kept)
}

/// Algorithm 4: the a-priori sampling reference (Koutis–Xu with the fixed-`t`
/// improvement of Kyng et al.). Communication is charged as if run in the
/// (unicast) CONGEST model, where a vertex can tell each neighbor the
/// outcome of the coin flip for their shared edge.
pub fn sparsify_a_priori(
    net: &mut Network,
    graph: &Graph,
    config: &SparsifierConfig,
) -> SparsifierOutput {
    let n = graph.n();
    let m = graph.m();
    let mut driver = Driver::new(graph);
    let ones = vec![1.0f64; m];
    net.begin_phase("sparsifier (a priori)");
    let mut rngs: Vec<_> = (0..n)
        .map(|v| bcc_runtime::vertex_rng(config.seed ^ 0x0A11_5EED, v))
        .collect();

    for iteration in 0..config.iterations {
        let params = SpannerParams {
            k: config.k,
            seed: config
                .seed
                .wrapping_add(0xB5AD_4ECE_DA1C_E2A9_u64.wrapping_mul(iteration as u64 + 1)),
        };
        let bundle = bundle_spanner(
            net,
            graph,
            &driver.weights,
            &ones,
            &driver.active,
            params,
            config.t,
        );
        let in_bundle: std::collections::BTreeSet<usize> = bundle.bundle.iter().copied().collect();
        // E_i := B_i ∪ {sampled quarter of the rest}.
        let mut sample_counts = vec![0usize; n];
        for e in 0..m {
            if !driver.active[e] || in_bundle.contains(&e) {
                continue;
            }
            let edge = graph.edge(e);
            let owner = edge.u.min(edge.v);
            sample_counts[owner] += 1;
            if rngs[owner].gen::<f64>() < 0.25 {
                driver.weights[e] *= 4.0;
            } else {
                driver.active[e] = false;
            }
        }
        // One unicast message per sampled edge to inform the other endpoint
        // (legal in CONGEST, the very step that is infeasible under the
        // broadcast constraint).
        net.share_varying(&sample_counts, 1);
        // Keep only bundle + surviving sampled edges active for the next round.
        for e in 0..m {
            if driver.active[e] && !in_bundle.contains(&e) {
                // stays active (sampled and survived)
            }
        }
        if iteration + 1 == config.iterations {
            // Final edge set: bundle plus survivors.
            let kept: Vec<(usize, usize)> = (0..m)
                .filter(|&e| driver.active[e])
                .map(|e| {
                    let edge = graph.edge(e);
                    (e, edge.u.min(edge.v))
                })
                .collect();
            return driver.finish(kept);
        }
    }
    // config.iterations == 0: the sparsifier is the input graph.
    let kept: Vec<(usize, usize)> = (0..m)
        .map(|e| {
            let edge = graph.edge(e);
            (e, edge.u.min(edge.v))
        })
        .collect();
    driver.finish(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::approximation_bounds;
    use bcc_graph::generators;
    use bcc_runtime::ModelConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn bc_network(g: &Graph) -> Network {
        Network::on_graph(ModelConfig::broadcast_congest(), g.adjacency_lists()).unwrap()
    }

    #[test]
    fn ad_hoc_sparsifier_is_connected_and_spectrally_close() {
        let mut rng = ChaCha8Rng::seed_from_u64(100);
        let g = generators::random_connected(30, 0.5, 4, &mut rng);
        let cfg = SparsifierConfig::laboratory(g.n(), g.m(), 0.5, 7)
            .with_t(6)
            .with_k(2);
        let mut net = bc_network(&g);
        let out = sparsify_ad_hoc(&mut net, &g, &cfg);
        assert!(out.sparsifier.is_connected());
        assert!(out.sparsifier.m() <= g.m());
        let (lo, hi) = approximation_bounds(&g, &out.sparsifier);
        assert!(lo > 0.2, "lower bound too small: {lo}");
        assert!(hi < 5.0, "upper bound too large: {hi}");
        assert!(net.ledger().total_rounds() > 0);
    }

    #[test]
    fn a_priori_sparsifier_is_connected_and_spectrally_close() {
        let mut rng = ChaCha8Rng::seed_from_u64(101);
        let g = generators::random_connected(30, 0.5, 4, &mut rng);
        let cfg = SparsifierConfig::laboratory(g.n(), g.m(), 0.5, 8)
            .with_t(6)
            .with_k(2);
        let mut net = bc_network(&g);
        let out = sparsify_a_priori(&mut net, &g, &cfg);
        assert!(out.sparsifier.is_connected());
        let (lo, hi) = approximation_bounds(&g, &out.sparsifier);
        assert!(lo > 0.2, "lower bound too small: {lo}");
        assert!(hi < 5.0, "upper bound too large: {hi}");
    }

    #[test]
    fn huge_t_keeps_the_whole_graph() {
        let g = generators::complete(12);
        let cfg = SparsifierConfig::laboratory(g.n(), g.m(), 0.5, 3)
            .with_t(100)
            .with_k(2)
            .with_iterations(2);
        let mut net = bc_network(&g);
        let out = sparsify_ad_hoc(&mut net, &g, &cfg);
        // With t far above m the bundle swallows every edge and the
        // sparsifier is the graph itself, exactly.
        assert_eq!(out.sparsifier.m(), g.m());
        let (lo, hi) = approximation_bounds(&g, &out.sparsifier);
        assert!((lo - 1.0).abs() < 1e-6 && (hi - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sparsifier_reduces_dense_graphs() {
        let g = generators::complete(40);
        let cfg = SparsifierConfig::laboratory(g.n(), g.m(), 1.0, 5)
            .with_t(3)
            .with_k(3)
            .with_iterations(4);
        let mut net = bc_network(&g);
        let out = sparsify_ad_hoc(&mut net, &g, &cfg);
        assert!(
            out.sparsifier.m() < 3 * g.m() / 4,
            "expected reduction, got {} of {}",
            out.sparsifier.m(),
            g.m()
        );
        assert!(out.sparsifier.is_connected());
    }

    #[test]
    fn edge_origin_and_orientation_are_consistent() {
        let g = generators::complete(15);
        let cfg = SparsifierConfig::laboratory(g.n(), g.m(), 0.5, 6)
            .with_t(2)
            .with_k(2);
        let mut net = bc_network(&g);
        let out = sparsify_ad_hoc(&mut net, &g, &cfg);
        assert_eq!(out.edge_origin.len(), out.sparsifier.m());
        assert_eq!(out.added_by.len(), out.sparsifier.m());
        for (i, &orig) in out.edge_origin.iter().enumerate() {
            let h_edge = out.sparsifier.edge(i);
            let g_edge = g.edge(orig);
            assert_eq!(h_edge.key(), g_edge.key());
            // Weights are the original weight times a power of 4.
            let ratio = h_edge.weight / g_edge.weight;
            let log4 = ratio.log2() / 2.0;
            assert!(
                (log4 - log4.round()).abs() < 1e-9,
                "ratio {ratio} not a power of 4"
            );
            // The responsible vertex is an endpoint.
            assert!(out.added_by[i] == g_edge.u || out.added_by[i] == g_edge.v);
        }
        let deg = out.out_degrees(g.n());
        assert_eq!(deg.iter().sum::<usize>(), out.sparsifier.m());
        assert!(out.max_out_degree(g.n()) >= 1);
    }

    #[test]
    fn barbell_bridge_is_never_lost() {
        // The bridge edge of a barbell has huge effective resistance; every
        // spanner must keep it, so it can never be sampled away.
        let g = generators::barbell(6, 1);
        let cfg = SparsifierConfig::laboratory(g.n(), g.m(), 0.5, 11)
            .with_t(2)
            .with_k(2);
        for seed in 0..5u64 {
            let cfg = SparsifierConfig { seed, ..cfg };
            let mut net = bc_network(&g);
            let out = sparsify_ad_hoc(&mut net, &g, &cfg);
            assert!(
                out.sparsifier.is_connected(),
                "seed {seed} disconnected the barbell"
            );
        }
    }
}
