//! Typed errors of the LP solver.

/// Errors raised by the LP solver on malformed instances or starting points.
///
/// The panicking [`crate::lp_solve`] is a thin wrapper over
/// [`crate::try_lp_solve`], which surfaces these values; new code — in
/// particular the `bcc_core::Session` facade — should call the fallible
/// variant.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The instance is dimensionally inconsistent or has invalid bounds.
    MalformedInstance(String),
    /// The starting point is not strictly inside the box bounds.
    NotInterior,
    /// The starting point violates the equality constraints `Aᵀx = b`.
    InfeasibleStart {
        /// The `‖Aᵀx₀ − b‖_∞` residual observed.
        residual: f64,
    },
    /// The inner `(AᵀDA)⁻¹` oracle rejected a system — e.g. the Gram matrix
    /// routed through the Gremban/Laplacian reduction is not symmetric
    /// diagonally dominant (the reduction's precondition, Lemma 5.1), or a
    /// dense solve found it singular.
    GramSolve {
        /// The [`crate::GramSolver::name`] of the failing oracle.
        solver: &'static str,
        /// What the oracle rejected.
        message: String,
    },
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::MalformedInstance(msg) => write!(f, "malformed LP instance: {msg}"),
            LpError::NotInterior => write!(f, "x0 must be strictly interior"),
            LpError::InfeasibleStart { residual } => write!(
                f,
                "x0 must satisfy the equality constraints (residual {residual})"
            ),
            LpError::GramSolve { solver, message } => {
                write!(f, "gram solver `{solver}` rejected a system: {message}")
            }
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = LpError::MalformedInstance("b must have length n".into());
        assert!(err.to_string().contains("b must have length n"));
        assert!(LpError::NotInterior.to_string().contains("interior"));
        let err = LpError::InfeasibleStart { residual: 0.25 };
        assert!(err.to_string().contains("0.25"));
        let err = LpError::GramSolve {
            solver: "gremban-laplacian",
            message: "row 3 is not diagonally dominant".into(),
        };
        assert!(err.to_string().contains("gremban-laplacian"));
        assert!(err.to_string().contains("row 3"));
    }
}
