//! Lewis-weight computation (Definition 4.3, Algorithms 7 and 8).
//!
//! The `ℓ_p` Lewis weights of a matrix `M` are the unique fixed point of
//! `w = σ(W^{1/2 − 1/p} M)`. The paper uses the *regularized* weights
//! `g(x) = w_p(A_x) + n/(2m)` with `p = 1 − 1/log(4m)` as the weight function
//! of its interior-point method.
//!
//! Two computation routines are provided:
//!
//! * [`regularized_lewis_weights`] — the practical driver used by the LP
//!   solver: a damped fixed-point iteration started from the leverage scores.
//!   For `p < 4` the fixed-point map is a contraction, so a warm start plus a
//!   handful of iterations reaches the accuracy the path following needs.
//!   (This replaces the `p`-homotopy of Algorithm 8, whose step count —
//!   `Θ(√n·log m)` calls — exists to keep every intermediate call inside the
//!   tiny trust region of Algorithm 7; the substitution is recorded in
//!   DESIGN.md.)
//! * [`compute_apx_weights`] — Algorithm 7 as stated: the damped update
//!   clipped to the multiplicative trust region `(1 ± r)·w⁽⁰⁾`, valid when
//!   the starting point is already close to the true weights.

use bcc_runtime::Network;

use crate::error::LpError;
use crate::gram::{GramSolver, ScaledMatrix};
use crate::leverage::{compute_leverage_scores, exact_leverage_scores, LeverageOptions};

/// Options shared by the Lewis-weight routines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LewisOptions {
    /// The `ℓ_p` exponent (the paper uses `p = 1 − 1/log(4m)`).
    pub p: f64,
    /// Accuracy passed to the leverage-score approximation.
    pub eta: f64,
    /// Number of fixed-point iterations.
    pub iterations: usize,
    /// Shared seed for the sketches.
    pub shared_seed: u64,
    /// Cap on the JL sketch dimension (laboratory runs), `None` = full.
    pub max_sketch_dimension: Option<usize>,
    /// When `true`, leverage scores are computed exactly (dense ground truth)
    /// instead of sketched — used by tests and ablations.
    pub exact_leverage: bool,
}

impl LewisOptions {
    /// The paper's exponent `p = 1 − 1/log₂(4m)` with laboratory iteration
    /// counts.
    pub fn laboratory(m: usize, shared_seed: u64) -> Self {
        LewisOptions {
            p: paper_exponent(m),
            eta: 0.25,
            iterations: 12,
            shared_seed,
            max_sketch_dimension: Some(40),
            exact_leverage: false,
        }
    }
}

/// The exponent `p = 1 − 1/log₂(4m)` from Definition 4.3.
pub fn paper_exponent(m: usize) -> f64 {
    1.0 - 1.0 / ((4 * m.max(1)) as f64).log2()
}

/// The regularization constant `c₀ = n/(2m)` from Definition 4.3.
pub fn regularization_constant(n: usize, m: usize) -> f64 {
    n as f64 / (2.0 * m.max(1) as f64)
}

fn leverage_of(
    net: &mut Network,
    m: &ScaledMatrix<'_>,
    w: &[f64],
    options: &LewisOptions,
    gram_solver: &dyn GramSolver,
    call_index: usize,
) -> Result<Vec<f64>, LpError> {
    // σ(W^{1/2 − 1/p} M): scale the rows of M by w_i^{1/2 − 1/p}.
    let exponent = 0.5 - 1.0 / options.p;
    let scales: Vec<f64> = m
        .scales()
        .iter()
        .zip(w)
        .map(|(d, wi)| d * wi.max(1e-300).powf(exponent))
        .collect();
    let rescaled = ScaledMatrix::new(m.a(), scales);
    if options.exact_leverage {
        Ok(exact_leverage_scores(&rescaled))
    } else {
        let lev_options = LeverageOptions {
            eta: options.eta,
            shared_seed: options
                .shared_seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(call_index as u64 + 1)),
            max_sketch_dimension: options.max_sketch_dimension,
        };
        compute_leverage_scores(net, &rescaled, &lev_options, gram_solver)
    }
}

/// Computes the regularized `ℓ_p` Lewis weights `g = w_p(M) + n/(2m)` of
/// `M = diag(d)·A` by damped fixed-point iteration started at the leverage
/// scores of `M`.
///
/// # Errors
///
/// Propagates [`LpError::GramSolve`] from the leverage-score computation.
pub fn regularized_lewis_weights(
    net: &mut Network,
    m: &ScaledMatrix<'_>,
    options: &LewisOptions,
    gram_solver: &dyn GramSolver,
) -> Result<Vec<f64>, LpError> {
    let raw = lewis_weights(net, m, options, gram_solver)?;
    let c0 = regularization_constant(m.n(), m.m());
    Ok(raw.into_iter().map(|w| w + c0).collect())
}

/// Computes (unregularized) `ℓ_p` Lewis weights by damped fixed-point
/// iteration.
///
/// # Errors
///
/// Propagates [`LpError::GramSolve`] from the leverage-score computation.
pub fn lewis_weights(
    net: &mut Network,
    m: &ScaledMatrix<'_>,
    options: &LewisOptions,
    gram_solver: &dyn GramSolver,
) -> Result<Vec<f64>, LpError> {
    assert!(
        options.p > 0.0 && options.p < 4.0,
        "the fixed point contracts only for p in (0, 4)"
    );
    net.begin_phase("lewis weights");
    // Start from the leverage scores of M itself (the p = 2 weights).
    let mut w: Vec<f64> = leverage_of(net, m, &vec![1.0; m.m()], options, gram_solver, 0)?
        .into_iter()
        .map(|s| s.clamp(1e-12, 1.0))
        .collect();
    for iteration in 0..options.iterations {
        let sigma = leverage_of(net, m, &w, options, gram_solver, iteration + 1)?;
        // Damped multiplicative update: w ← (w^{?}σ)… the undamped fixed point
        // is w = σ(W^{1/2−1/p}M); take a half-step in log space for stability.
        for (wi, si) in w.iter_mut().zip(&sigma) {
            let target = si.clamp(1e-12, 2.0);
            *wi = (wi.ln() * 0.5 + target.ln() * 0.5).exp();
        }
    }
    Ok(w)
}

/// Algorithm 7 (`ComputeApxWeights`): the damped update clipped to the
/// multiplicative trust region `(1 ± r)·w⁽⁰⁾`. Valid when
/// `‖(w⁽⁰⁾)⁻¹(w_p(M) − w⁽⁰⁾)‖_∞` is already small (Lemma 4.6); the LP solver
/// uses it for the per-step weight refresh ablation.
///
/// # Errors
///
/// Propagates [`LpError::GramSolve`] from the leverage-score computation.
pub fn compute_apx_weights(
    net: &mut Network,
    m: &ScaledMatrix<'_>,
    w0: &[f64],
    options: &LewisOptions,
    gram_solver: &dyn GramSolver,
) -> Result<Vec<f64>, LpError> {
    assert_eq!(w0.len(), m.m(), "one initial weight per row expected");
    let p = options.p;
    let big_l = 4.0f64.max(8.0 / p);
    let r = p * p * (4.0 - p) / 2.0f64.powi(20);
    let t = (80.0 * (p / 2.0 + 2.0 / p) * ((p * m.n() as f64 / (32.0 * options.eta)).max(2.0)).ln())
        .ceil() as usize;
    let iterations = t.min(options.iterations.max(1));
    let mut w = w0.to_vec();
    net.begin_phase("apx weights");
    for j in 0..iterations {
        let sigma = leverage_of(net, m, &w, options, gram_solver, j + 100)?;
        for i in 0..w.len() {
            let lo = (1.0 - r) * w0[i];
            let hi = (1.0 + r) * w0[i];
            let step = w[i] - (1.0 / big_l) * (w0[i] - (w0[i] / w[i].max(1e-300)) * sigma[i]);
            w[i] = bcc_linalg::vector::median3_scalar(lo, step, hi);
        }
    }
    Ok(w)
}

/// The fixed-point residual `‖w − σ(W^{1/2−1/p}M)‖_∞ / ‖w‖_∞` — a measure of
/// how close `w` is to being the true Lewis weights (diagnostic).
pub fn fixed_point_residual(m: &ScaledMatrix<'_>, w: &[f64], p: f64) -> f64 {
    let exponent = 0.5 - 1.0 / p;
    let scales: Vec<f64> = m
        .scales()
        .iter()
        .zip(w)
        .map(|(d, wi)| d * wi.max(1e-300).powf(exponent))
        .collect();
    let rescaled = ScaledMatrix::new(m.a(), scales);
    let sigma = exact_leverage_scores(&rescaled);
    let max_w = w.iter().fold(1e-300f64, |a, &b| a.max(b));
    w.iter()
        .zip(&sigma)
        .map(|(wi, si)| (wi - si).abs())
        .fold(0.0f64, f64::max)
        / max_w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gram::DenseGramSolver;
    use bcc_linalg::CsrMatrix;
    use bcc_runtime::ModelConfig;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_matrix(m: usize, n: usize, seed: u64) -> CsrMatrix {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut triplets = Vec::new();
        for r in 0..m {
            for c in 0..n {
                if rng.gen::<f64>() < 0.7 {
                    triplets.push((r, c, rng.gen::<f64>() * 2.0 - 1.0));
                }
            }
            triplets.push((r, r % n, 1.0 + rng.gen::<f64>()));
        }
        CsrMatrix::from_triplets(m, n, &triplets)
    }

    fn exact_options(_m: usize, p: f64) -> LewisOptions {
        LewisOptions {
            p,
            eta: 0.1,
            iterations: 30,
            shared_seed: 1,
            max_sketch_dimension: None,
            exact_leverage: true,
        }
    }

    #[test]
    fn paper_exponent_is_just_below_one() {
        let p = paper_exponent(100);
        assert!(p > 0.85 && p < 1.0);
        assert!(paper_exponent(10_000) > p);
    }

    #[test]
    fn lewis_weights_satisfy_the_fixed_point_equation() {
        let a = random_matrix(18, 4, 7);
        let m = ScaledMatrix::new(&a, vec![1.0; 18]);
        let p = paper_exponent(18);
        let mut net = Network::clique(ModelConfig::bcc(), 4);
        let w =
            lewis_weights(&mut net, &m, &exact_options(18, p), &DenseGramSolver::new()).unwrap();
        let residual = fixed_point_residual(&m, &w, p);
        assert!(residual < 0.05, "residual {residual}");
    }

    #[test]
    fn lewis_weights_sum_is_close_to_rank() {
        // Leverage scores sum to n, and ℓ_p Lewis weights for p near 1 also
        // sum to Θ(n).
        let a = random_matrix(25, 5, 8);
        let m = ScaledMatrix::new(&a, vec![1.0; 25]);
        let p = paper_exponent(25);
        let mut net = Network::clique(ModelConfig::bcc(), 5);
        let w =
            lewis_weights(&mut net, &m, &exact_options(25, p), &DenseGramSolver::new()).unwrap();
        let sum: f64 = w.iter().sum();
        assert!(sum > 2.0 && sum < 10.0, "sum = {sum}");
        let g =
            regularized_lewis_weights(&mut net, &m, &exact_options(25, p), &DenseGramSolver::new())
                .unwrap();
        let reg_sum: f64 = g.iter().sum();
        assert!(
            (reg_sum - (sum + 2.5)).abs() < 1.0,
            "regularized sum {reg_sum}"
        );
        assert!(g.iter().all(|&x| x >= regularization_constant(5, 25)));
    }

    #[test]
    fn p_equal_two_recovers_leverage_scores() {
        let a = random_matrix(15, 3, 9);
        let m = ScaledMatrix::new(&a, vec![1.0; 15]);
        let mut net = Network::clique(ModelConfig::bcc(), 3);
        let w = lewis_weights(
            &mut net,
            &m,
            &exact_options(15, 2.0),
            &DenseGramSolver::new(),
        )
        .unwrap();
        let sigma = exact_leverage_scores(&m);
        for (wi, si) in w.iter().zip(&sigma) {
            assert!((wi - si).abs() < 1e-3, "{wi} vs {si}");
        }
    }

    #[test]
    fn sketched_weights_are_close_to_exact_weights() {
        let a = random_matrix(20, 4, 10);
        let m = ScaledMatrix::new(&a, vec![1.0; 20]);
        let p = paper_exponent(20);
        let mut net = Network::clique(ModelConfig::bcc(), 4);
        let exact =
            lewis_weights(&mut net, &m, &exact_options(20, p), &DenseGramSolver::new()).unwrap();
        let sketched_options = LewisOptions {
            exact_leverage: false,
            eta: 0.2,
            iterations: 15,
            ..exact_options(20, p)
        };
        let sketched =
            lewis_weights(&mut net, &m, &sketched_options, &DenseGramSolver::new()).unwrap();
        let mean_rel: f64 = exact
            .iter()
            .zip(&sketched)
            .map(|(e, s)| (e - s).abs() / e.max(1e-6))
            .sum::<f64>()
            / exact.len() as f64;
        assert!(mean_rel < 0.6, "mean relative deviation {mean_rel}");
    }

    #[test]
    fn compute_apx_weights_stays_in_the_trust_region() {
        let a = random_matrix(16, 4, 11);
        let m = ScaledMatrix::new(&a, vec![1.0; 16]);
        let p = paper_exponent(16);
        let mut net = Network::clique(ModelConfig::bcc(), 4);
        // Start from the true weights: the clipped update must stay nearby.
        let w0 =
            lewis_weights(&mut net, &m, &exact_options(16, p), &DenseGramSolver::new()).unwrap();
        let options = LewisOptions {
            iterations: 5,
            ..exact_options(16, p)
        };
        let w = compute_apx_weights(&mut net, &m, &w0, &options, &DenseGramSolver::new()).unwrap();
        let r = p * p * (4.0 - p) / 2.0f64.powi(20);
        for (wi, w0i) in w.iter().zip(&w0) {
            assert!(*wi >= (1.0 - r) * w0i - 1e-12);
            assert!(*wi <= (1.0 + r) * w0i + 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn p_of_four_or_more_is_rejected() {
        let a = random_matrix(6, 2, 12);
        let m = ScaledMatrix::new(&a, vec![1.0; 6]);
        let mut net = Network::clique(ModelConfig::bcc(), 2);
        let _ = lewis_weights(
            &mut net,
            &m,
            &exact_options(6, 4.5),
            &DenseGramSolver::new(),
        );
    }
}
