//! 1-self-concordant barrier functions (Definition 4.1 / Section 4.1).
//!
//! Each variable domain `dom(xᵢ) = {x : lᵢ ≤ x ≤ uᵢ}` gets its own barrier:
//!
//! * `φ(x) = −log(x − l)` when only the lower bound is finite,
//! * `φ(x) = −log(u − x)` when only the upper bound is finite,
//! * the trigonometric barrier `φ(x) = −log cos(a·x + b)` with
//!   `a = π/(u − l)`, `b = −(π/2)·(u + l)/(u − l)` when both are finite.
//!
//! All three are 1-self-concordant; `φ`, `φ'` and `φ''` are computed locally
//! by the vertex that owns the variable.

/// The barrier of one variable's domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Barrier {
    /// `−log(x − l)`, for `l ≤ x < ∞`.
    LogLower {
        /// Finite lower bound.
        l: f64,
    },
    /// `−log(u − x)`, for `−∞ < x ≤ u`.
    LogUpper {
        /// Finite upper bound.
        u: f64,
    },
    /// `−log cos(a·x + b)`, for `l ≤ x ≤ u`.
    Trigonometric {
        /// Slope `a = π/(u − l)`.
        a: f64,
        /// Offset `b = −(π/2)(u + l)/(u − l)`.
        b: f64,
    },
}

impl Barrier {
    /// Selects the barrier for the domain `[l, u]` following Section 4.1.
    ///
    /// # Panics
    ///
    /// Panics if both bounds are infinite (the paper excludes free variables)
    /// or `l ≥ u`.
    pub fn from_bounds(l: f64, u: f64) -> Self {
        assert!(l < u, "lower bound must be below upper bound");
        match (l.is_finite(), u.is_finite()) {
            (true, false) => Barrier::LogLower { l },
            (false, true) => Barrier::LogUpper { u },
            (true, true) => {
                let a = std::f64::consts::PI / (u - l);
                let b = -std::f64::consts::FRAC_PI_2 * (u + l) / (u - l);
                Barrier::Trigonometric { a, b }
            }
            (false, false) => panic!("every variable needs at least one finite bound"),
        }
    }

    /// Barrier value `φ(x)`.
    pub fn value(&self, x: f64) -> f64 {
        match *self {
            Barrier::LogLower { l } => -(x - l).ln(),
            Barrier::LogUpper { u } => -(u - x).ln(),
            Barrier::Trigonometric { a, b } => -((a * x + b).cos()).ln(),
        }
    }

    /// First derivative `φ'(x)`.
    pub fn d1(&self, x: f64) -> f64 {
        match *self {
            Barrier::LogLower { l } => -1.0 / (x - l),
            Barrier::LogUpper { u } => 1.0 / (u - x),
            Barrier::Trigonometric { a, b } => a * (a * x + b).tan(),
        }
    }

    /// Second derivative `φ''(x)` (always positive on the domain interior).
    pub fn d2(&self, x: f64) -> f64 {
        match *self {
            Barrier::LogLower { l } => 1.0 / ((x - l) * (x - l)),
            Barrier::LogUpper { u } => 1.0 / ((u - x) * (u - x)),
            Barrier::Trigonometric { a, b } => {
                let c = (a * x + b).cos();
                a * a / (c * c)
            }
        }
    }

    /// Returns `true` if `x` lies strictly inside the barrier's domain.
    pub fn in_domain(&self, x: f64) -> bool {
        match *self {
            Barrier::LogLower { l } => x > l,
            Barrier::LogUpper { u } => x < u,
            Barrier::Trigonometric { a, b } => {
                let t = a * x + b;
                t > -std::f64::consts::FRAC_PI_2 && t < std::f64::consts::FRAC_PI_2
            }
        }
    }
}

/// The per-coordinate barriers of a whole LP.
#[derive(Debug, Clone, PartialEq)]
pub struct BarrierSystem {
    barriers: Vec<Barrier>,
}

impl BarrierSystem {
    /// Builds the barrier of every variable from the LP bounds.
    pub fn new(lower: &[f64], upper: &[f64]) -> Self {
        assert_eq!(lower.len(), upper.len());
        BarrierSystem {
            barriers: lower
                .iter()
                .zip(upper)
                .map(|(&l, &u)| Barrier::from_bounds(l, u))
                .collect(),
        }
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.barriers.len()
    }

    /// Returns `true` if there are no variables.
    pub fn is_empty(&self) -> bool {
        self.barriers.is_empty()
    }

    /// The barrier of variable `i`.
    pub fn barrier(&self, i: usize) -> &Barrier {
        &self.barriers[i]
    }

    /// `φ'(x)` coordinate-wise.
    pub fn gradient(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.barriers.len());
        x.iter()
            .zip(&self.barriers)
            .map(|(&xi, b)| b.d1(xi))
            .collect()
    }

    /// `φ''(x)` coordinate-wise.
    pub fn hessian(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.barriers.len());
        x.iter()
            .zip(&self.barriers)
            .map(|(&xi, b)| b.d2(xi))
            .collect()
    }

    /// Total barrier value `Σᵢ φᵢ(xᵢ)`.
    pub fn total_value(&self, x: &[f64]) -> f64 {
        x.iter()
            .zip(&self.barriers)
            .map(|(&xi, b)| b.value(xi))
            .sum()
    }

    /// Returns `true` if every coordinate is strictly inside its domain.
    pub fn in_domain(&self, x: &[f64]) -> bool {
        x.len() == self.barriers.len()
            && x.iter().zip(&self.barriers).all(|(&xi, b)| b.in_domain(xi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_derivative(f: impl Fn(f64) -> f64, x: f64) -> f64 {
        let h = 1e-6;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn bound_selection() {
        assert!(matches!(
            Barrier::from_bounds(0.0, f64::INFINITY),
            Barrier::LogLower { .. }
        ));
        assert!(matches!(
            Barrier::from_bounds(f64::NEG_INFINITY, 3.0),
            Barrier::LogUpper { .. }
        ));
        assert!(matches!(
            Barrier::from_bounds(0.0, 1.0),
            Barrier::Trigonometric { .. }
        ));
    }

    #[test]
    #[should_panic]
    fn free_variables_rejected() {
        let _ = Barrier::from_bounds(f64::NEG_INFINITY, f64::INFINITY);
    }

    #[test]
    fn derivatives_match_numeric_differences() {
        for barrier in [
            Barrier::from_bounds(0.5, f64::INFINITY),
            Barrier::from_bounds(f64::NEG_INFINITY, 2.0),
            Barrier::from_bounds(-1.0, 3.0),
        ] {
            for &x in &[1.0f64, 1.3, 1.9] {
                let d1 = barrier.d1(x);
                let num_d1 = numeric_derivative(|v| barrier.value(v), x);
                assert!(
                    (d1 - num_d1).abs() < 1e-5,
                    "{barrier:?} at {x}: {d1} vs {num_d1}"
                );
                let d2 = barrier.d2(x);
                let num_d2 = numeric_derivative(|v| barrier.d1(v), x);
                assert!(
                    (d2 - num_d2).abs() < 1e-4,
                    "{barrier:?} at {x}: {d2} vs {num_d2}"
                );
            }
        }
    }

    #[test]
    fn barrier_blows_up_at_the_boundary() {
        let b = Barrier::from_bounds(0.0, 1.0);
        assert!(b.value(0.5) < b.value(1e-6));
        assert!(b.value(0.5) < b.value(1.0 - 1e-6));
        assert!(b.d2(0.5) < b.d2(1e-6));
        assert!(b.in_domain(0.5));
        assert!(!b.in_domain(-0.1));
        assert!(!b.in_domain(1.1));
    }

    #[test]
    fn trig_barrier_is_symmetric_around_the_midpoint() {
        let b = Barrier::from_bounds(0.0, 2.0);
        assert!((b.value(0.7) - b.value(1.3)).abs() < 1e-9);
        assert!((b.d1(1.0)).abs() < 1e-9);
        assert!(b.d1(1.8) > 0.0);
        assert!(b.d1(0.2) < 0.0);
    }

    #[test]
    fn system_assembles_per_coordinate_values() {
        let system = BarrierSystem::new(&[0.0, 0.0], &[1.0, f64::INFINITY]);
        assert_eq!(system.len(), 2);
        assert!(!system.is_empty());
        let x = vec![0.5, 2.0];
        assert!(system.in_domain(&x));
        assert!(!system.in_domain(&[0.5, -1.0]));
        let g = system.gradient(&x);
        assert!((g[0] - system.barrier(0).d1(0.5)).abs() < 1e-12);
        assert!((g[1] - (-0.5)).abs() < 1e-12);
        let h = system.hessian(&x);
        assert!(h.iter().all(|&v| v > 0.0));
        assert!(system.total_value(&x).is_finite());
    }
}
