//! The top-level LP solver (`LPSolve`, Algorithm 9 / Theorem 1.4).
//!
//! Given an interior starting point `x₀`, the solver
//!
//! 1. computes initial weights `g(x₀)` (regularized Lewis weights, or all-ones
//!    for the uniform-barrier ablation),
//! 2. follows the weighted central path for the *auxiliary* cost
//!    `d = −g(x₀)∘φ'(x₀)` from `t = 1` down to a tiny `t₁` — `x₀` is exactly
//!    central for `d` at `t = 1`, and at `t₁` the influence of any cost vector
//!    is negligible, so the iterate ends up near the weighted analytic
//!    center, and
//! 3. follows the path for the *real* cost `c` from `t₁` up to
//!    `t₂ = Θ(c₁/ε)`, at which point the duality gap is at most `ε`.

use bcc_linalg::vector;
use bcc_runtime::Network;

use crate::barrier::BarrierSystem;
use crate::error::LpError;
use crate::gram::{GramSolver, ScaledMatrix};
use crate::instance::LpInstance;
use crate::lewis::{self, LewisOptions};
use crate::path_following::{path_following, PathOptions, PathStats};

/// The weight function used by the interior point method.
#[derive(Debug, Clone)]
pub enum WeightStrategy {
    /// `g(x) ≡ 1`: the classical logarithmic barrier. Path following needs
    /// `Θ(√m)` iterations — the baseline of the √n-vs-√m experiment (A2).
    Uniform,
    /// Regularized ℓ_p Lewis weights (Definition 4.3), `Θ(√n)` iterations.
    RegularizedLewis {
        /// Options of the Lewis-weight computation.
        options: LewisOptions,
    },
}

impl WeightStrategy {
    /// The paper's default: regularized Lewis weights with laboratory
    /// parameters.
    pub fn lewis_laboratory(m: usize, seed: u64) -> Self {
        WeightStrategy::RegularizedLewis {
            options: LewisOptions::laboratory(m, seed),
        }
    }

    fn initial_weights(
        &self,
        net: &mut Network,
        instance: &LpInstance,
        barriers: &BarrierSystem,
        x0: &[f64],
        gram_solver: &dyn GramSolver,
    ) -> Result<Vec<f64>, LpError> {
        match self {
            WeightStrategy::Uniform => Ok(vec![1.0; instance.m()]),
            WeightStrategy::RegularizedLewis { options } => {
                let phi2 = barriers.hessian(x0);
                let scales: Vec<f64> = phi2.iter().map(|v| 1.0 / v.sqrt()).collect();
                let ax = ScaledMatrix::new(&instance.a, scales);
                lewis::regularized_lewis_weights(net, &ax, options, gram_solver)
            }
        }
    }

    fn refresh(
        &self,
        net: &mut Network,
        instance: &LpInstance,
        barriers: &BarrierSystem,
        x: &[f64],
        current: &[f64],
        sweeps: usize,
        gram_solver: &dyn GramSolver,
    ) -> Result<Vec<f64>, LpError> {
        match self {
            WeightStrategy::Uniform => Ok(current.to_vec()),
            WeightStrategy::RegularizedLewis { options } => {
                if sweeps == 0 {
                    return Ok(current.to_vec());
                }
                let refresh_options = LewisOptions {
                    iterations: sweeps,
                    ..*options
                };
                let phi2 = barriers.hessian(x);
                let scales: Vec<f64> = phi2.iter().map(|v| 1.0 / v.sqrt()).collect();
                let ax = ScaledMatrix::new(&instance.a, scales);
                lewis::regularized_lewis_weights(net, &ax, &refresh_options, gram_solver)
            }
        }
    }
}

/// Options of [`lp_solve`].
#[derive(Debug, Clone)]
pub struct LpOptions {
    /// Additive objective accuracy `ε`.
    pub epsilon: f64,
    /// Weight function.
    pub strategy: WeightStrategy,
    /// Path-following tuning knobs.
    pub path: PathOptions,
    /// Override for the initial path parameter `t₁` (`None` = derived from
    /// the instance magnitude as in Algorithm 9).
    pub t_start_override: Option<f64>,
}

impl LpOptions {
    /// Laboratory defaults with the given accuracy and the Lewis-weight
    /// strategy.
    pub fn new(epsilon: f64, m: usize, seed: u64) -> Self {
        LpOptions {
            epsilon,
            strategy: WeightStrategy::lewis_laboratory(m, seed),
            path: PathOptions::default(),
            t_start_override: None,
        }
    }

    /// The same options with the uniform-weight (log-barrier) strategy.
    pub fn with_uniform_weights(mut self) -> Self {
        self.strategy = WeightStrategy::Uniform;
        self
    }
}

/// Result of [`lp_solve`].
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// The returned feasible point `x ∈ Ω°` with `cᵀx ≤ OPT + ε` (up to the
    /// laboratory constants).
    pub x: Vec<f64>,
    /// Objective value `cᵀx`.
    pub objective: f64,
    /// Statistics of the auxiliary (centering) phase.
    pub phase1: PathStats,
    /// Statistics of the optimization phase.
    pub phase2: PathStats,
    /// Total rounds charged on the network during the solve.
    pub rounds: u64,
}

impl LpSolution {
    /// Total number of path iterations across both phases — the quantity
    /// Theorem 1.4 bounds by `Õ(√n·log(U/ε))`.
    pub fn path_iterations(&self) -> usize {
        self.phase1.path_iterations + self.phase2.path_iterations
    }

    /// Total Gram solves (each costs `T(n, m)` rounds).
    pub fn gram_solves(&self) -> usize {
        self.phase1.gram_solves + self.phase2.gram_solves
    }
}

/// Solves `min { cᵀx : Aᵀx = b, l ≤ x ≤ u }` from the interior point `x0`
/// (Algorithm 9, `LPSolve`).
///
/// # Errors
///
/// * [`LpError::MalformedInstance`] — inconsistent dimensions or bounds.
/// * [`LpError::NotInterior`] — `x0` is not strictly inside the box bounds.
/// * [`LpError::InfeasibleStart`] — `Aᵀx0 ≠ b` beyond a small tolerance.
/// * [`LpError::GramSolve`] — the inner `(AᵀDA)⁻¹` oracle rejected a system
///   (e.g. a non-SDD Gram matrix routed through the Gremban reduction).
pub fn try_lp_solve(
    net: &mut Network,
    instance: &LpInstance,
    x0: &[f64],
    options: &LpOptions,
    gram_solver: &dyn GramSolver,
) -> Result<LpSolution, LpError> {
    instance.try_validate()?;
    if !instance.is_interior(x0) {
        return Err(LpError::NotInterior);
    }
    let residual = vector::norm_inf(&instance.equality_residual(x0));
    let tolerance = 1e-6 * (1.0 + vector::norm_inf(&instance.b));
    // Negate `<` instead of testing `>=` so a NaN residual (or NaN data in
    // `b`) is rejected rather than silently accepted.
    if !matches!(
        residual.partial_cmp(&tolerance),
        Some(std::cmp::Ordering::Less)
    ) {
        return Err(LpError::InfeasibleStart { residual });
    }
    lp_solve_unchecked(net, instance, x0, options, gram_solver)
}

/// Panicking variant of [`try_lp_solve`], kept for the pre-`Session` API.
///
/// # Panics
///
/// Panics if the instance is malformed, `x0` is not strictly interior, or
/// `Aᵀx0 ≠ b` beyond a small tolerance.
pub fn lp_solve(
    net: &mut Network,
    instance: &LpInstance,
    x0: &[f64],
    options: &LpOptions,
    gram_solver: &dyn GramSolver,
) -> LpSolution {
    try_lp_solve(net, instance, x0, options, gram_solver).unwrap_or_else(|e| panic!("{e}"))
}

fn lp_solve_unchecked(
    net: &mut Network,
    instance: &LpInstance,
    x0: &[f64],
    options: &LpOptions,
    gram_solver: &dyn GramSolver,
) -> Result<LpSolution, LpError> {
    let rounds_before = net.ledger().total_rounds();
    net.begin_phase("lp solve");

    let barriers = BarrierSystem::new(&instance.lower, &instance.upper);
    let m = instance.m() as f64;
    let u_param = instance.parameter_u(x0);

    // Initial weights and the auxiliary cost d = −g(x₀)∘φ'(x₀).
    let w0 = options
        .strategy
        .initial_weights(net, instance, &barriers, x0, gram_solver)?;
    let phi1 = barriers.gradient(x0);
    let d: Vec<f64> = w0.iter().zip(&phi1).map(|(wi, gi)| -wi * gi).collect();

    let c1: f64 = w0.iter().sum::<f64>().max(1.0);
    let t1 = options
        .t_start_override
        .unwrap_or_else(|| 1.0 / (1024.0 * m.powf(1.5) * u_param * u_param));
    let t2 = 2.0 * c1 / options.epsilon.max(1e-12);

    // Phase 1: from t = 1 down to t1 with the auxiliary cost.
    let strategy = &options.strategy;
    let sweeps = options.path.weight_refresh_sweeps;
    let (x_centered, w_centered, phase1) = path_following(
        net,
        instance,
        &barriers,
        x0.to_vec(),
        w0,
        1.0,
        t1,
        &d,
        &options.path,
        gram_solver,
        |net, x, w| strategy.refresh(net, instance, &barriers, x, w, sweeps, gram_solver),
    )?;

    // Phase 2: from t1 up to t2 with the real cost.
    let (x_final, _w_final, phase2) = path_following(
        net,
        instance,
        &barriers,
        x_centered,
        w_centered,
        t1,
        t2,
        &instance.c,
        &options.path,
        gram_solver,
        |net, x, w| strategy.refresh(net, instance, &barriers, x, w, sweeps, gram_solver),
    )?;

    Ok(LpSolution {
        objective: instance.objective(&x_final),
        x: x_final,
        phase1,
        phase2,
        rounds: net.ledger().total_rounds() - rounds_before,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gram::DenseGramSolver;
    use bcc_linalg::CsrMatrix;
    use bcc_runtime::ModelConfig;

    /// min x₁ s.t. x₀ + x₁ = 1, 0 ≤ x ≤ 1 (optimum 0 at x = (1, 0)).
    fn simple_lp() -> LpInstance {
        LpInstance {
            a: CsrMatrix::from_triplets(2, 1, &[(0, 0, 1.0), (1, 0, 1.0)]),
            b: vec![1.0],
            c: vec![0.0, 1.0],
            lower: vec![0.0, 0.0],
            upper: vec![1.0, 1.0],
        }
    }

    /// A transportation-style LP:
    /// min Σ cᵢxᵢ over a path of 3 "edges" carrying one unit of demand with
    /// upper bounds; variables x₀..x₂, constraints x₀+x₁ = 1, x₁−x₂ = 0.3.
    fn second_lp() -> (LpInstance, Vec<f64>) {
        let a =
            CsrMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (1, 0, 1.0), (1, 1, 1.0), (2, 1, -1.0)]);
        let lp = LpInstance {
            a,
            b: vec![1.0, 0.3],
            c: vec![1.0, 3.0, 1.0],
            lower: vec![0.0, 0.0, 0.0],
            upper: vec![2.0, 2.0, 2.0],
        };
        // Interior start: x1 = 0.5, x0 = 0.5, x2 = 0.2.
        let x0 = vec![0.5, 0.5, 0.2];
        (lp, x0)
    }

    #[test]
    fn solves_the_simple_lp_with_uniform_weights() {
        let lp = simple_lp();
        let mut net = Network::clique(ModelConfig::bcc(), 2);
        let options = LpOptions::new(1e-3, lp.m(), 1).with_uniform_weights();
        let solution = lp_solve(
            &mut net,
            &lp,
            &[0.5, 0.5],
            &options,
            &DenseGramSolver::new(),
        );
        assert!(lp.is_feasible(&solution.x, 1e-6));
        assert!(
            solution.objective < 5e-3,
            "objective {}",
            solution.objective
        );
        assert!(solution.rounds > 0);
        assert!(solution.path_iterations() > 0);
    }

    #[test]
    fn solves_the_simple_lp_with_lewis_weights() {
        let lp = simple_lp();
        let mut net = Network::clique(ModelConfig::bcc(), 2);
        let mut options = LpOptions::new(1e-3, lp.m(), 2);
        if let WeightStrategy::RegularizedLewis { options: lewis } = &mut options.strategy {
            lewis.exact_leverage = true;
            lewis.iterations = 6;
        }
        let solution = lp_solve(
            &mut net,
            &lp,
            &[0.5, 0.5],
            &options,
            &DenseGramSolver::new(),
        );
        assert!(lp.is_feasible(&solution.x, 1e-6));
        assert!(
            solution.objective < 5e-3,
            "objective {}",
            solution.objective
        );
    }

    #[test]
    fn second_lp_reaches_the_known_optimum() {
        let (lp, x0) = second_lp();
        assert!(lp.is_feasible(&x0, 1e-9));
        // Optimum: x1 carries as little as possible: x1 = 0.3 (forced by
        // x1 - x2 = 0.3 and x2 ≥ 0 ⇒ x1 ≥ 0.3), x0 = 0.7, x2 = 0.
        // Optimal cost = 0.7 + 0.9 + 0 = 1.6.
        let mut net = Network::clique(ModelConfig::bcc(), 2);
        let options = LpOptions::new(1e-3, lp.m(), 3).with_uniform_weights();
        let solution = lp_solve(&mut net, &lp, &x0, &options, &DenseGramSolver::new());
        assert!(lp.is_feasible(&solution.x, 1e-5));
        assert!(
            (solution.objective - 1.6).abs() < 2e-2,
            "objective {}",
            solution.objective
        );
    }

    #[test]
    fn tighter_epsilon_costs_more_iterations() {
        let lp = simple_lp();
        let mut net = Network::clique(ModelConfig::bcc(), 2);
        let coarse = lp_solve(
            &mut net,
            &lp,
            &[0.5, 0.5],
            &LpOptions::new(1e-1, lp.m(), 4).with_uniform_weights(),
            &DenseGramSolver::new(),
        );
        let fine = lp_solve(
            &mut net,
            &lp,
            &[0.5, 0.5],
            &LpOptions::new(1e-5, lp.m(), 4).with_uniform_weights(),
            &DenseGramSolver::new(),
        );
        assert!(fine.path_iterations() > coarse.path_iterations());
        assert!(fine.objective <= coarse.objective + 1e-9);
    }

    #[test]
    #[should_panic]
    fn non_interior_start_is_rejected() {
        let lp = simple_lp();
        let mut net = Network::clique(ModelConfig::bcc(), 2);
        let options = LpOptions::new(1e-2, lp.m(), 5).with_uniform_weights();
        let _ = lp_solve(
            &mut net,
            &lp,
            &[1.0, 0.0],
            &options,
            &DenseGramSolver::new(),
        );
    }

    #[test]
    #[should_panic]
    fn infeasible_start_is_rejected() {
        let lp = simple_lp();
        let mut net = Network::clique(ModelConfig::bcc(), 2);
        let options = LpOptions::new(1e-2, lp.m(), 6).with_uniform_weights();
        let _ = lp_solve(
            &mut net,
            &lp,
            &[0.4, 0.4],
            &options,
            &DenseGramSolver::new(),
        );
    }
}
