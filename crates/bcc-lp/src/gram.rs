//! Scaled constraint matrices and the `(AᵀDA)⁻¹` oracle.
//!
//! Every iteration of the LP solver needs products with `A`, `Aᵀ` and a solve
//! with a Gram matrix `AᵀDA` for a positive diagonal `D`. Theorem 1.4
//! abstracts the latter as an oracle running in `T(n, m)` rounds; for the
//! min-cost-flow LP of Section 5 it is instantiated with the Gremban/SDD
//! Laplacian solver, while generic instances (and ground-truth tests) use a
//! dense local solve. The [`GramSolver`] trait captures that abstraction.

use bcc_linalg::{CsrMatrix, DenseMatrix};
use bcc_runtime::{payload, Network};

use crate::error::LpError;

/// `M = diag(d)·A` for a sparse `A` and positive diagonal `d` (length `m`).
///
/// This is the shape of every matrix the LP solver needs: the rescaled
/// constraint matrices `A_x = Φ''(x)^{-1/2}A` and `W^{1/2−1/p}A_x`.
#[derive(Debug, Clone)]
pub struct ScaledMatrix<'a> {
    a: &'a CsrMatrix,
    d: Vec<f64>,
}

impl<'a> ScaledMatrix<'a> {
    /// Creates `diag(d)·A`.
    ///
    /// # Panics
    ///
    /// Panics if `d` has the wrong length or non-positive entries.
    pub fn new(a: &'a CsrMatrix, d: Vec<f64>) -> Self {
        assert_eq!(d.len(), a.rows(), "one scale per row expected");
        assert!(
            d.iter().all(|&v| v > 0.0 && v.is_finite()),
            "scales must be positive"
        );
        ScaledMatrix { a, d }
    }

    /// Number of rows `m`.
    pub fn m(&self) -> usize {
        self.a.rows()
    }

    /// Number of columns `n`.
    pub fn n(&self) -> usize {
        self.a.cols()
    }

    /// The underlying constraint matrix.
    pub fn a(&self) -> &CsrMatrix {
        self.a
    }

    /// The row scales `d`.
    pub fn scales(&self) -> &[f64] {
        &self.d
    }

    /// `M x = D A x`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = self.a.matvec(x);
        for (yi, di) in y.iter_mut().zip(&self.d) {
            *yi *= di;
        }
        y
    }

    /// `Mᵀ y = Aᵀ D y`.
    pub fn apply_transpose(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.m(), "dimension mismatch");
        let scaled: Vec<f64> = y.iter().zip(&self.d).map(|(yi, di)| yi * di).collect();
        self.a.matvec_transpose(&scaled)
    }

    /// The diagonal of `MᵀM = AᵀD²A` viewed as the Gram scales `d²`.
    pub fn gram_diagonal_scales(&self) -> Vec<f64> {
        self.d.iter().map(|v| v * v).collect()
    }
}

/// An oracle that solves `(AᵀDA)x = y` to high precision, charging `T(n, m)`
/// rounds on the network (the assumption of Theorem 1.4).
pub trait GramSolver {
    /// Solves `(Aᵀ·diag(d)·A) x = y`.
    ///
    /// `d` has length `m` (strictly positive), `y` length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::GramSolve`] when the oracle's structural
    /// precondition fails — e.g. `AᵀDA` is not symmetric diagonally dominant
    /// for a solver routing through the Gremban/Laplacian reduction, or the
    /// Gram matrix is singular for a dense solver. The LP driver propagates
    /// the error instead of panicking.
    fn solve(
        &self,
        net: &mut Network,
        a: &CsrMatrix,
        d: &[f64],
        y: &[f64],
    ) -> Result<Vec<f64>, LpError>;

    /// A short description used in experiment reports.
    fn name(&self) -> &'static str {
        "gram-solver"
    }
}

/// Dense local Gram solver: assembles `AᵀDA` (an `n × n` matrix) and solves it
/// exactly.
///
/// Communication accounting: in the BCC each vertex owns the rows of `A`
/// touching it, so assembling its own row of the `n × n` Gram matrix is local;
/// exchanging the right-hand side and the solution costs one coordinate
/// broadcast each, plus `O(log(1/precision))` rounds of iterative refinement
/// in the general (non-SDD) case, which we charge as a small polylogarithmic
/// constant.
#[derive(Debug, Clone, Copy, Default)]
pub struct DenseGramSolver {
    /// Number of refinement sweeps charged per solve.
    pub charged_sweeps: u64,
}

impl DenseGramSolver {
    /// A solver charging the default 8 refinement sweeps.
    pub fn new() -> Self {
        DenseGramSolver { charged_sweeps: 8 }
    }
}

impl GramSolver for DenseGramSolver {
    fn solve(
        &self,
        net: &mut Network,
        a: &CsrMatrix,
        d: &[f64],
        y: &[f64],
    ) -> Result<Vec<f64>, LpError> {
        assert_eq!(d.len(), a.rows(), "dimension mismatch");
        assert_eq!(y.len(), a.cols(), "dimension mismatch");
        let bits = u64::from(payload::bits_for_real(1e9, 1e-9));
        for _ in 0..self.charged_sweeps.max(1) {
            net.share_scalars(bits);
        }
        let gram = a.gram_with_diagonal(d);
        gram.solve(y)
            .or_else(|| gram.solve_psd(y, false))
            .ok_or_else(|| LpError::GramSolve {
                solver: self.name(),
                message: "AᵀDA is singular (rank-deficient constraint matrix)".into(),
            })
    }

    fn name(&self) -> &'static str {
        "dense"
    }
}

/// Assembles the dense Gram matrix `AᵀDA` (test helper / ground truth).
pub fn dense_gram(a: &CsrMatrix, d: &[f64]) -> DenseMatrix {
    a.gram_with_diagonal(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_linalg::vector;
    use bcc_runtime::ModelConfig;

    fn sample_a() -> CsrMatrix {
        // 4 variables, 2 constraints.
        CsrMatrix::from_triplets(
            4,
            2,
            &[
                (0, 0, 1.0),
                (1, 0, -1.0),
                (1, 1, 2.0),
                (2, 1, 1.0),
                (3, 0, 0.5),
                (3, 1, -0.5),
            ],
        )
    }

    #[test]
    fn scaled_matrix_products_match_dense() {
        let a = sample_a();
        let d = vec![1.0, 2.0, 3.0, 4.0];
        let m = ScaledMatrix::new(&a, d.clone());
        assert_eq!(m.m(), 4);
        assert_eq!(m.n(), 2);
        let x = vec![1.0, -1.0];
        let expected: Vec<f64> = a.matvec(&x).iter().zip(&d).map(|(v, di)| v * di).collect();
        assert_eq!(m.apply(&x), expected);
        let y = vec![1.0, 0.0, -1.0, 2.0];
        // ⟨Mx, y⟩ = ⟨x, Mᵀy⟩.
        let lhs = vector::dot(&m.apply(&x), &y);
        let rhs = vector::dot(&x, &m.apply_transpose(&y));
        assert!((lhs - rhs).abs() < 1e-12);
        assert_eq!(m.gram_diagonal_scales(), vec![1.0, 4.0, 9.0, 16.0]);
    }

    #[test]
    #[should_panic]
    fn non_positive_scales_rejected() {
        let a = sample_a();
        let _ = ScaledMatrix::new(&a, vec![1.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn dense_gram_solver_inverts_the_gram_matrix() {
        let a = sample_a();
        let d = vec![0.5, 1.5, 2.0, 1.0];
        let solver = DenseGramSolver::new();
        let mut net = Network::clique(ModelConfig::bcc(), 4);
        let x_true = vec![2.0, -3.0];
        let y = dense_gram(&a, &d).matvec(&x_true);
        let x = solver.solve(&mut net, &a, &d, &y).unwrap();
        assert!(vector::approx_eq(&x, &x_true, 1e-9));
        assert!(net.ledger().total_rounds() > 0);
        assert_eq!(solver.name(), "dense");
    }
}
