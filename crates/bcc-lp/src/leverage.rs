//! Leverage-score approximation (Algorithm 6, Lemma 4.5).
//!
//! The leverage scores of `M ∈ R^{m×n}` are
//! `σ(M) = diag(M(MᵀM)⁻¹Mᵀ)`. Computing them exactly is as expensive as
//! inverting the Gram matrix for every standard basis vector, so the paper
//! approximates them via `σ(M)ᵢ = ‖M(MᵀM)⁻¹Mᵀ eᵢ‖₂²` and a
//! Johnson–Lindenstrauss sketch. Crucially, the sketch is expanded from
//! `O(log² m)` *shared* random bits (Kane–Nelson, Theorem 4.4): a leader
//! samples and broadcasts them, every vertex builds the same `Q` locally, and
//! the per-row evaluation only needs `k = Θ(log(m)/η²)` multiplications by
//! `M`, `Mᵀ` and Gram solves — all operations the Broadcast Congested Clique
//! supports.

use bcc_linalg::{DenseMatrix, JlSketch, SketchKind};
use bcc_runtime::{Network, SharedRandomness};

use crate::error::LpError;
use crate::gram::{GramSolver, ScaledMatrix};

/// Parameters of the leverage-score approximation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeverageOptions {
    /// Target multiplicative accuracy `η` (each score within `(1 ± η)`).
    pub eta: f64,
    /// Shared seed the leader broadcasts.
    pub shared_seed: u64,
    /// Optional cap on the sketch dimension `k` (laboratory runs); `None`
    /// uses the full `Θ(log(m)/η²)` dimension.
    pub max_sketch_dimension: Option<usize>,
}

impl LeverageOptions {
    /// Options with the given accuracy and seed and no dimension cap.
    pub fn new(eta: f64, shared_seed: u64) -> Self {
        LeverageOptions {
            eta,
            shared_seed,
            max_sketch_dimension: None,
        }
    }
}

/// Approximates the leverage scores of `M = diag(d)·A` (Algorithm 6).
///
/// Charges on `net`: one leader election plus the broadcast of `Θ(log² m)`
/// shared bits, and `k` rounds of (matrix product + Gram solve), the latter
/// through `gram_solver`.
///
/// # Errors
///
/// Propagates [`LpError::GramSolve`] from the inner `(AᵀDA)⁻¹` oracle.
pub fn compute_leverage_scores(
    net: &mut Network,
    m: &ScaledMatrix<'_>,
    options: &LeverageOptions,
    gram_solver: &dyn GramSolver,
) -> Result<Vec<f64>, LpError> {
    assert!(
        options.eta > 0.0 && options.eta < 1.0,
        "eta must lie in (0, 1)"
    );
    let rows = m.m();
    net.begin_phase("leverage scores");
    // Shared randomness: Θ(log² m) bits sampled by the leader (Theorem 4.4).
    let bits = JlSketch::shared_bits_needed(rows);
    let shared = SharedRandomness::sample_and_broadcast(net, options.shared_seed, bits)
        .expect("network has at least one vertex");
    let mut k = JlSketch::dimension_for(rows, options.eta);
    if let Some(cap) = options.max_sketch_dimension {
        k = k.min(cap.max(1));
    }
    let sketch = JlSketch::from_shared_seed(
        SketchKind::DenseRademacher,
        k,
        rows,
        options.shared_seed ^ shared.bits(),
    );

    let gram_scales = m.gram_diagonal_scales();
    let mut sigma = vec![0.0; rows];
    for j in 0..k {
        // p(j) = M (MᵀM)⁻¹ Mᵀ Q(j), evaluated right to left.
        let q_row = sketch.row(j);
        let mt_q = m.apply_transpose(&q_row);
        let solved = gram_solver.solve(net, m.a(), &gram_scales, &mt_q)?;
        let p_j = m.apply(&solved);
        for (s, v) in sigma.iter_mut().zip(&p_j) {
            *s += v * v;
        }
    }
    Ok(sigma)
}

/// Exact leverage scores via a dense pseudo-inverse (ground truth for tests
/// and experiments; `O(n³ + mn²)` local work).
pub fn exact_leverage_scores(m: &ScaledMatrix<'_>) -> Vec<f64> {
    let rows = m.m();
    let cols = m.n();
    // Dense M.
    let mut dense = DenseMatrix::zeros(rows, cols);
    for r in 0..rows {
        for (c, v) in m.a().row(r) {
            dense.add_to(r, c, v * m.scales()[r]);
        }
    }
    let gram = dense.transpose().matmul(&dense);
    let mut scores = vec![0.0; rows];
    for i in 0..rows {
        let row_i: Vec<f64> = (0..cols).map(|c| dense.get(i, c)).collect();
        let solved = gram
            .solve(&row_i)
            .or_else(|| gram.solve_psd(&row_i, false))
            .expect("Gram matrix invertible");
        // σ_i = m_iᵀ (MᵀM)⁻¹ m_i.
        scores[i] = row_i.iter().zip(&solved).map(|(a, b)| a * b).sum();
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gram::DenseGramSolver;
    use bcc_linalg::CsrMatrix;
    use bcc_runtime::ModelConfig;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_matrix(m: usize, n: usize, seed: u64) -> CsrMatrix {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut triplets = Vec::new();
        for r in 0..m {
            for c in 0..n {
                if rng.gen::<f64>() < 0.6 {
                    triplets.push((r, c, rng.gen::<f64>() * 2.0 - 1.0));
                }
            }
            // Guarantee no zero rows.
            triplets.push((r, r % n, 1.0 + rng.gen::<f64>()));
        }
        CsrMatrix::from_triplets(m, n, &triplets)
    }

    #[test]
    fn exact_scores_sum_to_rank_and_lie_in_unit_interval() {
        let a = random_matrix(20, 5, 1);
        let m = ScaledMatrix::new(&a, vec![1.0; 20]);
        let scores = exact_leverage_scores(&m);
        let sum: f64 = scores.iter().sum();
        assert!((sum - 5.0).abs() < 1e-6, "sum = {sum}");
        assert!(scores.iter().all(|&s| s > -1e-9 && s < 1.0 + 1e-9));
    }

    #[test]
    fn scaling_a_row_up_increases_its_leverage() {
        let a = random_matrix(12, 4, 2);
        let base = ScaledMatrix::new(&a, vec![1.0; 12]);
        let mut scales = vec![1.0; 12];
        scales[3] = 10.0;
        let boosted = ScaledMatrix::new(&a, scales);
        let s0 = exact_leverage_scores(&base);
        let s1 = exact_leverage_scores(&boosted);
        assert!(s1[3] > s0[3]);
    }

    #[test]
    fn sketched_scores_approximate_exact_scores() {
        let a = random_matrix(40, 6, 3);
        let m = ScaledMatrix::new(&a, vec![1.0; 40]);
        let exact = exact_leverage_scores(&m);
        let mut net = Network::clique(ModelConfig::bcc(), 6);
        let options = LeverageOptions::new(0.5, 77);
        let approx =
            compute_leverage_scores(&mut net, &m, &options, &DenseGramSolver::new()).unwrap();
        // Average relative error well within the JL distortion.
        let mut total_rel = 0.0;
        for (e, ap) in exact.iter().zip(&approx) {
            if *e > 1e-6 {
                total_rel += (e - ap).abs() / e;
            }
        }
        let mean_rel = total_rel / exact.len() as f64;
        assert!(mean_rel < 0.5, "mean relative error {mean_rel}");
        assert!(net.ledger().total_rounds() > 0);
    }

    #[test]
    fn sketch_dimension_cap_is_respected_and_charged_less() {
        let a = random_matrix(30, 5, 4);
        let m = ScaledMatrix::new(&a, vec![1.0; 30]);
        let mut full_net = Network::clique(ModelConfig::bcc(), 5);
        let mut capped_net = Network::clique(ModelConfig::bcc(), 5);
        let full = LeverageOptions::new(0.5, 5);
        let capped = LeverageOptions {
            max_sketch_dimension: Some(4),
            ..full
        };
        let _ = compute_leverage_scores(&mut full_net, &m, &full, &DenseGramSolver::new()).unwrap();
        let _ =
            compute_leverage_scores(&mut capped_net, &m, &capped, &DenseGramSolver::new()).unwrap();
        assert!(capped_net.ledger().total_rounds() < full_net.ledger().total_rounds());
    }

    #[test]
    #[should_panic]
    fn eta_must_be_a_probability_like_accuracy() {
        let a = random_matrix(6, 2, 5);
        let m = ScaledMatrix::new(&a, vec![1.0; 6]);
        let mut net = Network::clique(ModelConfig::bcc(), 2);
        let _ = compute_leverage_scores(
            &mut net,
            &m,
            &LeverageOptions::new(1.5, 1),
            &DenseGramSolver::new(),
        );
    }
}
