//! Projection onto a mixed-norm ball (Section 4.3, Lemma 4.10).
//!
//! The LP solver's weight-update step needs
//! `argmax { aᵀx : ‖x‖₂ + ‖l⁻¹x‖_∞ ≤ 1 }` for vectors `a, l` distributed over
//! the network. Lee–Sidford solve this by sorting the coordinates and
//! precomputing `m` prefix sums — both infeasible as-is in the Broadcast
//! Congested Clique. The paper's remedy (which this module follows) is:
//!
//! * the coordinates are only sorted *implicitly*: the search walks over the
//!   threshold values `|a_i|·l_i` rather than over indices;
//! * the maximization over the threshold is a binary/ternary search over a
//!   one-dimensional *concave* function, so only `O(log(poly(m)·U/ε))`
//!   candidate thresholds are ever evaluated, and each evaluation needs a
//!   constant number of global aggregate sums (`Σ a_k²`, `Σ l_k²`,
//!   `Σ |a_k l_k|` over the prefix), each one broadcast round.
//!
//! Internally the maximization is parameterized by `s = ‖l⁻¹x‖_∞ ∈ [0, 1]`:
//! for fixed `s` the problem becomes a box-and-ball constrained linear
//! maximization solved by water-filling, and the value `g(s)` is concave.

use bcc_linalg::vector;
use bcc_runtime::{payload, Network};

/// Result of a mixed-ball projection.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedBallProjection {
    /// The maximizer `x`.
    pub x: Vec<f64>,
    /// The attained value `aᵀx`.
    pub value: f64,
    /// The split parameter `s = ‖l⁻¹x‖_∞` of the maximizer.
    pub split: f64,
}

/// Solves `argmax { aᵀx : ‖x‖₂ + ‖l⁻¹x‖_∞ ≤ 1 }` (Lemma 4.10).
///
/// Rounds charged: `O(log(U/ε))` search iterations, each consisting of a
/// constant number of scalar aggregations.
///
/// # Panics
///
/// Panics if `l` contains non-positive or non-finite entries or the lengths
/// differ.
pub fn project_mixed_ball(net: &mut Network, a: &[f64], l: &[f64]) -> MixedBallProjection {
    assert_eq!(a.len(), l.len(), "dimension mismatch");
    assert!(
        l.iter().all(|&v| v > 0.0 && v.is_finite()),
        "the scaling vector l must be positive and finite"
    );
    net.begin_phase("mixed ball projection");
    let m = a.len();
    if m == 0 || a.iter().all(|&v| v == 0.0) {
        return MixedBallProjection {
            x: vec![0.0; m],
            value: 0.0,
            split: 0.0,
        };
    }

    // Ternary search over the concave g(s). 60 iterations give ~1e-12 width.
    let iterations = 60;
    let bits = u64::from(payload::bits_for_real(1e6, 1e-6));
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    for _ in 0..iterations {
        // Each candidate evaluation aggregates three prefix sums.
        net.aggregate_scalar(bits);
        net.aggregate_scalar(bits);
        net.aggregate_scalar(bits);
        let s1 = lo + (hi - lo) / 3.0;
        let s2 = hi - (hi - lo) / 3.0;
        if evaluate_split(a, l, s1).1 < evaluate_split(a, l, s2).1 {
            lo = s1;
        } else {
            hi = s2;
        }
    }
    let mut best = evaluate_split(a, l, (lo + hi) / 2.0);
    // Also try the endpoints — g can attain its maximum at s = 0.
    for s in [0.0, lo, hi, 1.0] {
        let candidate = evaluate_split(a, l, s);
        if candidate.1 > best.1 {
            best = candidate;
        }
    }
    let (x, value, split) = best;
    MixedBallProjection { x, value, split }
}

/// For a fixed split `s`, maximizes `aᵀx` subject to `|x_i| ≤ s·l_i` and
/// `‖x‖₂ ≤ 1 − s` by water-filling. Returns `(x, value, s)`.
fn evaluate_split(a: &[f64], l: &[f64], s: f64) -> (Vec<f64>, f64, f64) {
    let m = a.len();
    let radius = (1.0 - s).max(0.0);
    let caps: Vec<f64> = l.iter().map(|&li| s * li).collect();
    if radius <= 0.0 {
        // Only the box matters and it forces x towards the cap in every
        // coordinate, but the ℓ₂ budget is zero: x = 0.
        return (vec![0.0; m], 0.0, s);
    }
    // If the full box fits inside the ball, take it.
    let box_norm_sq: f64 = caps.iter().map(|c| c * c).sum();
    if box_norm_sq <= radius * radius {
        let x: Vec<f64> = a
            .iter()
            .zip(&caps)
            .map(|(&ai, &ci)| ai.signum() * ci)
            .collect();
        let value = vector::dot(&x, a).abs();
        let x_signed: Vec<f64> = a
            .iter()
            .zip(&caps)
            .map(|(&ai, &ci)| if ai >= 0.0 { ci } else { -ci })
            .collect();
        let value_signed: f64 = x_signed.iter().zip(a).map(|(xi, ai)| xi * ai).sum();
        let _ = value;
        return (x_signed, value_signed, s);
    }
    // Water-filling: x_i = sign(a_i)·min(cap_i, λ|a_i|) with λ such that the
    // ℓ₂ budget is met. Sort breakpoints cap_i/|a_i| ascending.
    let mut order: Vec<usize> = (0..m).collect();
    let breakpoint = |i: usize| -> f64 {
        if a[i].abs() < 1e-300 {
            f64::INFINITY
        } else {
            caps[i] / a[i].abs()
        }
    };
    order.sort_by(|&i, &j| {
        breakpoint(i)
            .partial_cmp(&breakpoint(j))
            .expect("breakpoints are comparable")
    });
    // Prefix sums over the sorted order.
    let mut saturated_norm_sq = 0.0; // Σ cap_i² over saturated prefix
    let mut remaining_a_sq: f64 = a.iter().map(|v| v * v).sum();
    let mut lambda = None;
    for (rank, &i) in order.iter().enumerate() {
        // Candidate: the first `rank` coordinates saturated, the rest scaled
        // by λ.
        let lam_sq = if remaining_a_sq > 1e-300 {
            (radius * radius - saturated_norm_sq).max(0.0) / remaining_a_sq
        } else {
            f64::INFINITY
        };
        let lam = lam_sq.sqrt();
        let lower = if rank == 0 {
            0.0
        } else {
            breakpoint(order[rank - 1])
        };
        let upper = breakpoint(i);
        if lam >= lower - 1e-12 && lam <= upper + 1e-12 {
            lambda = Some(lam);
            break;
        }
        // Saturate coordinate i and continue.
        saturated_norm_sq += caps[i] * caps[i];
        remaining_a_sq -= a[i] * a[i];
    }
    let lam = lambda.unwrap_or({
        // Everything saturated (should have been caught by the box check).
        f64::INFINITY
    });
    let mut x = vec![0.0; m];
    for i in 0..m {
        let magnitude = caps[i].min(lam * a[i].abs());
        x[i] = if a[i] >= 0.0 { magnitude } else { -magnitude };
    }
    // Numerical safety: rescale into the ball if round-off pushed us out.
    let norm = vector::norm2(&x);
    if norm > radius && norm > 0.0 {
        let scale = radius / norm;
        for xi in x.iter_mut() {
            *xi *= scale;
        }
    }
    let value = x.iter().zip(a).map(|(xi, ai)| xi * ai).sum();
    (x, value, s)
}

/// Checks feasibility `‖x‖₂ + ‖l⁻¹x‖_∞ ≤ 1 + tolerance` (test helper).
pub fn is_in_mixed_ball(x: &[f64], l: &[f64], tolerance: f64) -> bool {
    let inf: f64 = x
        .iter()
        .zip(l)
        .map(|(xi, li)| xi.abs() / li)
        .fold(0.0, f64::max);
    vector::norm2(x) + inf <= 1.0 + tolerance
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_runtime::ModelConfig;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn net() -> Network {
        Network::clique(ModelConfig::bcc(), 8)
    }

    #[test]
    fn zero_objective_returns_zero() {
        let out = project_mixed_ball(&mut net(), &[0.0, 0.0], &[1.0, 1.0]);
        assert_eq!(out.x, vec![0.0, 0.0]);
        assert_eq!(out.value, 0.0);
    }

    #[test]
    fn huge_l_reduces_to_the_euclidean_ball() {
        // With l_i enormous the ∞-constraint is inactive and the optimum is
        // a/‖a‖ with value ‖a‖₂.
        let a = vec![3.0, -4.0];
        let out = project_mixed_ball(&mut net(), &a, &[1e9, 1e9]);
        assert!((out.value - 5.0).abs() < 1e-3, "value {}", out.value);
        assert!(is_in_mixed_ball(&out.x, &[1e9, 1e9], 1e-9));
    }

    #[test]
    fn tiny_l_forces_a_tiny_solution() {
        let a = vec![1.0, 1.0, 1.0];
        let l = vec![1e-4, 1e-4, 1e-4];
        let out = project_mixed_ball(&mut net(), &a, &l);
        assert!(out.value < 1e-2);
        assert!(is_in_mixed_ball(&out.x, &l, 1e-9));
    }

    #[test]
    fn output_is_always_feasible_and_beats_heuristic_candidates() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for trial in 0..30 {
            let m = rng.gen_range(2..12);
            let a: Vec<f64> = (0..m).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect();
            let l: Vec<f64> = (0..m).map(|_| rng.gen::<f64>() * 3.0 + 0.05).collect();
            let out = project_mixed_ball(&mut net(), &a, &l);
            assert!(
                is_in_mixed_ball(&out.x, &l, 1e-6),
                "trial {trial} infeasible"
            );
            // Candidate 1: pure ℓ₂ direction scaled to feasibility.
            let a_norm = vector::norm2(&a).max(1e-12);
            let unit: Vec<f64> = a.iter().map(|v| v / a_norm).collect();
            let inf: f64 = unit
                .iter()
                .zip(&l)
                .map(|(x, li)| x.abs() / li)
                .fold(0.0, f64::max);
            let scale = 1.0 / (1.0 + inf);
            let cand1: Vec<f64> = unit.iter().map(|v| v * scale).collect();
            let val1 = vector::dot(&cand1, &a);
            assert!(
                out.value >= val1 - 1e-6,
                "trial {trial}: {} < {val1}",
                out.value
            );
            // Candidate 2: random feasible points must not beat the optimum.
            for _ in 0..20 {
                let dir: Vec<f64> = (0..m).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
                let norm = vector::norm2(&dir).max(1e-12);
                let infd: f64 = dir
                    .iter()
                    .zip(&l)
                    .map(|(x, li)| x.abs() / li)
                    .fold(0.0, f64::max);
                let s = 1.0 / (norm + infd).max(1e-12);
                let cand: Vec<f64> = dir.iter().map(|v| v * s * 0.999).collect();
                assert!(is_in_mixed_ball(&cand, &l, 1e-6));
                let val = vector::dot(&cand, &a);
                assert!(
                    out.value >= val - 1e-6,
                    "trial {trial}: random point beat the projection"
                );
            }
        }
    }

    #[test]
    fn value_scales_linearly_with_the_objective() {
        let a = vec![1.0, -2.0, 0.5];
        let l = vec![0.7, 0.4, 2.0];
        let base = project_mixed_ball(&mut net(), &a, &l);
        let doubled: Vec<f64> = a.iter().map(|v| 2.0 * v).collect();
        let scaled = project_mixed_ball(&mut net(), &doubled, &l);
        assert!((scaled.value - 2.0 * base.value).abs() < 1e-6);
    }

    #[test]
    fn rounds_are_polylogarithmic_not_linear_in_m() {
        let mut network = Network::clique(ModelConfig::bcc(), 64);
        let m = 4096;
        let a: Vec<f64> = (0..m).map(|i| ((i * 37) % 101) as f64 - 50.0).collect();
        let l: Vec<f64> = (0..m).map(|i| 0.1 + ((i * 13) % 17) as f64).collect();
        let _ = project_mixed_ball(&mut network, &a, &l);
        let rounds = network.ledger().total_rounds();
        assert!(rounds > 0);
        assert!(
            rounds < m as u64 / 2,
            "rounds {rounds} should be far below m = {m}"
        );
    }

    #[test]
    #[should_panic]
    fn non_positive_l_rejected() {
        let _ = project_mixed_ball(&mut net(), &[1.0], &[0.0]);
    }
}
