//! Linear program instances in the Lee–Sidford form used by the paper.
//!
//! The LP is `min { cᵀx : Aᵀx = b, lᵢ ≤ xᵢ ≤ uᵢ }` with `A ∈ R^{m×n}`
//! (note the transpose convention: `n` is the number of *equality
//! constraints* — vertices, in flow formulations — and `m` the number of
//! variables — edges). Every `xᵢ` must have at least one finite bound.

use bcc_linalg::CsrMatrix;

use crate::error::LpError;

/// A linear program `min cᵀx  s.t.  Aᵀx = b, l ≤ x ≤ u`.
#[derive(Debug, Clone)]
pub struct LpInstance {
    /// Constraint matrix `A ∈ R^{m×n}` with `rank(A) = n`.
    pub a: CsrMatrix,
    /// Demand vector `b ∈ R^n`.
    pub b: Vec<f64>,
    /// Cost vector `c ∈ R^m`.
    pub c: Vec<f64>,
    /// Lower bounds `l ∈ (R ∪ {−∞})^m`.
    pub lower: Vec<f64>,
    /// Upper bounds `u ∈ (R ∪ {+∞})^m`.
    pub upper: Vec<f64>,
}

impl LpInstance {
    /// Number of variables `m` (rows of `A`).
    pub fn m(&self) -> usize {
        self.a.rows()
    }

    /// Number of equality constraints `n` (columns of `A`).
    pub fn n(&self) -> usize {
        self.a.cols()
    }

    /// Validates dimensions and the requirement that every variable has at
    /// least one finite bound and `l < u`.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::MalformedInstance`] with a descriptive message when
    /// the instance is malformed.
    pub fn try_validate(&self) -> Result<(), LpError> {
        let malformed = |msg: String| Err(LpError::MalformedInstance(msg));
        if self.b.len() != self.n() {
            return malformed(format!(
                "b must have length n = {}, got {}",
                self.n(),
                self.b.len()
            ));
        }
        if self.c.len() != self.m() {
            return malformed(format!(
                "c must have length m = {}, got {}",
                self.m(),
                self.c.len()
            ));
        }
        if self.lower.len() != self.m() {
            return malformed(format!(
                "l must have length m = {}, got {}",
                self.m(),
                self.lower.len()
            ));
        }
        if self.upper.len() != self.m() {
            return malformed(format!(
                "u must have length m = {}, got {}",
                self.m(),
                self.upper.len()
            ));
        }
        if let Some(i) = self.b.iter().position(|v| !v.is_finite()) {
            return malformed(format!("b[{i}] = {} is not finite", self.b[i]));
        }
        if let Some(i) = self.c.iter().position(|v| !v.is_finite()) {
            return malformed(format!("c[{i}] = {} is not finite", self.c[i]));
        }
        for i in 0..self.m() {
            if !(self.lower[i].is_finite() || self.upper[i].is_finite()) {
                return malformed(format!("variable {i} has no finite bound"));
            }
            // NaN bounds must be rejected too, so compare with the negation
            // of `<` rather than `>=`.
            if !matches!(
                self.lower[i].partial_cmp(&self.upper[i]),
                Some(std::cmp::Ordering::Less)
            ) {
                return malformed(format!(
                    "variable {i}: lower bound {} is not below upper bound {}",
                    self.lower[i], self.upper[i]
                ));
            }
        }
        Ok(())
    }

    /// Panicking variant of [`LpInstance::try_validate`].
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message when the instance is malformed.
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// The objective value `cᵀx`.
    pub fn objective(&self, x: &[f64]) -> f64 {
        x.iter().zip(&self.c).map(|(xi, ci)| xi * ci).sum()
    }

    /// Residual of the equality constraints, `Aᵀx − b`.
    pub fn equality_residual(&self, x: &[f64]) -> Vec<f64> {
        let ax = self.a.matvec_transpose(x);
        ax.iter().zip(&self.b).map(|(v, bi)| v - bi).collect()
    }

    /// Returns `true` if `x` satisfies all constraints up to `tolerance`.
    pub fn is_feasible(&self, x: &[f64], tolerance: f64) -> bool {
        if x.len() != self.m() {
            return false;
        }
        for i in 0..self.m() {
            if x[i] < self.lower[i] - tolerance || x[i] > self.upper[i] + tolerance {
                return false;
            }
        }
        self.equality_residual(x)
            .iter()
            .all(|r| r.abs() <= tolerance)
    }

    /// Returns `true` if `x` lies strictly inside the box bounds (the
    /// interior `Ω°` required of the starting point).
    pub fn is_interior(&self, x: &[f64]) -> bool {
        x.len() == self.m() && (0..self.m()).all(|i| x[i] > self.lower[i] && x[i] < self.upper[i])
    }

    /// The magnitude parameter
    /// `U = max{‖1/(u−x₀)‖_∞, ‖1/(x₀−l)‖_∞, ‖u−l‖_∞, ‖c‖_∞}` of Theorem 1.4
    /// (infinite bounds are skipped in the `‖u−l‖_∞` term).
    pub fn parameter_u(&self, x0: &[f64]) -> f64 {
        let mut u_param = self.c.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
        for i in 0..self.m() {
            if self.upper[i].is_finite() {
                u_param = u_param.max(1.0 / (self.upper[i] - x0[i]).max(1e-300));
            }
            if self.lower[i].is_finite() {
                u_param = u_param.max(1.0 / (x0[i] - self.lower[i]).max(1e-300));
            }
            if self.upper[i].is_finite() && self.lower[i].is_finite() {
                u_param = u_param.max(self.upper[i] - self.lower[i]);
            }
        }
        u_param.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// min x₀ + x₁ subject to x₀ + x₁ = 1, 0 ≤ xᵢ ≤ 1.
    fn tiny() -> LpInstance {
        LpInstance {
            a: CsrMatrix::from_triplets(2, 1, &[(0, 0, 1.0), (1, 0, 1.0)]),
            b: vec![1.0],
            c: vec![1.0, 1.0],
            lower: vec![0.0, 0.0],
            upper: vec![1.0, 1.0],
        }
    }

    #[test]
    fn dimensions_and_objective() {
        let lp = tiny();
        lp.validate();
        assert_eq!(lp.m(), 2);
        assert_eq!(lp.n(), 1);
        assert_eq!(lp.objective(&[0.25, 0.75]), 1.0);
    }

    #[test]
    fn feasibility_checks() {
        let lp = tiny();
        assert!(lp.is_feasible(&[0.25, 0.75], 1e-9));
        assert!(!lp.is_feasible(&[0.25, 0.5], 1e-9)); // equality violated
        assert!(!lp.is_feasible(&[-0.25, 1.25], 1e-9)); // bounds violated
        assert!(lp.is_interior(&[0.5, 0.5]));
        assert!(!lp.is_interior(&[0.0, 1.0]));
    }

    #[test]
    fn parameter_u_reflects_closeness_to_bounds() {
        let lp = tiny();
        let centered = lp.parameter_u(&[0.5, 0.5]);
        let near_edge = lp.parameter_u(&[0.01, 0.99]);
        assert!(near_edge > centered);
        assert!(centered >= 1.0);
    }

    #[test]
    #[should_panic]
    fn validate_rejects_inverted_bounds() {
        let mut lp = tiny();
        lp.lower[0] = 2.0;
        lp.validate();
    }

    #[test]
    #[should_panic]
    fn validate_rejects_fully_free_variables() {
        let mut lp = tiny();
        lp.lower[0] = f64::NEG_INFINITY;
        lp.upper[0] = f64::INFINITY;
        lp.validate();
    }
}
