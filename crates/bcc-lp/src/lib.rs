//! # bcc-lp
//!
//! A Lee–Sidford style interior point linear-program solver in the Broadcast
//! Congested Clique (Section 4 of *"The Laplacian Paradigm in the Broadcast
//! Congested Clique"*, Forster & de Vos, PODC 2022).
//!
//! * [`LpInstance`] — LPs of the form `min{cᵀx : Aᵀx = b, l ≤ x ≤ u}`.
//! * [`barrier`] — 1-self-concordant barriers (log / trigonometric).
//! * [`gram`] — the `(AᵀDA)⁻¹` oracle abstraction of Theorem 1.4.
//! * [`leverage`] — leverage-score approximation with a shared-seed
//!   Johnson–Lindenstrauss sketch (Algorithm 6).
//! * [`lewis`] — regularized ℓ_p Lewis weights (Algorithms 7/8).
//! * [`mixed_ball`] — projection onto the mixed-norm ball (Lemma 4.10).
//! * [`path_following`] — weighted path following (Algorithms 10/11).
//! * [`lp_solve`] — the top-level solver (Algorithm 9, Theorem 1.4), with a
//!   uniform-weight ablation mode.
//!
//! ## Example
//!
//! ```
//! use bcc_linalg::CsrMatrix;
//! use bcc_lp::{lp_solve, LpInstance, LpOptions};
//! use bcc_lp::gram::DenseGramSolver;
//! use bcc_runtime::{ModelConfig, Network};
//!
//! // min x1  s.t.  x0 + x1 = 1, 0 <= x <= 1.
//! let lp = LpInstance {
//!     a: CsrMatrix::from_triplets(2, 1, &[(0, 0, 1.0), (1, 0, 1.0)]),
//!     b: vec![1.0],
//!     c: vec![0.0, 1.0],
//!     lower: vec![0.0, 0.0],
//!     upper: vec![1.0, 1.0],
//! };
//! let mut net = Network::clique(ModelConfig::bcc(), 2);
//! let options = LpOptions::new(1e-3, lp.m(), 7).with_uniform_weights();
//! let solution = lp_solve(&mut net, &lp, &[0.5, 0.5], &options, &DenseGramSolver::new());
//! assert!(solution.objective < 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barrier;
pub mod error;
pub mod gram;
pub mod instance;
pub mod leverage;
pub mod lewis;
pub mod mixed_ball;
pub mod path_following;
pub mod solver;

pub use error::LpError;
pub use gram::{DenseGramSolver, GramSolver, ScaledMatrix};
pub use instance::LpInstance;
pub use mixed_ball::{project_mixed_ball, MixedBallProjection};
pub use solver::{lp_solve, try_lp_solve, LpOptions, LpSolution, WeightStrategy};
