//! Weighted path following (Algorithms 10 and 11 of the paper).
//!
//! The interior point method follows the weighted central path
//! `x_t = argmin_{Aᵀx = b} ( t·cᵀx + Σᵢ gᵢ(x)·φᵢ(xᵢ) )`.
//! One *centering step* ([`centering_step`], Algorithm 11 `CenteringInexact`)
//! is a projected Newton step on `x` followed by a weight refresh; the
//! *path-following* driver ([`path_following`], Algorithm 10) interleaves
//! centering with multiplicative updates of `t` by `(1 ± α)`, where
//! `α = Θ(1/√c₁)` and `c₁ ≥ ‖g‖₁` is the size bound of the weight function —
//! `c₁ = Θ(n)` for regularized Lewis weights (hence `Õ(√n)` iterations,
//! Theorem 1.4) versus `c₁ = m` for the uniform weights of the classical
//! logarithmic barrier (the ablation of experiment A2).

use bcc_linalg::vector;
use bcc_runtime::{payload, Network};

use crate::barrier::BarrierSystem;
use crate::error::LpError;
use crate::gram::{GramSolver, ScaledMatrix};
use crate::instance::LpInstance;

/// Tuning knobs of the path-following driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathOptions {
    /// Multiplier on the theoretical step size `1/√c₁` (the paper's constants
    /// are far smaller; 0.25 keeps laboratory runs short while preserving the
    /// `√c₁` scaling the experiments measure).
    pub step_factor: f64,
    /// Centering is repeated until `‖Pᵧ‖_∞` drops below this threshold.
    pub centering_tolerance: f64,
    /// Maximum centering steps per `t` value.
    pub max_centering_steps: usize,
    /// Hard cap on the total number of Newton steps.
    pub max_newton_steps: usize,
    /// Fixed-point refresh sweeps for the weight function per accepted step.
    pub weight_refresh_sweeps: usize,
}

impl Default for PathOptions {
    fn default() -> Self {
        PathOptions {
            step_factor: 0.25,
            centering_tolerance: 0.05,
            max_centering_steps: 30,
            max_newton_steps: 20_000,
            weight_refresh_sweeps: 2,
        }
    }
}

/// Statistics of one [`path_following`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathStats {
    /// Number of distinct `t` values visited (the paper's iteration count).
    pub path_iterations: usize,
    /// Total Newton / centering steps.
    pub newton_steps: usize,
    /// Total Gram-system solves (the communication-dominant operation).
    pub gram_solves: usize,
}

/// Outcome of one centering step.
#[derive(Debug, Clone)]
pub struct CenteringOutcome {
    /// Updated iterate.
    pub x: Vec<f64>,
    /// Centrality measure `‖P_{x,w} y‖_∞` *before* the step.
    pub delta: f64,
    /// Whether the Newton step had to be damped to stay in the domain.
    pub damped: bool,
}

/// One projected Newton (centering) step at path parameter `t` for cost `c`
/// (Algorithm 11, the `x`-update half).
///
/// Returns the new iterate and the centrality measure; the weight refresh is
/// performed by the caller (strategy-dependent).
///
/// # Errors
///
/// Propagates [`LpError::GramSolve`] from the inner `(AᵀDA)⁻¹` oracle.
pub fn centering_step(
    net: &mut Network,
    instance: &LpInstance,
    barriers: &BarrierSystem,
    x: &[f64],
    w: &[f64],
    t: f64,
    cost: &[f64],
    gram_solver: &dyn GramSolver,
) -> Result<CenteringOutcome, LpError> {
    let m = instance.m();
    assert_eq!(x.len(), m);
    assert_eq!(w.len(), m);
    assert_eq!(cost.len(), m);
    debug_assert!(
        barriers.in_domain(x),
        "centering requires an interior point"
    );

    let phi1 = barriers.gradient(x);
    let phi2 = barriers.hessian(x);
    let sqrt_phi2: Vec<f64> = phi2.iter().map(|v| v.sqrt()).collect();

    // y = (t·c + w∘φ'(x)) / (w∘√φ''(x)).
    let y: Vec<f64> = (0..m)
        .map(|i| (t * cost[i] + w[i] * phi1[i]) / (w[i] * sqrt_phi2[i]))
        .collect();

    // P_{x,w} y = y − W⁻¹ A_x (A_xᵀ W⁻¹ A_x)⁻¹ A_xᵀ y with A_x = Φ''^{-1/2} A.
    // Coordinate exchange for the two matrix–vector products.
    let bits = u64::from(payload::bits_for_real(1e9, 1e-9));
    net.share_scalars(bits);
    net.share_scalars(bits);

    let ax_scales: Vec<f64> = sqrt_phi2.iter().map(|s| 1.0 / s).collect();
    let ax = ScaledMatrix::new(&instance.a, ax_scales.clone());
    let at_y = ax.apply_transpose(&y);
    // Gram diagonal: A_xᵀ W⁻¹ A_x = Aᵀ diag(1/(wᵢ·φ''ᵢ)) A.
    let gram_diag: Vec<f64> = (0..m).map(|i| 1.0 / (w[i] * phi2[i])).collect();
    let z = gram_solver.solve(net, &instance.a, &gram_diag, &at_y)?;
    let ax_z = ax.apply(&z);
    let projected: Vec<f64> = (0..m).map(|i| y[i] - ax_z[i] / w[i]).collect();

    let delta = vector::norm_inf(&projected);

    // Newton direction dx = −Φ''^{-1/2} · (P y); damp so that each coordinate
    // moves at most 0.5 in its local norm (self-concordance keeps the iterate
    // strictly interior), and back off further if numerics still put us on the
    // boundary.
    let mut step = 1.0f64;
    if delta > 0.5 {
        step = 0.5 / delta;
    }
    let mut damped = step < 1.0;
    let mut x_new;
    loop {
        x_new = (0..m)
            .map(|i| x[i] - step * projected[i] / sqrt_phi2[i])
            .collect::<Vec<f64>>();
        if barriers.in_domain(&x_new) || step < 1e-12 {
            break;
        }
        step *= 0.5;
        damped = true;
    }
    Ok(CenteringOutcome {
        x: x_new,
        delta,
        damped,
    })
}

/// The path-following driver (Algorithm 10): repeatedly center, then move `t`
/// multiplicatively towards `t_end`.
///
/// `refresh_weights` is called after every accepted Newton step with the new
/// iterate and the current weights and must return the refreshed weights (the
/// caller encodes the weight strategy and charges its own communication).
///
/// # Errors
///
/// Propagates [`LpError::GramSolve`] from the centering steps and from the
/// weight refresh.
#[allow(clippy::too_many_arguments)]
pub fn path_following(
    net: &mut Network,
    instance: &LpInstance,
    barriers: &BarrierSystem,
    mut x: Vec<f64>,
    mut w: Vec<f64>,
    t_start: f64,
    t_end: f64,
    cost: &[f64],
    options: &PathOptions,
    gram_solver: &dyn GramSolver,
    mut refresh_weights: impl FnMut(&mut Network, &[f64], &[f64]) -> Result<Vec<f64>, LpError>,
) -> Result<(Vec<f64>, Vec<f64>, PathStats), LpError> {
    assert!(
        t_start > 0.0 && t_end > 0.0,
        "path parameters must be positive"
    );
    let mut stats = PathStats::default();
    let mut t = t_start;
    net.begin_phase("path following");

    loop {
        // Center at the current t.
        let mut centering_steps = 0;
        loop {
            let outcome = centering_step(net, instance, barriers, &x, &w, t, cost, gram_solver)?;
            stats.newton_steps += 1;
            stats.gram_solves += 1;
            x = outcome.x;
            w = refresh_weights(net, &x, &w)?;
            centering_steps += 1;
            if outcome.delta <= options.centering_tolerance
                || centering_steps >= options.max_centering_steps
                || stats.newton_steps >= options.max_newton_steps
            {
                break;
            }
        }
        if (t - t_end).abs() <= f64::EPSILON * t_end
            || stats.newton_steps >= options.max_newton_steps
        {
            break;
        }
        // Step size α = step_factor / √c₁ with c₁ = ‖w‖₁ (the weight-function
        // size bound).
        let c1: f64 = w.iter().sum::<f64>().max(1.0);
        let alpha = (options.step_factor / c1.sqrt()).min(0.5);
        let factor = if t_end > t { 1.0 + alpha } else { 1.0 - alpha };
        let proposal = t * factor;
        t = if t_end > t {
            proposal.min(t_end)
        } else {
            proposal.max(t_end)
        };
        stats.path_iterations += 1;
    }
    Ok((x, w, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gram::DenseGramSolver;
    use bcc_linalg::CsrMatrix;
    use bcc_runtime::ModelConfig;

    /// min x₁ subject to x₀ + x₁ = 1, 0 ≤ xᵢ ≤ 1 — optimum x = (1, 0).
    fn simple_lp() -> LpInstance {
        LpInstance {
            a: CsrMatrix::from_triplets(2, 1, &[(0, 0, 1.0), (1, 0, 1.0)]),
            b: vec![1.0],
            c: vec![0.0, 1.0],
            lower: vec![0.0, 0.0],
            upper: vec![1.0, 1.0],
        }
    }

    #[test]
    fn centering_step_preserves_the_equality_constraint() {
        let lp = simple_lp();
        let barriers = BarrierSystem::new(&lp.lower, &lp.upper);
        let mut net = Network::clique(ModelConfig::bcc(), 2);
        let x = vec![0.3, 0.7];
        let w = vec![1.0, 1.0];
        let outcome = centering_step(
            &mut net,
            &lp,
            &barriers,
            &x,
            &w,
            0.1,
            &lp.c,
            &DenseGramSolver::new(),
        )
        .unwrap();
        let residual = lp.equality_residual(&outcome.x);
        assert!(residual[0].abs() < 1e-9, "residual {residual:?}");
        assert!(barriers.in_domain(&outcome.x));
        assert!(net.ledger().total_rounds() > 0);
    }

    #[test]
    fn centering_reduces_the_centrality_measure() {
        let lp = simple_lp();
        let barriers = BarrierSystem::new(&lp.lower, &lp.upper);
        let mut net = Network::clique(ModelConfig::bcc(), 2);
        // Start off-center for a tiny t (center is near the analytic center 0.5, 0.5).
        let mut x = vec![0.9, 0.1];
        let w = vec![1.0, 1.0];
        let mut deltas = Vec::new();
        for _ in 0..20 {
            let out = centering_step(
                &mut net,
                &lp,
                &barriers,
                &x,
                &w,
                1e-6,
                &lp.c,
                &DenseGramSolver::new(),
            )
            .unwrap();
            deltas.push(out.delta);
            x = out.x;
        }
        assert!(deltas.last().unwrap() < &1e-6, "deltas {deltas:?}");
        // The analytic center of the trig barrier on this slice is (0.5, 0.5).
        assert!(
            (x[0] - 0.5).abs() < 1e-3 && (x[1] - 0.5).abs() < 1e-3,
            "{x:?}"
        );
    }

    #[test]
    fn path_following_moves_towards_the_optimum() {
        let lp = simple_lp();
        let barriers = BarrierSystem::new(&lp.lower, &lp.upper);
        let mut net = Network::clique(ModelConfig::bcc(), 2);
        let options = PathOptions::default();
        let (x, _w, stats) = path_following(
            &mut net,
            &lp,
            &barriers,
            vec![0.5, 0.5],
            vec![1.0, 1.0],
            1e-3,
            2_000.0,
            &lp.c,
            &options,
            &DenseGramSolver::new(),
            |_, _, w| Ok(w.to_vec()),
        )
        .unwrap();
        // Optimum is (1, 0); with t_end = 2000 the gap is ≈ m/t ≈ 1e-3.
        assert!(x[1] < 0.01, "x = {x:?}");
        assert!(x[0] > 0.99);
        assert!(lp.is_feasible(&x, 1e-6));
        assert!(stats.path_iterations > 10);
        assert!(stats.newton_steps >= stats.path_iterations);
        assert!(stats.gram_solves == stats.newton_steps);
    }

    #[test]
    fn newton_step_cap_is_respected() {
        let lp = simple_lp();
        let barriers = BarrierSystem::new(&lp.lower, &lp.upper);
        let mut net = Network::clique(ModelConfig::bcc(), 2);
        let options = PathOptions {
            max_newton_steps: 5,
            ..PathOptions::default()
        };
        let (_x, _w, stats) = path_following(
            &mut net,
            &lp,
            &barriers,
            vec![0.5, 0.5],
            vec![1.0, 1.0],
            1e-3,
            1e6,
            &lp.c,
            &options,
            &DenseGramSolver::new(),
            |_, _, w| Ok(w.to_vec()),
        )
        .unwrap();
        assert!(stats.newton_steps <= 5);
    }
}
