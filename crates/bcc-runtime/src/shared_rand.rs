//! Shared and per-vertex randomness.
//!
//! Two flavours of randomness appear in the paper's algorithms:
//!
//! * **Private coins** — e.g. cluster marking in Baswana–Sen, the ad-hoc edge
//!   sampling of Algorithm 5. Each vertex draws from its own stream; the
//!   stream is derived deterministically from a master seed and the vertex
//!   identifier so that experiments are reproducible.
//! * **Shared coins** — the Kane–Nelson Johnson–Lindenstrauss sketch of
//!   Algorithm 6 only needs `O(log² m)` random bits *in total*; a designated
//!   leader samples them and broadcasts them, which costs
//!   `⌈bits / B⌉` rounds, and every vertex expands the same bits into the
//!   same sketch matrix locally. [`SharedRandomness`] implements exactly this
//!   pattern and charges the broadcast on the network it is created from.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::error::RuntimeError;
use crate::network::Network;

/// Deterministic per-vertex private randomness.
///
/// # Examples
///
/// ```
/// use bcc_runtime::shared_rand::vertex_rng;
/// use rand::Rng;
///
/// let mut a = vertex_rng(42, 3);
/// let mut b = vertex_rng(42, 3);
/// let mut c = vertex_rng(42, 4);
/// let x: u64 = a.gen();
/// assert_eq!(x, b.gen::<u64>());
/// assert_ne!(x, c.gen::<u64>());
/// ```
pub fn vertex_rng(master_seed: u64, vertex: usize) -> ChaCha8Rng {
    // Mix the vertex id into the seed so that consecutive vertices get
    // unrelated streams.
    let z = splitmix64(master_seed ^ (vertex as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    ChaCha8Rng::seed_from_u64(z)
}

/// The splitmix64 finalizer: a bijective avalanche mix turning structured
/// `(master, index)` combinations into unrelated seeds. Shared by
/// [`vertex_rng`] and the batch engine's per-request seed derivation so the
/// mixing constants live in exactly one place.
pub fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A polylogarithmic pool of random bits sampled by a leader vertex and
/// broadcast to the whole network.
#[derive(Debug, Clone)]
pub struct SharedRandomness {
    bits_sampled: u64,
    seed: u64,
}

impl SharedRandomness {
    /// Elects a leader, lets it sample `bits` random bits (derived from
    /// `master_seed` for reproducibility) and broadcasts them.
    ///
    /// Charges one leader-election round plus `⌈bits / B⌉` broadcast rounds on
    /// `net`.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`] from the underlying broadcast if the
    /// network is empty.
    pub fn sample_and_broadcast(
        net: &mut Network,
        master_seed: u64,
        bits: u64,
    ) -> Result<Self, RuntimeError> {
        let leader = net.elect_leader();
        net.broadcast_from(leader, bits)?;
        Ok(SharedRandomness {
            bits_sampled: bits,
            seed: master_seed ^ 0xA5A5_5A5A_DEAD_BEEF,
        })
    }

    /// Creates shared randomness without charging any rounds. Intended for
    /// unit tests of components that receive the randomness from a caller
    /// which already paid for the broadcast.
    pub fn for_testing(master_seed: u64, bits: u64) -> Self {
        SharedRandomness {
            bits_sampled: bits,
            seed: master_seed ^ 0xA5A5_5A5A_DEAD_BEEF,
        }
    }

    /// Number of random bits that were broadcast.
    pub fn bits(&self) -> u64 {
        self.bits_sampled
    }

    /// A deterministic RNG expanded from the shared bits. Every vertex calling
    /// this obtains the *same* stream, which is exactly the property the
    /// Kane–Nelson construction needs.
    pub fn expand(&self) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(self.seed)
    }

    /// Draws `count` uniform f64 values in `[0, 1)` from the shared stream.
    pub fn uniform_block(&self, count: usize) -> Vec<f64> {
        let mut rng = self.expand();
        (0..count).map(|_| rng.gen::<f64>()).collect()
    }

    /// Draws `count` Rademacher (±1) values from the shared stream.
    pub fn rademacher_block(&self, count: usize) -> Vec<f64> {
        let mut rng = self.expand();
        (0..count)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect()
    }

    /// Fills `dest` with raw random bytes from the shared stream.
    pub fn fill_bytes(&self, dest: &mut [u8]) {
        self.expand().fill_bytes(dest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;

    #[test]
    fn vertex_streams_are_reproducible_and_distinct() {
        let mut r1 = vertex_rng(7, 0);
        let mut r2 = vertex_rng(7, 0);
        let mut r3 = vertex_rng(7, 1);
        let a: [u64; 4] = [r1.gen(), r1.gen(), r1.gen(), r1.gen()];
        let b: [u64; 4] = [r2.gen(), r2.gen(), r2.gen(), r2.gen()];
        let c: [u64; 4] = [r3.gen(), r3.gen(), r3.gen(), r3.gen()];
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn shared_randomness_charges_broadcast_rounds() {
        let mut net = Network::clique(ModelConfig::bcc(), 16); // B = 4 bits
        let shared = SharedRandomness::sample_and_broadcast(&mut net, 1, 100).unwrap();
        assert_eq!(shared.bits(), 100);
        // 1 round leader election + ceil(100/4) = 25 broadcast rounds.
        assert_eq!(net.ledger().total_rounds(), 26);
    }

    #[test]
    fn expansion_is_identical_for_all_consumers() {
        let shared = SharedRandomness::for_testing(9, 64);
        assert_eq!(shared.uniform_block(8), shared.uniform_block(8));
        assert_eq!(shared.rademacher_block(8), shared.rademacher_block(8));
        let mut b1 = [0u8; 16];
        let mut b2 = [0u8; 16];
        shared.fill_bytes(&mut b1);
        shared.fill_bytes(&mut b2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn rademacher_values_are_signs() {
        let shared = SharedRandomness::for_testing(11, 64);
        for v in shared.rademacher_block(100) {
            assert!(v == 1.0 || v == -1.0);
        }
    }
}
