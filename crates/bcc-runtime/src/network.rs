//! The charged communication layer.
//!
//! A [`Network`] represents one simulated execution environment: the model
//! (topology + broadcast constraint + bandwidth), the communication graph and
//! a [`RoundLedger`]. Algorithms interact with it in two styles:
//!
//! 1. **Message exchanges** ([`Network::exchange`] /
//!    [`Network::exchange_unicast`]): one synchronous step in which every
//!    vertex contributes at most one message (broadcast models) or one message
//!    per neighbor (unicast models). The ledger is charged
//!    `⌈max message bits / B⌉` rounds, matching the convention the paper uses
//!    when a logical message (e.g. an edge weight of `log W` bits) is wider
//!    than the bandwidth.
//! 2. **Charged numeric primitives** ([`Network::share_scalars`],
//!    [`Network::broadcast_from`], ...) used by the Laplacian/LP/flow layers:
//!    the data flow of those algorithms is vertex-local by construction (each
//!    vertex owns its coordinate of every vector), so the simulator only needs
//!    to account the rounds of the corresponding broadcast pattern.

use crate::error::RuntimeError;
use crate::ledger::RoundLedger;
use crate::model::ModelConfig;
use crate::payload::MessageSize;

/// Communication topology of a simulated network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// Every pair of vertices may communicate (Congested Clique family).
    Clique,
    /// Communication restricted to the edges of an undirected graph, given as
    /// adjacency lists (CONGEST family).
    Graph(Vec<Vec<usize>>),
}

/// A simulated bandwidth-constrained synchronous network.
///
/// # Examples
///
/// ```
/// use bcc_runtime::{ModelConfig, Network};
///
/// let mut net = Network::clique(ModelConfig::bcc(), 8);
/// // Every vertex broadcasts its identifier (3 bits each for n = 8): 1 round.
/// let delivered = net.exchange(|v| Some(bcc_runtime::payload::Field::id(v, 8)));
/// assert_eq!(delivered[0].len(), 7); // everyone hears the 7 others
/// assert_eq!(net.ledger().total_rounds(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    cfg: ModelConfig,
    n: usize,
    topology: Topology,
    ledger: RoundLedger,
}

impl Network {
    /// Creates a clique network on `n` vertices (for the Congested Clique and
    /// Broadcast Congested Clique models).
    pub fn clique(cfg: ModelConfig, n: usize) -> Self {
        Network {
            cfg,
            n,
            topology: Topology::Clique,
            ledger: RoundLedger::new(),
        }
    }

    /// Creates a network whose communication links are the edges of the given
    /// undirected graph (for the CONGEST and Broadcast CONGEST models).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidTopology`] if the adjacency structure is
    /// asymmetric, contains self-loops or out-of-range endpoints.
    pub fn on_graph(cfg: ModelConfig, adjacency: Vec<Vec<usize>>) -> Result<Self, RuntimeError> {
        let n = adjacency.len();
        for (v, nbrs) in adjacency.iter().enumerate() {
            for &u in nbrs {
                if u >= n {
                    return Err(RuntimeError::InvalidVertex { vertex: u, n });
                }
                if u == v {
                    return Err(RuntimeError::InvalidTopology(format!(
                        "self-loop at vertex {v}"
                    )));
                }
                if !adjacency[u].contains(&v) {
                    return Err(RuntimeError::InvalidTopology(format!(
                        "edge {v}-{u} is not symmetric"
                    )));
                }
            }
        }
        Ok(Network {
            cfg,
            n,
            topology: Topology::Graph(adjacency),
            ledger: RoundLedger::new(),
        })
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The model configuration this network simulates.
    pub fn config(&self) -> ModelConfig {
        self.cfg
    }

    /// Per-round bandwidth `B` in bits.
    pub fn bandwidth_bits(&self) -> u64 {
        self.cfg.bandwidth_bits(self.n)
    }

    /// Read access to the round ledger.
    pub fn ledger(&self) -> &RoundLedger {
        &self.ledger
    }

    /// Mutable access to the round ledger (e.g. to merge sub-executions).
    pub fn ledger_mut(&mut self) -> &mut RoundLedger {
        &mut self.ledger
    }

    /// Starts a named accounting phase.
    pub fn begin_phase(&mut self, name: &str) {
        self.ledger.begin_phase(name);
    }

    /// The vertices that receive a broadcast of vertex `v`.
    pub fn recipients(&self, v: usize) -> Vec<usize> {
        match &self.topology {
            Topology::Clique => (0..self.n).filter(|&u| u != v).collect(),
            Topology::Graph(adj) => adj[v].clone(),
        }
    }

    /// Returns `true` if `u` may receive a message from `v` in one round.
    pub fn are_connected(&self, v: usize, u: usize) -> bool {
        if v == u {
            return false;
        }
        match &self.topology {
            Topology::Clique => true,
            Topology::Graph(adj) => adj[v].contains(&u),
        }
    }

    /// One synchronous broadcast step: every vertex `v` for which `make(v)`
    /// returns `Some(msg)` broadcasts `msg` to all its recipients.
    ///
    /// Returns, for every vertex, the list of `(sender, message)` pairs it
    /// received. The ledger is charged `⌈max_v bits(msg_v) / B⌉` rounds — the
    /// widest message dictates how many physical rounds the logical step
    /// takes, all vertices transmit in parallel.
    pub fn exchange<M, F>(&mut self, mut make: F) -> Vec<Vec<(usize, M)>>
    where
        M: MessageSize + Clone,
        F: FnMut(usize) -> Option<M>,
    {
        let mut outgoing: Vec<Option<M>> = Vec::with_capacity(self.n);
        let mut max_bits = 0u64;
        let mut total_bits = 0u64;
        for v in 0..self.n {
            let msg = make(v);
            if let Some(m) = &msg {
                let b = m.message_bits();
                max_bits = max_bits.max(b);
                total_bits += b;
            }
            outgoing.push(msg);
        }
        let rounds = self.cfg.rounds_for_bits(self.n, max_bits);
        self.ledger.charge(rounds, total_bits);

        let mut delivered: Vec<Vec<(usize, M)>> = vec![Vec::new(); self.n];
        for v in 0..self.n {
            if let Some(msg) = &outgoing[v] {
                for u in self.recipients(v) {
                    delivered[u].push((v, msg.clone()));
                }
            }
        }
        delivered
    }

    /// One synchronous unicast step (CONGEST / Congested Clique only): every
    /// vertex contributes a list of `(recipient, message)` pairs with at most
    /// one message per recipient.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::BroadcastViolation`] if the model imposes the
    ///   broadcast constraint.
    /// * [`RuntimeError::NotANeighbor`] if a recipient is not reachable in one
    ///   round under the network topology.
    pub fn exchange_unicast<M, F>(
        &mut self,
        mut make: F,
    ) -> Result<Vec<Vec<(usize, M)>>, RuntimeError>
    where
        M: MessageSize + Clone,
        F: FnMut(usize) -> Vec<(usize, M)>,
    {
        if self.cfg.model.is_broadcast() {
            return Err(RuntimeError::BroadcastViolation {
                vertex: 0,
                round: self.ledger.total_rounds(),
            });
        }
        let mut per_vertex: Vec<Vec<(usize, M)>> = Vec::with_capacity(self.n);
        let mut max_bits = 0u64;
        let mut total_bits = 0u64;
        for v in 0..self.n {
            let msgs = make(v);
            let mut vertex_max = 0u64;
            for (to, m) in &msgs {
                if *to >= self.n {
                    return Err(RuntimeError::InvalidVertex {
                        vertex: *to,
                        n: self.n,
                    });
                }
                if !self.are_connected(v, *to) {
                    return Err(RuntimeError::NotANeighbor { from: v, to: *to });
                }
                let b = m.message_bits();
                vertex_max = vertex_max.max(b);
                total_bits += b;
            }
            max_bits = max_bits.max(vertex_max);
            per_vertex.push(msgs);
        }
        let rounds = self.cfg.rounds_for_bits(self.n, max_bits);
        self.ledger.charge(rounds, total_bits);
        let mut delivered: Vec<Vec<(usize, M)>> = vec![Vec::new(); self.n];
        for (v, msgs) in per_vertex.into_iter().enumerate() {
            for (to, m) in msgs {
                delivered[to].push((v, m));
            }
        }
        Ok(delivered)
    }

    // ------------------------------------------------------------------
    // Charged numeric primitives.
    // ------------------------------------------------------------------

    /// Charges the rounds of a single vertex broadcasting a payload of
    /// `bits` bits to the whole network (clique models) or to its neighbors
    /// (CONGEST models).
    pub fn broadcast_from(&mut self, source: usize, bits: u64) -> Result<(), RuntimeError> {
        if source >= self.n {
            return Err(RuntimeError::InvalidVertex {
                vertex: source,
                n: self.n,
            });
        }
        let rounds = self.cfg.rounds_for_bits(self.n, bits);
        self.ledger.charge(rounds, bits);
        Ok(())
    }

    /// Charges the rounds of every vertex simultaneously broadcasting one
    /// value of `bits_per_value` bits (the standard "share one coordinate of a
    /// vector" step; costs `⌈bits / B⌉` rounds).
    pub fn share_scalars(&mut self, bits_per_value: u64) {
        let rounds = self.cfg.rounds_for_bits(self.n, bits_per_value);
        self.ledger.charge(rounds, bits_per_value * self.n as u64);
    }

    /// Charges the rounds of every vertex broadcasting `counts[v]` values of
    /// `bits_per_value` bits each. The vertex with the largest count dictates
    /// the number of rounds (all broadcasts proceed in parallel).
    pub fn share_varying(&mut self, counts: &[usize], bits_per_value: u64) {
        assert_eq!(counts.len(), self.n, "one count per vertex expected");
        let max_count = counts.iter().copied().max().unwrap_or(0) as u64;
        let total: u64 = counts.iter().map(|&c| c as u64).sum::<u64>() * bits_per_value;
        let rounds = self
            .cfg
            .rounds_for_bits(self.n, max_count.saturating_mul(bits_per_value));
        self.ledger.charge(rounds, total);
    }

    /// Charges the rounds of a global aggregation (sum / min / max) of one
    /// scalar of `bits` bits per vertex.
    ///
    /// In the clique models every vertex broadcasts its contribution and the
    /// aggregate is computed locally by everyone: `⌈bits / B⌉` rounds. In the
    /// CONGEST models the aggregate is computed by convergecast over a BFS
    /// tree and re-broadcast, which costs `O(D)` additional rounds; since this
    /// crate does not track the diameter of the communication graph the caller
    /// provides it explicitly via [`Network::aggregate_scalar_with_diameter`]
    /// when running outside the clique.
    pub fn aggregate_scalar(&mut self, bits: u64) {
        let rounds = self.cfg.rounds_for_bits(self.n, bits);
        self.ledger.charge(rounds, bits * self.n as u64);
    }

    /// Aggregation in a CONGEST-family network whose communication graph has
    /// the given `diameter`: a convergecast up a BFS tree plus a broadcast
    /// down, each taking `diameter` hops of `⌈bits/B⌉`-round messages.
    pub fn aggregate_scalar_with_diameter(&mut self, bits: u64, diameter: u64) {
        let per_hop = self.cfg.rounds_for_bits(self.n, bits);
        let rounds = if self.cfg.model.is_clique() {
            per_hop
        } else {
            2 * diameter.max(1) * per_hop
        };
        self.ledger.charge(rounds, bits * self.n as u64);
    }

    /// Charges one round in which every vertex broadcasts its `O(log n)`-bit
    /// identifier and returns the identifier of the elected leader (the
    /// highest identifier, as in Algorithm 6 of the paper).
    pub fn elect_leader(&mut self) -> usize {
        self.ledger.charge(
            1,
            self.n as u64 * u64::from(crate::model::ceil_log2(self.n.max(2) as u64)),
        );
        self.n - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;
    use crate::payload::{Field, Message};

    #[test]
    fn clique_exchange_delivers_to_everyone() {
        let mut net = Network::clique(ModelConfig::bcc(), 4);
        let delivered = net.exchange(|v| Some(Field::id(v, 4)));
        for v in 0..4 {
            assert_eq!(delivered[v].len(), 3);
            assert!(delivered[v].iter().all(|(from, _)| *from != v));
        }
        assert_eq!(net.ledger().total_rounds(), 1);
    }

    #[test]
    fn graph_exchange_respects_topology() {
        // Path 0 - 1 - 2.
        let adj = vec![vec![1], vec![0, 2], vec![1]];
        let mut net = Network::on_graph(ModelConfig::broadcast_congest(), adj).unwrap();
        let delivered = net.exchange(|v| Some(Field::id(v, 3)));
        assert_eq!(delivered[0].len(), 1);
        assert_eq!(delivered[1].len(), 2);
        assert_eq!(delivered[2].len(), 1);
    }

    #[test]
    fn wide_messages_charge_multiple_rounds() {
        let mut net = Network::clique(ModelConfig::bcc(), 16); // B = 4 bits
        let msg = Message::new().with(Field::uint(1000, 1 << 12)); // 13 bits
        net.exchange(|_| Some(msg.clone()));
        assert_eq!(net.ledger().total_rounds(), 13_u64.div_ceil(4));
    }

    #[test]
    fn silent_vertices_do_not_widen_the_round() {
        let mut net = Network::clique(ModelConfig::bcc(), 16);
        let delivered = net.exchange(|v| if v == 0 { Some(Field::id(0, 16)) } else { None });
        assert_eq!(delivered[5].len(), 1);
        assert_eq!(net.ledger().total_rounds(), 1);
    }

    #[test]
    fn unicast_rejected_under_broadcast_constraint() {
        let mut net = Network::clique(ModelConfig::bcc(), 4);
        let err = net
            .exchange_unicast(|v| vec![((v + 1) % 4, Field::flag(true))])
            .unwrap_err();
        assert!(matches!(err, RuntimeError::BroadcastViolation { .. }));
    }

    #[test]
    fn unicast_allowed_in_congested_clique() {
        let mut net = Network::clique(ModelConfig::congested_clique(), 4);
        let delivered = net
            .exchange_unicast(|v| vec![((v + 1) % 4, Field::id(v, 4))])
            .unwrap();
        assert_eq!(delivered[1].len(), 1);
        assert_eq!(delivered[1][0].0, 0);
    }

    #[test]
    fn unicast_to_non_neighbor_is_an_error() {
        let adj = vec![vec![1], vec![0, 2], vec![1]];
        let mut net = Network::on_graph(ModelConfig::congest(), adj).unwrap();
        let err = net
            .exchange_unicast(|v| {
                if v == 0 {
                    vec![(2, Field::flag(true))]
                } else {
                    vec![]
                }
            })
            .unwrap_err();
        assert_eq!(err, RuntimeError::NotANeighbor { from: 0, to: 2 });
    }

    #[test]
    fn asymmetric_topology_rejected() {
        let adj = vec![vec![1], vec![]];
        assert!(matches!(
            Network::on_graph(ModelConfig::congest(), adj),
            Err(RuntimeError::InvalidTopology(_))
        ));
    }

    #[test]
    fn share_scalars_rounds_match_bit_width() {
        let mut net = Network::clique(ModelConfig::bcc(), 16); // B = 4
        net.share_scalars(4);
        assert_eq!(net.ledger().total_rounds(), 1);
        net.share_scalars(9);
        assert_eq!(net.ledger().total_rounds(), 1 + 3);
    }

    #[test]
    fn share_varying_charges_maximum_load() {
        let mut net = Network::clique(ModelConfig::bcc(), 16); // B = 4
        net.share_varying(&[0, 1, 5, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0], 4);
        // Max count 5 values of 4 bits each = 20 bits -> 5 rounds.
        assert_eq!(net.ledger().total_rounds(), 5);
    }

    #[test]
    fn aggregation_with_diameter_costs_more_in_congest() {
        let adj = vec![vec![1], vec![0, 2], vec![1]];
        let mut bc = Network::on_graph(ModelConfig::broadcast_congest(), adj).unwrap();
        bc.aggregate_scalar_with_diameter(2, 2);
        assert_eq!(bc.ledger().total_rounds(), 4);
        let mut bcc = Network::clique(ModelConfig::bcc(), 3);
        bcc.aggregate_scalar_with_diameter(2, 2);
        assert_eq!(bcc.ledger().total_rounds(), 1);
    }

    #[test]
    fn leader_is_highest_id() {
        let mut net = Network::clique(ModelConfig::bcc(), 9);
        assert_eq!(net.elect_leader(), 8);
        assert_eq!(net.ledger().total_rounds(), 1);
        assert_eq!(net.config().model, Model::BroadcastCongestedClique);
    }
}
