//! Message payloads with explicit bit-width accounting.
//!
//! The round complexity of every algorithm in the paper is expressed in terms
//! of `B = Θ(log n)`-bit messages, and wider values (edge weights bounded by
//! `W`, fixed-point reals with `O(log(nU/ε))` bits) are charged
//! `⌈bits / B⌉` rounds. To keep that accounting honest, every value placed in
//! a message is wrapped in a [`Field`] that knows its encoded width; the
//! simulator charges rounds from the *encoded* width, never from the width of
//! the in-memory `f64`/`i64` representation.

use serde::{Deserialize, Serialize};

use crate::model::ceil_log2;

/// Number of bits needed to encode a non-negative integer in `0..=max_value`.
pub fn bits_for_range(max_value: u64) -> u32 {
    ceil_log2(max_value.saturating_add(1).max(2))
}

/// Number of bits used to encode a real value with the paper's fixed-point
/// convention: values of magnitude at most `max_abs` with additive resolution
/// `resolution` need `⌈log2(2·max_abs/resolution + 1)⌉` bits (one sign bit is
/// folded into the range).
pub fn bits_for_real(max_abs: f64, resolution: f64) -> u32 {
    assert!(
        max_abs.is_finite() && resolution.is_finite() && resolution > 0.0,
        "bits_for_real requires finite max_abs and positive resolution"
    );
    let levels = (2.0 * max_abs.abs() / resolution)
        .max(1.0)
        .min(u64::MAX as f64 / 4.0);
    bits_for_range((levels.ceil() as u64).saturating_add(1))
}

/// One typed field inside a message, together with its encoded bit width.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Field {
    /// A vertex or cluster identifier in `0..n`, `⌈log2 n⌉` bits.
    Id {
        /// The identifier.
        value: usize,
        /// Encoded width in bits.
        bits: u32,
    },
    /// A bounded non-negative integer (e.g. an integer edge weight `≤ W`).
    Uint {
        /// The integer value.
        value: u64,
        /// Encoded width in bits.
        bits: u32,
    },
    /// A bounded signed integer.
    Int {
        /// The integer value.
        value: i64,
        /// Encoded width in bits (including the sign bit).
        bits: u32,
    },
    /// A fixed-point encoded real value.
    Real {
        /// The real value (stored as `f64`, charged at the encoded width).
        value: f64,
        /// Encoded width in bits.
        bits: u32,
    },
    /// A single-bit flag.
    Flag {
        /// The flag value.
        value: bool,
    },
    /// A sentinel "⊥" marker (used e.g. when `Connect` returns no neighbor).
    Bot,
}

impl Field {
    /// A vertex/cluster identifier field for an `n`-vertex network.
    pub fn id(value: usize, n: usize) -> Self {
        Field::Id {
            value,
            bits: bits_for_range(n.max(1) as u64 - 1),
        }
    }

    /// A non-negative integer field with values in `0..=max_value`.
    pub fn uint(value: u64, max_value: u64) -> Self {
        debug_assert!(value <= max_value);
        Field::Uint {
            value,
            bits: bits_for_range(max_value),
        }
    }

    /// A signed integer field with magnitude at most `max_abs`.
    pub fn int(value: i64, max_abs: u64) -> Self {
        debug_assert!(value.unsigned_abs() <= max_abs);
        Field::Int {
            value,
            bits: bits_for_range(max_abs) + 1,
        }
    }

    /// A fixed-point real field with magnitude at most `max_abs` and additive
    /// resolution `resolution`.
    pub fn real(value: f64, max_abs: f64, resolution: f64) -> Self {
        Field::Real {
            value,
            bits: bits_for_real(max_abs, resolution),
        }
    }

    /// A single-bit flag field.
    pub fn flag(value: bool) -> Self {
        Field::Flag { value }
    }

    /// The encoded width of this field in bits.
    pub fn bits(&self) -> u64 {
        match self {
            Field::Id { bits, .. } | Field::Uint { bits, .. } | Field::Real { bits, .. } => {
                u64::from(*bits)
            }
            Field::Int { bits, .. } => u64::from(*bits),
            Field::Flag { .. } => 1,
            Field::Bot => 1,
        }
    }
}

/// A message assembled from typed [`Field`]s.
///
/// # Examples
///
/// ```
/// use bcc_runtime::payload::{Field, Message};
///
/// let msg = Message::new()
///     .with(Field::id(3, 16))
///     .with(Field::uint(42, 1 << 10))
///     .with(Field::flag(true));
/// assert_eq!(msg.bits(), 4 + 11 + 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Message {
    fields: Vec<Field>,
}

impl Message {
    /// Creates an empty message (zero bits).
    pub fn new() -> Self {
        Message { fields: Vec::new() }
    }

    /// Appends a field, builder style.
    pub fn with(mut self, field: Field) -> Self {
        self.fields.push(field);
        self
    }

    /// Appends a field in place.
    pub fn push(&mut self, field: Field) {
        self.fields.push(field);
    }

    /// The fields of the message, in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Total encoded width in bits.
    pub fn bits(&self) -> u64 {
        self.fields.iter().map(Field::bits).sum()
    }

    /// Returns `true` if the message carries no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

/// Types that know the encoded width of their on-the-wire representation.
///
/// The simulator charges rounds based on this width, so implementations must
/// report the number of bits the value would occupy under the paper's
/// encoding conventions, not `std::mem::size_of`.
pub trait MessageSize {
    /// Encoded width in bits.
    fn message_bits(&self) -> u64;
}

impl MessageSize for Message {
    fn message_bits(&self) -> u64 {
        self.bits()
    }
}

impl MessageSize for Field {
    fn message_bits(&self) -> u64 {
        self.bits()
    }
}

impl MessageSize for () {
    fn message_bits(&self) -> u64 {
        0
    }
}

impl<T: MessageSize> MessageSize for Option<T> {
    fn message_bits(&self) -> u64 {
        match self {
            Some(inner) => 1 + inner.message_bits(),
            None => 1,
        }
    }
}

impl<T: MessageSize> MessageSize for Vec<T> {
    fn message_bits(&self) -> u64 {
        self.iter().map(MessageSize::message_bits).sum()
    }
}

impl<A: MessageSize, B: MessageSize> MessageSize for (A, B) {
    fn message_bits(&self) -> u64 {
        self.0.message_bits() + self.1.message_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_range_matches_hand_counts() {
        assert_eq!(bits_for_range(0), 1);
        assert_eq!(bits_for_range(1), 1);
        assert_eq!(bits_for_range(2), 2);
        assert_eq!(bits_for_range(3), 2);
        assert_eq!(bits_for_range(255), 8);
        assert_eq!(bits_for_range(256), 9);
    }

    #[test]
    fn bits_for_real_scales_with_precision() {
        let coarse = bits_for_real(1.0, 0.5);
        let fine = bits_for_real(1.0, 1.0 / 1024.0);
        assert!(fine > coarse);
        // 2 * 1.0 / (1/1024) = 2048 levels -> 11-12 bits.
        assert!((11..=13).contains(&fine), "fine = {fine}");
    }

    #[test]
    #[should_panic]
    fn bits_for_real_rejects_zero_resolution() {
        let _ = bits_for_real(1.0, 0.0);
    }

    #[test]
    fn field_widths() {
        assert_eq!(Field::id(5, 64).bits(), 6);
        assert_eq!(Field::uint(9, 1000).bits(), 10);
        assert_eq!(Field::int(-9, 1000).bits(), 11);
        assert_eq!(Field::flag(true).bits(), 1);
        assert_eq!(Field::Bot.bits(), 1);
    }

    #[test]
    fn message_accumulates_bits() {
        let mut msg = Message::new();
        assert!(msg.is_empty());
        assert_eq!(msg.bits(), 0);
        msg.push(Field::id(0, 1024));
        msg.push(Field::uint(100, 1 << 20));
        assert_eq!(msg.bits(), 10 + 21);
        assert_eq!(msg.fields().len(), 2);
    }

    #[test]
    fn message_size_impls_compose() {
        let m = Message::new().with(Field::flag(false));
        assert_eq!(Some(m.clone()).message_bits(), 2);
        assert_eq!(None::<Message>.message_bits(), 1);
        assert_eq!(vec![m.clone(), m.clone()].message_bits(), 2);
        assert_eq!(((), m).message_bits(), 1);
    }
}
