//! Message-passing model definitions.
//!
//! The paper works with four synchronous message-passing models that differ in
//! two orthogonal properties:
//!
//! * **topology** — whether communication is restricted to the edges of the
//!   input graph (CONGEST family) or allowed between every pair of vertices
//!   (Congested Clique family), and
//! * **broadcast constraint** — whether a vertex may send *different* messages
//!   to different neighbors in a round (unicast) or must send the *same*
//!   message to all of them (broadcast).
//!
//! All four share the bandwidth constraint: messages carry `B = Θ(log n)`
//! bits per round.

use serde::{Deserialize, Serialize};

/// The four bandwidth-constrained synchronous models considered in the paper.
///
/// # Examples
///
/// ```
/// use bcc_runtime::Model;
///
/// let bcc = Model::BroadcastCongestedClique;
/// assert!(bcc.is_broadcast());
/// assert!(bcc.is_clique());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Model {
    /// CONGEST: unicast along the edges of the communication graph.
    Congest,
    /// Broadcast CONGEST: one message per vertex per round, delivered to all
    /// of its graph neighbors.
    BroadcastCongest,
    /// Congested Clique: unicast between every pair of vertices.
    CongestedClique,
    /// Broadcast Congested Clique: one message per vertex per round, written
    /// to a shared blackboard readable by everyone.
    BroadcastCongestedClique,
}

impl Model {
    /// Returns `true` if the model imposes the broadcast constraint
    /// (a vertex sends the same message to all of its neighbors).
    pub fn is_broadcast(self) -> bool {
        matches!(
            self,
            Model::BroadcastCongest | Model::BroadcastCongestedClique
        )
    }

    /// Returns `true` if communication is allowed between every pair of
    /// vertices regardless of the input-graph topology.
    pub fn is_clique(self) -> bool {
        matches!(
            self,
            Model::CongestedClique | Model::BroadcastCongestedClique
        )
    }

    /// A short human-readable name (`"BC"`, `"BCC"`, ...), matching the
    /// abbreviations used in the paper's Figure 1.
    pub fn short_name(self) -> &'static str {
        match self {
            Model::Congest => "CONGEST",
            Model::BroadcastCongest => "BC",
            Model::CongestedClique => "CC",
            Model::BroadcastCongestedClique => "BCC",
        }
    }
}

impl std::fmt::Display for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// `⌈log2(x)⌉` for `x ≥ 1`, with `ceil_log2(1) = 1` so that identifiers of a
/// single-vertex network still occupy one bit.
pub fn ceil_log2(x: u64) -> u32 {
    debug_assert!(x >= 1, "ceil_log2 is only defined for x >= 1");
    if x <= 2 {
        1
    } else {
        64 - (x - 1).leading_zeros()
    }
}

/// Bandwidth and topology configuration of a simulated network.
///
/// The paper fixes the per-round message size to `B = Θ(log n)` bits. The
/// hidden constant matters for concrete round counts, so it is exposed here as
/// [`ModelConfig::bandwidth_factor`]; the default of `1` charges exactly
/// `⌈log2 n⌉` bits per message slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Which of the four models is simulated.
    pub model: Model,
    /// Multiplier `c` in `B = c · ⌈log2 n⌉`.
    pub bandwidth_factor: u32,
}

impl ModelConfig {
    /// Configuration for the Broadcast Congested Clique with the default
    /// bandwidth `B = ⌈log2 n⌉`.
    pub fn bcc() -> Self {
        ModelConfig {
            model: Model::BroadcastCongestedClique,
            bandwidth_factor: 1,
        }
    }

    /// Configuration for the Broadcast CONGEST model with the default
    /// bandwidth `B = ⌈log2 n⌉`.
    pub fn broadcast_congest() -> Self {
        ModelConfig {
            model: Model::BroadcastCongest,
            bandwidth_factor: 1,
        }
    }

    /// Configuration for the (unicast) CONGEST model.
    pub fn congest() -> Self {
        ModelConfig {
            model: Model::Congest,
            bandwidth_factor: 1,
        }
    }

    /// Configuration for the (unicast) Congested Clique.
    pub fn congested_clique() -> Self {
        ModelConfig {
            model: Model::CongestedClique,
            bandwidth_factor: 1,
        }
    }

    /// Overrides the bandwidth multiplier `c` in `B = c · ⌈log2 n⌉`.
    pub fn with_bandwidth_factor(mut self, factor: u32) -> Self {
        assert!(factor >= 1, "bandwidth factor must be at least 1");
        self.bandwidth_factor = factor;
        self
    }

    /// Per-round message size in bits for an `n`-vertex network.
    pub fn bandwidth_bits(&self, n: usize) -> u64 {
        let n = n.max(2) as u64;
        u64::from(self.bandwidth_factor) * u64::from(ceil_log2(n))
    }

    /// Number of rounds needed to push `bits` bits through one message slot.
    ///
    /// Zero-bit payloads (e.g. a pure "I am silent" signal) still consume one
    /// round because the round happened.
    pub fn rounds_for_bits(&self, n: usize, bits: u64) -> u64 {
        let b = self.bandwidth_bits(n);
        if bits == 0 {
            1
        } else {
            bits.div_ceil(b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_and_clique_flags() {
        assert!(!Model::Congest.is_broadcast());
        assert!(!Model::Congest.is_clique());
        assert!(Model::BroadcastCongest.is_broadcast());
        assert!(!Model::BroadcastCongest.is_clique());
        assert!(!Model::CongestedClique.is_broadcast());
        assert!(Model::CongestedClique.is_clique());
        assert!(Model::BroadcastCongestedClique.is_broadcast());
        assert!(Model::BroadcastCongestedClique.is_clique());
    }

    #[test]
    fn short_names_are_paper_abbreviations() {
        assert_eq!(Model::BroadcastCongest.short_name(), "BC");
        assert_eq!(Model::BroadcastCongestedClique.short_name(), "BCC");
        assert_eq!(format!("{}", Model::Congest), "CONGEST");
    }

    #[test]
    fn ceil_log2_small_values() {
        assert_eq!(ceil_log2(1), 1);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn bandwidth_scales_with_log_n() {
        let cfg = ModelConfig::bcc();
        assert_eq!(cfg.bandwidth_bits(2), 1);
        assert_eq!(cfg.bandwidth_bits(1024), 10);
        let wide = ModelConfig::bcc().with_bandwidth_factor(4);
        assert_eq!(wide.bandwidth_bits(1024), 40);
    }

    #[test]
    fn rounds_for_bits_rounds_up() {
        let cfg = ModelConfig::bcc();
        // n = 1024 -> B = 10 bits.
        assert_eq!(cfg.rounds_for_bits(1024, 0), 1);
        assert_eq!(cfg.rounds_for_bits(1024, 1), 1);
        assert_eq!(cfg.rounds_for_bits(1024, 10), 1);
        assert_eq!(cfg.rounds_for_bits(1024, 11), 2);
        assert_eq!(cfg.rounds_for_bits(1024, 95), 10);
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_factor_rejected() {
        let _ = ModelConfig::bcc().with_bandwidth_factor(0);
    }
}
