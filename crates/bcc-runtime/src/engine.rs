//! A strict round-synchronous executor for vertex programs.
//!
//! [`Network::exchange`](crate::Network::exchange) lets algorithm drivers
//! orchestrate communication steps from a global loop, which is convenient for
//! the numerically heavy algorithms of the paper. This module provides the
//! stricter, fully local alternative: a [`VertexProgram`] only ever sees its
//! own state and its incoming messages, and the [`Engine`] advances all
//! programs in lock-step, validating the broadcast and topology constraints on
//! every round. It is used by the substrate's self-tests and by examples that
//! want to demonstrate a textbook CONGEST execution.

use crate::error::RuntimeError;
use crate::ledger::RoundLedger;
use crate::model::ModelConfig;
use crate::network::Topology;
use crate::payload::MessageSize;

/// What a vertex emits at the end of a round.
#[derive(Debug, Clone, PartialEq)]
pub enum Outgoing<M> {
    /// Send nothing this round.
    Silent,
    /// Send the same message to every neighbor (always legal).
    Broadcast(M),
    /// Send individual messages; only legal in unicast models, and only to
    /// neighbors.
    Unicast(Vec<(usize, M)>),
}

/// Static, per-vertex information available to a [`VertexProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexCtx {
    /// This vertex's identifier in `0..n`.
    pub id: usize,
    /// Number of vertices in the network.
    pub n: usize,
    /// Current round index (0-based), valid inside [`VertexProgram::round`].
    pub round: u64,
}

/// A local algorithm run at one vertex by the [`Engine`].
pub trait VertexProgram {
    /// The message type exchanged by the program.
    type Msg: MessageSize + Clone;

    /// Called once before round 0.
    fn init(&mut self, _ctx: &VertexCtx) {}

    /// Executes one round: consumes the messages received at the *start* of
    /// this round (sent in the previous round) and returns what to send.
    fn round(&mut self, ctx: &VertexCtx, incoming: &[(usize, Self::Msg)]) -> Outgoing<Self::Msg>;

    /// Returns `true` once this vertex has produced its share of the output.
    /// The engine stops when all vertices are done.
    fn is_done(&self) -> bool;
}

/// Result of a completed [`Engine`] execution.
#[derive(Debug, Clone)]
pub struct Execution<P> {
    /// The final per-vertex program states (holding the distributed output).
    pub programs: Vec<P>,
    /// Round/bit accounting of the execution.
    pub ledger: RoundLedger,
}

/// Strict executor of [`VertexProgram`]s under a given model configuration.
#[derive(Debug, Clone)]
pub struct Engine {
    cfg: ModelConfig,
    topology: Topology,
    n: usize,
}

impl Engine {
    /// Engine over a clique topology on `n` vertices.
    pub fn clique(cfg: ModelConfig, n: usize) -> Self {
        Engine {
            cfg,
            topology: Topology::Clique,
            n,
        }
    }

    /// Engine over an explicit undirected communication graph.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidTopology`] for asymmetric adjacency
    /// lists, self-loops or out-of-range endpoints.
    pub fn on_graph(cfg: ModelConfig, adjacency: Vec<Vec<usize>>) -> Result<Self, RuntimeError> {
        // Reuse Network's validation.
        let net = crate::Network::on_graph(cfg, adjacency)?;
        let n = net.n();
        let topology = {
            // Network does not expose its topology; rebuild it from recipients.
            let adj: Vec<Vec<usize>> = (0..n).map(|v| net.recipients(v)).collect();
            Topology::Graph(adj)
        };
        Ok(Engine { cfg, topology, n })
    }

    fn recipients(&self, v: usize) -> Vec<usize> {
        match &self.topology {
            Topology::Clique => (0..self.n).filter(|&u| u != v).collect(),
            Topology::Graph(adj) => adj[v].clone(),
        }
    }

    fn is_neighbor(&self, v: usize, u: usize) -> bool {
        if v == u {
            return false;
        }
        match &self.topology {
            Topology::Clique => true,
            Topology::Graph(adj) => adj[v].contains(&u),
        }
    }

    /// Runs one program per vertex until all report [`VertexProgram::is_done`]
    /// or the round limit is hit.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::RoundLimitExceeded`] if not all programs terminate
    ///   within `max_rounds` rounds.
    /// * [`RuntimeError::BroadcastViolation`] if a program unicasts under a
    ///   broadcast model.
    /// * [`RuntimeError::NotANeighbor`] for unicasts to non-neighbors.
    pub fn run<P: VertexProgram>(
        &self,
        mut programs: Vec<P>,
        max_rounds: u64,
    ) -> Result<Execution<P>, RuntimeError> {
        assert_eq!(
            programs.len(),
            self.n,
            "exactly one program per vertex expected"
        );
        let mut ledger = RoundLedger::new();
        ledger.begin_phase("engine");
        for (id, p) in programs.iter_mut().enumerate() {
            p.init(&VertexCtx {
                id,
                n: self.n,
                round: 0,
            });
        }
        let mut inboxes: Vec<Vec<(usize, P::Msg)>> = vec![Vec::new(); self.n];
        let mut round = 0u64;
        loop {
            if programs.iter().all(|p| p.is_done()) {
                return Ok(Execution { programs, ledger });
            }
            if round >= max_rounds {
                return Err(RuntimeError::RoundLimitExceeded { limit: max_rounds });
            }
            let mut next_inboxes: Vec<Vec<(usize, P::Msg)>> = vec![Vec::new(); self.n];
            let mut max_bits = 0u64;
            let mut total_bits = 0u64;
            for v in 0..self.n {
                let ctx = VertexCtx {
                    id: v,
                    n: self.n,
                    round,
                };
                let incoming = std::mem::take(&mut inboxes[v]);
                match programs[v].round(&ctx, &incoming) {
                    Outgoing::Silent => {}
                    Outgoing::Broadcast(msg) => {
                        let bits = msg.message_bits();
                        max_bits = max_bits.max(bits);
                        total_bits += bits;
                        for u in self.recipients(v) {
                            next_inboxes[u].push((v, msg.clone()));
                        }
                    }
                    Outgoing::Unicast(msgs) => {
                        if self.cfg.model.is_broadcast() {
                            return Err(RuntimeError::BroadcastViolation { vertex: v, round });
                        }
                        let mut vertex_max = 0u64;
                        for (to, msg) in msgs {
                            if to >= self.n {
                                return Err(RuntimeError::InvalidVertex {
                                    vertex: to,
                                    n: self.n,
                                });
                            }
                            if !self.is_neighbor(v, to) {
                                return Err(RuntimeError::NotANeighbor { from: v, to });
                            }
                            let bits = msg.message_bits();
                            vertex_max = vertex_max.max(bits);
                            total_bits += bits;
                            next_inboxes[to].push((v, msg));
                        }
                        max_bits = max_bits.max(vertex_max);
                    }
                }
            }
            let charged = self.cfg.rounds_for_bits(self.n, max_bits);
            ledger.charge(charged, total_bits);
            inboxes = next_inboxes;
            round += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use crate::payload::Field;

    /// Each vertex learns the maximum identifier in the network by flooding.
    #[derive(Debug)]
    struct MaxIdFlood {
        known_max: usize,
        changed: bool,
        quiet_rounds: u32,
    }

    impl VertexProgram for MaxIdFlood {
        type Msg = Field;

        fn init(&mut self, ctx: &VertexCtx) {
            self.known_max = ctx.id;
            self.changed = true;
        }

        fn round(&mut self, ctx: &VertexCtx, incoming: &[(usize, Field)]) -> Outgoing<Field> {
            for (_, msg) in incoming {
                if let Field::Id { value, .. } = msg {
                    if *value > self.known_max {
                        self.known_max = *value;
                        self.changed = true;
                    }
                }
            }
            if self.changed {
                self.changed = false;
                self.quiet_rounds = 0;
                Outgoing::Broadcast(Field::id(self.known_max, ctx.n))
            } else {
                self.quiet_rounds += 1;
                Outgoing::Silent
            }
        }

        fn is_done(&self) -> bool {
            self.quiet_rounds >= 2
        }
    }

    fn flood_programs(n: usize) -> Vec<MaxIdFlood> {
        (0..n)
            .map(|_| MaxIdFlood {
                known_max: 0,
                changed: false,
                quiet_rounds: 0,
            })
            .collect()
    }

    #[test]
    fn flooding_on_a_path_takes_linear_rounds() {
        let n = 6;
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|v| {
                let mut a = Vec::new();
                if v > 0 {
                    a.push(v - 1);
                }
                if v + 1 < n {
                    a.push(v + 1);
                }
                a
            })
            .collect();
        let engine = Engine::on_graph(ModelConfig::broadcast_congest(), adj).unwrap();
        let exec = engine.run(flood_programs(n), 100).unwrap();
        for p in &exec.programs {
            assert_eq!(p.known_max, n - 1);
        }
        // Information from vertex n-1 needs n-1 hops to reach vertex 0.
        assert!(exec.ledger.total_rounds() as usize >= n - 1);
    }

    #[test]
    fn flooding_on_a_clique_is_constant_rounds() {
        let n = 8;
        let engine = Engine::clique(ModelConfig::bcc(), n);
        let exec = engine.run(flood_programs(n), 10).unwrap();
        for p in &exec.programs {
            assert_eq!(p.known_max, n - 1);
        }
        assert!(exec.ledger.total_rounds() <= 5);
    }

    #[test]
    fn round_limit_is_enforced() {
        let n = 6;
        let engine = Engine::clique(ModelConfig::bcc(), n);
        let err = engine.run(flood_programs(n), 1).unwrap_err();
        assert_eq!(err, RuntimeError::RoundLimitExceeded { limit: 1 });
    }

    /// A program that (incorrectly) unicasts under a broadcast model.
    #[derive(Debug)]
    struct BadUnicast {
        sent: bool,
    }

    impl VertexProgram for BadUnicast {
        type Msg = Field;
        fn round(&mut self, ctx: &VertexCtx, _incoming: &[(usize, Field)]) -> Outgoing<Field> {
            self.sent = true;
            Outgoing::Unicast(vec![((ctx.id + 1) % ctx.n, Field::flag(true))])
        }
        fn is_done(&self) -> bool {
            self.sent
        }
    }

    #[test]
    fn unicast_under_broadcast_model_is_rejected() {
        let engine = Engine::clique(ModelConfig::bcc(), 3);
        let programs = (0..3).map(|_| BadUnicast { sent: false }).collect();
        let err = engine.run(programs, 5).unwrap_err();
        assert!(matches!(err, RuntimeError::BroadcastViolation { .. }));
    }

    #[test]
    fn unicast_under_congest_is_accepted() {
        let engine = Engine::clique(ModelConfig::congested_clique(), 3);
        let programs = (0..3).map(|_| BadUnicast { sent: false }).collect();
        let exec = engine.run(programs, 5).unwrap();
        assert_eq!(exec.ledger.total_rounds(), 1);
    }
}
