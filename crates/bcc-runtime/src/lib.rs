//! # bcc-runtime
//!
//! A deterministic, round-accounting simulator of the four synchronous
//! bandwidth-constrained message-passing models used in *"The Laplacian
//! Paradigm in the Broadcast Congested Clique"* (Forster & de Vos, PODC 2022):
//! CONGEST, Broadcast CONGEST, Congested Clique and Broadcast Congested
//! Clique.
//!
//! The simulator's job is **not** to parallelize work — local computation is
//! free in these models — but to account the single cost metric the paper
//! bounds: the number of synchronous rounds, with `B = Θ(log n)`-bit messages
//! and the broadcast constraint enforced.
//!
//! ## Layers
//!
//! * [`Network`] — the charged communication layer: message exchanges plus
//!   numeric primitives (`share_scalars`, `broadcast_from`, ...), all of which
//!   charge rounds on a [`RoundLedger`].
//! * [`engine`] — a strict executor for fully local [`engine::VertexProgram`]s
//!   with per-round validation of the model's constraints.
//! * [`payload`] — typed message fields with explicit encoded bit widths.
//! * [`shared_rand`] — leader-sampled shared randomness and reproducible
//!   per-vertex private randomness.
//!
//! ## Example
//!
//! ```
//! use bcc_runtime::{ModelConfig, Network};
//! use bcc_runtime::payload::Field;
//!
//! // 64 processors in the Broadcast Congested Clique.
//! let mut net = Network::clique(ModelConfig::bcc(), 64);
//! net.begin_phase("hello");
//! // Everyone announces its identifier on the blackboard: a single round.
//! let heard = net.exchange(|v| Some(Field::id(v, 64)));
//! assert_eq!(heard[0].len(), 63);
//! assert_eq!(net.ledger().total_rounds(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod ledger;
pub mod model;
pub mod network;
pub mod payload;
pub mod shared_rand;

pub use error::RuntimeError;
pub use ledger::{PhaseStats, RoundLedger};
pub use model::{ceil_log2, Model, ModelConfig};
pub use network::{Network, Topology};
pub use payload::{Field, Message, MessageSize};
pub use shared_rand::{splitmix64, vertex_rng, SharedRandomness};
