//! Error type of the runtime crate.

/// Errors raised by the simulator when an algorithm violates the rules of the
/// simulated model or is configured inconsistently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Unicast communication was requested in a broadcast-constrained model.
    BroadcastViolation {
        /// Vertex that attempted to send distinct messages.
        vertex: usize,
        /// Round index at which the violation occurred.
        round: u64,
    },
    /// A vertex attempted to send a message to a non-neighbor in a
    /// CONGEST-family model.
    NotANeighbor {
        /// Sending vertex.
        from: usize,
        /// Intended recipient which is not adjacent to `from`.
        to: usize,
    },
    /// A vertex identifier was out of range for the network size.
    InvalidVertex {
        /// Offending identifier.
        vertex: usize,
        /// Number of vertices in the network.
        n: usize,
    },
    /// The network topology was inconsistent (e.g. asymmetric adjacency).
    InvalidTopology(String),
    /// A strict engine execution exceeded its round budget.
    RoundLimitExceeded {
        /// Maximum number of rounds the caller allowed.
        limit: u64,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::BroadcastViolation { vertex, round } => write!(
                f,
                "vertex {vertex} sent distinct messages in round {round} under a broadcast model"
            ),
            RuntimeError::NotANeighbor { from, to } => {
                write!(f, "vertex {from} attempted to message non-neighbor {to}")
            }
            RuntimeError::InvalidVertex { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} is out of range for an {n}-vertex network"
                )
            }
            RuntimeError::InvalidTopology(msg) => write!(f, "invalid topology: {msg}"),
            RuntimeError::RoundLimitExceeded { limit } => {
                write!(f, "execution exceeded the round limit of {limit}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = RuntimeError::BroadcastViolation {
            vertex: 3,
            round: 7,
        };
        assert!(err.to_string().contains("vertex 3"));
        assert!(err.to_string().contains("round 7"));
        let err = RuntimeError::NotANeighbor { from: 1, to: 2 };
        assert!(err.to_string().contains("non-neighbor"));
        let err = RuntimeError::RoundLimitExceeded { limit: 10 };
        assert!(err.to_string().contains("10"));
    }
}
