//! Round accounting.
//!
//! Every communication operation performed through [`crate::Network`] charges
//! rounds to a [`RoundLedger`]. The ledger is organized into named *phases*
//! (e.g. `"sparsifier preprocessing"`, `"path following"`), so experiments can
//! report where the rounds of a composite algorithm are spent — this is the
//! quantity all theorems of the paper bound.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Statistics accumulated for one named phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Synchronous rounds charged to this phase.
    pub rounds: u64,
    /// Total bits written to the blackboard / sent over links in this phase,
    /// summed over vertices.
    pub bits: u64,
    /// Number of communication operations (exchanges, broadcasts, ...).
    pub operations: u64,
}

/// Per-phase round and bit accounting for a simulated execution.
///
/// # Examples
///
/// ```
/// use bcc_runtime::RoundLedger;
///
/// let mut ledger = RoundLedger::new();
/// ledger.begin_phase("spanner");
/// ledger.charge(3, 120);
/// ledger.begin_phase("sparsifier");
/// ledger.charge(2, 40);
/// assert_eq!(ledger.total_rounds(), 5);
/// assert_eq!(ledger.phase_stats("spanner").unwrap().rounds, 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundLedger {
    phases: BTreeMap<String, PhaseStats>,
    order: Vec<String>,
    current: Option<String>,
    total: PhaseStats,
}

impl RoundLedger {
    /// Creates an empty ledger with an implicit unnamed phase.
    pub fn new() -> Self {
        RoundLedger::default()
    }

    /// Starts (or resumes) a named phase; subsequent charges accrue to it.
    pub fn begin_phase(&mut self, name: &str) {
        if self.current.as_deref() == Some(name) {
            return;
        }
        if !self.phases.contains_key(name) {
            self.phases.insert(name.to_owned(), PhaseStats::default());
            self.order.push(name.to_owned());
        }
        self.current = Some(name.to_owned());
    }

    /// Name of the phase charges currently accrue to, if any.
    pub fn current_phase(&self) -> Option<&str> {
        self.current.as_deref()
    }

    /// Charges `rounds` rounds and `bits` broadcast bits to the current phase.
    ///
    /// Allocation-free on the hot path: the current phase entry already
    /// exists after the first charge, so only the first charge to a brand-new
    /// phase name pays for the `String` insert.
    pub fn charge(&mut self, rounds: u64, bits: u64) {
        self.total.rounds += rounds;
        self.total.bits += bits;
        self.total.operations += 1;
        let name = self.current.as_deref().unwrap_or("(default)");
        if !self.phases.contains_key(name) {
            self.phases.insert(name.to_owned(), PhaseStats::default());
            self.order.push(name.to_owned());
        }
        let stats = self.phases.get_mut(name).expect("phase just inserted");
        stats.rounds += rounds;
        stats.bits += bits;
        stats.operations += 1;
    }

    /// Total rounds charged across all phases.
    pub fn total_rounds(&self) -> u64 {
        self.total.rounds
    }

    /// Total bits charged across all phases.
    pub fn total_bits(&self) -> u64 {
        self.total.bits
    }

    /// Total number of communication operations.
    pub fn total_operations(&self) -> u64 {
        self.total.operations
    }

    /// Statistics of a specific phase, if it exists.
    pub fn phase_stats(&self, name: &str) -> Option<PhaseStats> {
        self.phases.get(name).copied()
    }

    /// Phase names in the order they were first started.
    pub fn phase_names(&self) -> impl Iterator<Item = &str> {
        self.order.iter().map(String::as_str)
    }

    /// Merges one externally accumulated phase into this ledger: adds
    /// `stats` to the named phase (creating it at the end of the phase order
    /// if new) and to the totals, counting `stats.operations` operations.
    ///
    /// This is the primitive batch-serving layers use to fold a snapshot
    /// report (a list of `(phase, stats)` pairs produced by a worker on its
    /// own ledger) back into a cumulative ledger without access to the
    /// worker's `RoundLedger` itself.
    pub fn charge_phase(&mut self, name: &str, stats: PhaseStats) {
        if !self.phases.contains_key(name) {
            self.phases.insert(name.to_owned(), PhaseStats::default());
            self.order.push(name.to_owned());
        }
        let mine = self.phases.get_mut(name).expect("phase just inserted");
        mine.rounds += stats.rounds;
        mine.bits += stats.bits;
        mine.operations += stats.operations;
        self.total.rounds += stats.rounds;
        self.total.bits += stats.bits;
        self.total.operations += stats.operations;
    }

    /// Merges a whole snapshot breakdown — a list of `(phase, stats)` pairs,
    /// e.g. a serialized report — into this ledger via
    /// [`RoundLedger::charge_phase`].
    ///
    /// Because phase-wise addition is commutative, folding worker reports in
    /// *submission* order through this method yields the same ledger no
    /// matter in which order the workers actually completed — the property
    /// streaming engines rely on to produce deterministic cumulative
    /// accounting from out-of-order completions.
    pub fn charge_phases<'a, I>(&mut self, phases: I)
    where
        I: IntoIterator<Item = (&'a str, PhaseStats)>,
    {
        for (name, stats) in phases {
            self.charge_phase(name, stats);
        }
    }

    /// Merges another ledger into this one (phase-wise addition). Useful when
    /// sub-algorithms run on their own [`crate::Network`] clone.
    pub fn absorb(&mut self, other: &RoundLedger) {
        for name in &other.order {
            let stats = other.phases[name];
            if !self.phases.contains_key(name) {
                self.phases.insert(name.clone(), PhaseStats::default());
                self.order.push(name.clone());
            }
            let mine = self.phases.get_mut(name).expect("phase just inserted");
            mine.rounds += stats.rounds;
            mine.bits += stats.bits;
            mine.operations += stats.operations;
        }
        self.total.rounds += other.total.rounds;
        self.total.bits += other.total.bits;
        self.total.operations += other.total.operations;
    }

    /// A multi-line human-readable report, one row per phase.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<36} {:>12} {:>16} {:>10}\n",
            "phase", "rounds", "bits", "ops"
        ));
        for name in &self.order {
            let s = self.phases[name];
            out.push_str(&format!(
                "{:<36} {:>12} {:>16} {:>10}\n",
                name, s.rounds, s.bits, s.operations
            ));
        }
        out.push_str(&format!(
            "{:<36} {:>12} {:>16} {:>10}\n",
            "TOTAL", self.total.rounds, self.total.bits, self.total.operations
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_without_phase_go_to_default() {
        let mut ledger = RoundLedger::new();
        ledger.charge(2, 10);
        assert_eq!(ledger.total_rounds(), 2);
        assert_eq!(ledger.phase_stats("(default)").unwrap().bits, 10);
    }

    #[test]
    fn phases_accumulate_independently() {
        let mut ledger = RoundLedger::new();
        ledger.begin_phase("a");
        ledger.charge(1, 5);
        ledger.begin_phase("b");
        ledger.charge(2, 6);
        ledger.begin_phase("a");
        ledger.charge(3, 7);
        assert_eq!(ledger.phase_stats("a").unwrap().rounds, 4);
        assert_eq!(ledger.phase_stats("b").unwrap().rounds, 2);
        assert_eq!(ledger.total_rounds(), 6);
        assert_eq!(ledger.total_bits(), 18);
        assert_eq!(ledger.total_operations(), 3);
        let names: Vec<_> = ledger.phase_names().collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn absorb_merges_phase_wise() {
        let mut a = RoundLedger::new();
        a.begin_phase("x");
        a.charge(1, 1);
        let mut b = RoundLedger::new();
        b.begin_phase("x");
        b.charge(2, 2);
        b.begin_phase("y");
        b.charge(3, 3);
        a.absorb(&b);
        assert_eq!(a.phase_stats("x").unwrap().rounds, 3);
        assert_eq!(a.phase_stats("y").unwrap().rounds, 3);
        assert_eq!(a.total_rounds(), 6);
    }

    #[test]
    fn charge_phase_merges_external_stats() {
        let mut ledger = RoundLedger::new();
        ledger.begin_phase("solve");
        ledger.charge(2, 20);
        ledger.charge_phase(
            "solve",
            PhaseStats {
                rounds: 3,
                bits: 30,
                operations: 2,
            },
        );
        ledger.charge_phase(
            "preprocess",
            PhaseStats {
                rounds: 1,
                bits: 5,
                operations: 1,
            },
        );
        assert_eq!(ledger.phase_stats("solve").unwrap().rounds, 5);
        assert_eq!(ledger.phase_stats("solve").unwrap().operations, 3);
        assert_eq!(ledger.phase_stats("preprocess").unwrap().bits, 5);
        assert_eq!(ledger.total_rounds(), 6);
        assert_eq!(ledger.total_operations(), 4);
        let names: Vec<_> = ledger.phase_names().collect();
        assert_eq!(names, vec!["solve", "preprocess"]);
    }

    #[test]
    fn charge_phases_is_completion_order_independent() {
        let reports = [
            (
                "solve",
                PhaseStats {
                    rounds: 2,
                    bits: 20,
                    operations: 1,
                },
            ),
            (
                "preprocess",
                PhaseStats {
                    rounds: 5,
                    bits: 50,
                    operations: 2,
                },
            ),
            (
                "solve",
                PhaseStats {
                    rounds: 1,
                    bits: 10,
                    operations: 1,
                },
            ),
        ];
        let mut in_order = RoundLedger::new();
        in_order.charge_phases(reports.iter().map(|(n, s)| (*n, *s)));
        let mut reversed = RoundLedger::new();
        reversed.charge_phases(reports.iter().rev().map(|(n, s)| (*n, *s)));
        assert_eq!(in_order.total_rounds(), reversed.total_rounds());
        assert_eq!(in_order.phase_stats("solve"), reversed.phase_stats("solve"));
        assert_eq!(
            in_order.phase_stats("preprocess"),
            reversed.phase_stats("preprocess")
        );
        assert_eq!(in_order.total_operations(), 4);
    }

    #[test]
    fn report_contains_phase_rows() {
        let mut ledger = RoundLedger::new();
        ledger.begin_phase("solve");
        ledger.charge(7, 70);
        let report = ledger.report();
        assert!(report.contains("solve"));
        assert!(report.contains("TOTAL"));
        assert!(report.contains('7'));
    }
}
