//! Property tests of the allocation-free kernel contract: every `_into` /
//! scratch-taking kernel must be **bit-identical** to its allocating wrapper
//! on the same input. The serving engines rely on this — swapping the warm
//! per-worker scratch path in for the allocating path must never change a
//! single output bit, or the batch/stream/wire bit-identity suites (and the
//! committed goldens) would drift with engine internals.

use bcc_linalg::{cg, chebyshev, vector, CsrMatrix, DenseMatrix, SolveScratch};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Random triplets on an `n × n` system, deliberately including duplicate
/// coordinates (they exercise the summing path of the CSR builder).
fn random_triplets(n: usize, entries: usize, seed: u64) -> Vec<(usize, usize, f64)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..entries)
        .map(|_| {
            (
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen::<f64>() * 2.0 - 1.0,
            )
        })
        .collect()
}

/// A random SPD system: a symmetrized random sparse matrix made diagonally
/// dominant, in both CSR and dense form, with a random right-hand side.
fn spd_system(n: usize, seed: u64) -> (CsrMatrix, DenseMatrix, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut dense = DenseMatrix::zeros(n, n);
    for _ in 0..(3 * n) {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        let w = rng.gen::<f64>() * 2.0 - 1.0;
        dense.add_to(i, j, w);
        dense.add_to(j, i, w);
    }
    // Diagonal dominance: row sums of absolute values plus one.
    for i in 0..n {
        let row_abs: f64 = (0..n).map(|j| dense.get(i, j).abs()).sum();
        dense.add_to(i, i, row_abs + 1.0);
    }
    let mut triplets = Vec::new();
    for i in 0..n {
        for j in 0..n {
            let v = dense.get(i, j);
            if v != 0.0 {
                triplets.push((i, j, v));
            }
        }
    }
    let csr = CsrMatrix::from_triplets(n, n, &triplets);
    let b: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
    (csr, dense, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn matvec_into_is_bit_identical_to_matvec(
        n in 2usize..24,
        entries in 1usize..96,
        seed in any::<u64>(),
    ) {
        let triplets = random_triplets(n, entries, seed);
        let a = CsrMatrix::from_triplets(n, n, &triplets);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5EED);
        let x: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();

        let allocated = a.matvec(&x);
        // A dirty warm buffer: `_into` must fully overwrite it.
        let mut reused = vec![f64::NAN; n];
        a.matvec_into(&x, &mut reused);
        prop_assert_eq!(&allocated, &reused);

        let allocated_t = a.matvec_transpose(&x);
        let mut reused_t = vec![f64::NAN; n];
        a.matvec_transpose_into(&x, &mut reused_t);
        prop_assert_eq!(&allocated_t, &reused_t);
    }

    #[test]
    fn cg_scratch_path_is_bit_identical_to_the_allocating_wrapper(
        n in 2usize..16,
        seed in any::<u64>(),
    ) {
        let (a, _, b) = spd_system(n, seed);
        let allocated = cg::conjugate_gradient(|x| a.matvec(x), &b, None, 1e-10, 200);

        let mut scratch = SolveScratch::new();
        // Two runs over the same scratch: the warm second run must agree
        // bit-for-bit with the cold first one and with the wrapper.
        for _ in 0..2 {
            let stats = cg::conjugate_gradient_with(
                |x, out| a.matvec_into(x, out),
                &b,
                None,
                1e-10,
                200,
                &mut scratch,
            );
            prop_assert_eq!(&allocated.solution, &scratch.x);
            prop_assert_eq!(allocated.iterations, stats.iterations);
            prop_assert_eq!(allocated.residual_norm.to_bits(), stats.residual_norm.to_bits());
            prop_assert_eq!(allocated.converged, stats.converged);
        }
    }

    #[test]
    fn preconditioned_cg_scratch_path_is_bit_identical(
        n in 2usize..16,
        seed in any::<u64>(),
    ) {
        let (a, dense, b) = spd_system(n, seed);
        let diag: Vec<f64> = (0..n).map(|i| dense.get(i, i)).collect();
        let precond = |r: &[f64]| -> Vec<f64> {
            r.iter().zip(&diag).map(|(v, d)| v / d).collect()
        };
        let allocated =
            cg::conjugate_gradient(|x| a.matvec(x), &b, Some(&precond), 1e-10, 200);

        let mut scratch = SolveScratch::new();
        let mut jacobi = |r: &[f64], z: &mut [f64]| {
            for ((zi, ri), di) in z.iter_mut().zip(r).zip(&diag) {
                *zi = ri / di;
            }
        };
        let stats = cg::conjugate_gradient_with(
            |x, out| a.matvec_into(x, out),
            &b,
            Some(&mut jacobi),
            1e-10,
            200,
            &mut scratch,
        );
        prop_assert_eq!(&allocated.solution, &scratch.x);
        prop_assert_eq!(allocated.iterations, stats.iterations);
        prop_assert_eq!(allocated.residual_norm.to_bits(), stats.residual_norm.to_bits());
    }

    #[test]
    fn chebyshev_scratch_path_is_bit_identical_to_the_allocating_wrapper(
        n in 2usize..24,
        iterations in 1usize..40,
        seed in any::<u64>(),
    ) {
        // Diagonal test pair A = diag(d), B = κ·I with d in [1, κ].
        let kappa = 8.0;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let diag: Vec<f64> = (0..n)
            .map(|_| 1.0 + (kappa - 1.0) * rng.gen::<f64>())
            .collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();

        let allocated = chebyshev::preconditioned_chebyshev_fixed(
            |x| x.iter().zip(&diag).map(|(v, d)| v * d).collect(),
            |r| r.iter().map(|v| v / kappa).collect(),
            kappa,
            &b,
            iterations,
        );

        let mut scratch = SolveScratch::new();
        for _ in 0..2 {
            let stats = chebyshev::preconditioned_chebyshev_fixed_with(
                |x, out| {
                    for ((o, v), d) in out.iter_mut().zip(x).zip(&diag) {
                        *o = v * d;
                    }
                },
                |r, out| {
                    for (o, v) in out.iter_mut().zip(r) {
                        *o = v / kappa;
                    }
                },
                kappa,
                &b,
                iterations,
                &mut scratch,
            );
            prop_assert_eq!(&allocated.solution, &scratch.x);
            prop_assert_eq!(allocated.iterations, stats.iterations);
            prop_assert_eq!(
                allocated.residual_norm.to_bits(),
                stats.residual_norm.to_bits()
            );
        }
    }

    #[test]
    fn factored_psd_solve_into_is_bit_identical_to_solve_psd(
        n in 2usize..14,
        rhs_count in 1usize..4,
        seed in any::<u64>(),
    ) {
        let (_, dense, _) = spd_system(n, seed);
        let factored = dense.factor_psd().expect("SPD systems factor");
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFAC7);
        let mut out = vec![f64::NAN; n];
        for _ in 0..rhs_count {
            let b: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
            for zero_mean in [false, true] {
                let reference = dense
                    .solve_psd(&b, zero_mean)
                    .expect("SPD systems solve");
                factored.solve_into(&b, &mut out, zero_mean);
                prop_assert_eq!(&reference, &out);
                let allocated = factored.solve(&b, zero_mean);
                prop_assert_eq!(&reference, &allocated);
            }
        }
    }

    #[test]
    fn in_place_vector_kernels_are_bit_identical(
        n in 1usize..64,
        seed in any::<u64>(),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 10.0 - 5.0).collect();
        let alpha = rng.gen::<f64>() * 4.0 - 2.0;

        let scaled = vector::scale(&x, alpha);
        let mut in_place = x.clone();
        vector::scale_in_place(&mut in_place, alpha);
        prop_assert_eq!(&scaled, &in_place);

        let centered = vector::remove_mean(&x);
        let mut in_place = x.clone();
        vector::remove_mean_in_place(&mut in_place);
        prop_assert_eq!(&centered, &in_place);
    }
}
