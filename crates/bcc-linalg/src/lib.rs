//! # bcc-linalg
//!
//! Linear-algebra substrate for the reproduction of *"The Laplacian Paradigm
//! in the Broadcast Congested Clique"* (Forster & de Vos, PODC 2022):
//!
//! * [`vector`] — dense vector operations, weighted and mixed norms
//!   (`‖·‖_w`, `‖·‖_{w+1}` from Section 4.1).
//! * [`DenseMatrix`] — dense matrices with direct solvers, Cholesky and a
//!   Jacobi symmetric eigensolver (ground truth + free local computation).
//! * [`CsrMatrix`] — sparse matrices for LP constraint matrices and Gram
//!   matrix assembly (`Aᵀ D A`).
//! * [`cg`] — (preconditioned) conjugate gradients.
//! * [`chebyshev`] — the preconditioned Chebyshev iteration of Theorem 2.3.
//! * [`jl`] — Johnson–Lindenstrauss sketches expanded from a few shared
//!   random bits (Kane–Nelson, Theorem 4.4).
//!
//! ## Example
//!
//! ```
//! use bcc_linalg::{chebyshev, DenseMatrix};
//!
//! let a = DenseMatrix::from_rows(&[vec![2.0, -1.0], vec![-1.0, 2.0]]);
//! let b = vec![1.0, 0.0];
//! // Use an exact solve of A itself as the "preconditioner" (κ = 1).
//! let solve = {
//!     let a = a.clone();
//!     move |r: &[f64]| a.solve(r).unwrap()
//! };
//! let result = chebyshev::preconditioned_chebyshev(|x| a.matvec(x), solve, 1.0, &b, 0.01);
//! let residual: Vec<f64> = a.matvec(&result.solution);
//! assert!((residual[0] - 1.0).abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cg;
pub mod chebyshev;
pub mod dense;
pub mod jl;
pub mod scratch;
pub mod sparse;
pub mod vector;

pub use cg::{conjugate_gradient, IterativeSolve, IterativeStats};
pub use chebyshev::{preconditioned_chebyshev, ChebyshevSolve, ChebyshevStats};
pub use dense::{generalized_extreme_eigenvalues, DenseMatrix, FactoredPsd};
pub use jl::{JlSketch, SketchKind};
pub use scratch::SolveScratch;
pub use sparse::CsrMatrix;
