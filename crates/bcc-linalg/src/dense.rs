//! Dense matrices and direct solvers.
//!
//! Dense linear algebra plays two roles in this reproduction:
//!
//! 1. **Local computation inside a vertex.** In the Broadcast Congested
//!    Clique, once the sparsifier `H` is known to every vertex, "solving a
//!    Laplacian system involving `L_H`" happens internally (Corollary 2.4) —
//!    the models charge nothing for local work, so any correct local method
//!    is faithful. We use Cholesky/LU factorizations on the (small, sparse)
//!    sparsifier.
//! 2. **Ground truth in tests.** Exact solves and eigenvalue computations on
//!    small instances verify the distributed algorithms.

use crate::vector;

/// A dense row-major matrix.
///
/// # Examples
///
/// ```
/// use bcc_linalg::DenseMatrix;
///
/// let a = DenseMatrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
/// let x = a.solve(&[1.0, 2.0]).unwrap();
/// let b = a.matvec(&x);
/// assert!((b[0] - 1.0).abs() < 1e-10 && (b[1] - 2.0).abs() < 1e-10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// A zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut m = DenseMatrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged rows");
            for (j, &v) in row.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        m
    }

    /// Builds a diagonal matrix from a vector.
    pub fn diag(values: &[f64]) -> Self {
        let n = values.len();
        let mut m = DenseMatrix::zeros(n, n);
        for (i, &v) in values.iter().enumerate() {
            m.set(i, i, v);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Sets entry `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        self.data[i * self.cols + j] = value;
    }

    /// Adds `value` to entry `(i, j)`.
    pub fn add_to(&mut self, i: usize, j: usize, value: f64) {
        self.data[i * self.cols + j] += value;
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix–vector product `A x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|i| vector::dot(self.row(i), x))
            .collect()
    }

    /// Transposed matrix–vector product `Aᵀ y`.
    pub fn matvec_transpose(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let row = self.row(i);
            for j in 0..self.cols {
                out[j] += row[j] * y[i];
            }
        }
        out
    }

    /// Matrix product `A · B`.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.add_to(i, j, aik * other.get(k, j));
                }
            }
        }
        out
    }

    /// The transpose `Aᵀ`.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Solves `A x = b` by Gaussian elimination with partial pivoting.
    ///
    /// Returns `None` if the matrix is (numerically) singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "dimension mismatch");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivoting.
            let mut pivot = col;
            let mut best = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > best {
                    best = v;
                    pivot = r;
                }
            }
            if best < 1e-300 {
                return None;
            }
            if pivot != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot * n + j);
                }
                x.swap(col, pivot);
            }
            let diag = a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / diag;
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[r * n + j] -= factor * a[col * n + j];
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut v = x[col];
            for j in (col + 1)..n {
                v -= a[col * n + j] * x[j];
            }
            x[col] = v / a[col * n + col];
        }
        Some(x)
    }

    /// Solves the positive semi-definite system `A x = b` in the least-squares
    /// sense by adding a tiny Tikhonov regularization `λI`, then removing the
    /// mean if `zero_mean` is set (appropriate for Laplacian systems whose
    /// kernel is the all-ones vector).
    pub fn solve_psd(&self, b: &[f64], zero_mean: bool) -> Option<Vec<f64>> {
        let n = self.rows;
        let scale = (0..n).map(|i| self.get(i, i).abs()).fold(0.0f64, f64::max);
        let lambda = (scale.max(1.0)) * 1e-12;
        let mut reg = self.clone();
        for i in 0..n {
            reg.add_to(i, i, lambda);
        }
        let x = reg.solve(b)?;
        Some(if zero_mean {
            vector::remove_mean(&x)
        } else {
            x
        })
    }

    /// Factors the regularized matrix of [`DenseMatrix::solve_psd`] once, so
    /// repeated right-hand sides skip the `O(n³)` elimination. The returned
    /// factorization produces **bit-identical** solutions to calling
    /// `solve_psd` on this matrix: elimination on `A + λI` is independent of
    /// `b`, so recording the pivot order and multipliers and replaying them
    /// on each `b` performs exactly the same arithmetic in the same order.
    ///
    /// Returns `None` when the regularized matrix is numerically singular
    /// (the case where `solve_psd` returns `None`).
    pub fn factor_psd(&self) -> Option<FactoredPsd> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        let n = self.rows;
        // Identical regularization to `solve_psd`.
        let scale = (0..n).map(|i| self.get(i, i).abs()).fold(0.0f64, f64::max);
        let lambda = (scale.max(1.0)) * 1e-12;
        let mut lu = self.data.clone();
        for i in 0..n {
            lu[i * n + i] += lambda;
        }
        let mut pivots = vec![0usize; n];
        for col in 0..n {
            // Partial pivoting — the same scan as `solve`.
            let mut pivot = col;
            let mut best = lu[col * n + col].abs();
            for r in (col + 1)..n {
                let v = lu[r * n + col].abs();
                if v > best {
                    best = v;
                    pivot = r;
                }
            }
            if best < 1e-300 {
                return None;
            }
            pivots[col] = pivot;
            if pivot != col {
                for j in 0..n {
                    lu.swap(col * n + j, pivot * n + j);
                }
            }
            let diag = lu[col * n + col];
            for r in (col + 1)..n {
                let factor = lu[r * n + col] / diag;
                if factor != 0.0 {
                    for j in (col + 1)..n {
                        lu[r * n + j] -= factor * lu[col * n + j];
                    }
                }
                // Store the multiplier in the (never again read) lower
                // triangle, including exact zeros: replaying `b` must skip
                // exactly the rows the eliminating solve skipped (a zero
                // multiplier times an infinite entry would produce NaN).
                lu[r * n + col] = factor;
            }
        }
        Some(FactoredPsd { n, lu, pivots })
    }

    /// Cholesky factorization `A = L Lᵀ` of a symmetric positive definite
    /// matrix. Returns the lower-triangular factor, or `None` if the matrix
    /// is not (numerically) positive definite.
    pub fn cholesky(&self) -> Option<DenseMatrix> {
        assert_eq!(self.rows, self.cols, "cholesky requires a square matrix");
        let n = self.rows;
        let mut l = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Some(l)
    }

    /// Eigen-decomposition of a symmetric matrix by the cyclic Jacobi method.
    /// Returns eigenvalues in ascending order and the corresponding
    /// orthonormal eigenvectors as matrix columns.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn symmetric_eigen(&self) -> (Vec<f64>, DenseMatrix) {
        assert_eq!(self.rows, self.cols, "eigen requires a square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut v = DenseMatrix::identity(n);
        let max_sweeps = 100;
        for _ in 0..max_sweeps {
            let mut off = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off += a.get(i, j).powi(2);
                }
            }
            if off.sqrt() < 1e-13 * (1.0 + frobenius(&a)) {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a.get(p, q);
                    if apq.abs() < 1e-300 {
                        continue;
                    }
                    let app = a.get(p, p);
                    let aqq = a.get(q, q);
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    // Apply the rotation to A (both sides) and accumulate in V.
                    for k in 0..n {
                        let akp = a.get(k, p);
                        let akq = a.get(k, q);
                        a.set(k, p, c * akp - s * akq);
                        a.set(k, q, s * akp + c * akq);
                    }
                    for k in 0..n {
                        let apk = a.get(p, k);
                        let aqk = a.get(q, k);
                        a.set(p, k, c * apk - s * aqk);
                        a.set(q, k, s * apk + c * aqk);
                    }
                    for k in 0..n {
                        let vkp = v.get(k, p);
                        let vkq = v.get(k, q);
                        v.set(k, p, c * vkp - s * vkq);
                        v.set(k, q, s * vkp + c * vkq);
                    }
                }
            }
        }
        let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (a.get(i, i), i)).collect();
        pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("finite eigenvalues"));
        let eigenvalues: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let mut vectors = DenseMatrix::zeros(n, n);
        for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
            for r in 0..n {
                vectors.set(r, new_col, v.get(r, old_col));
            }
        }
        (eigenvalues, vectors)
    }
}

/// The reusable LU factorization produced by [`DenseMatrix::factor_psd`]:
/// the upper triangle of `lu` holds `U`, the strict lower triangle holds the
/// elimination multipliers, and `pivots[col]` is the row swapped into
/// position `col` during partial pivoting. Solving for a new right-hand side
/// costs `O(n²)` and, via [`FactoredPsd::solve_into`], zero allocations.
#[derive(Debug, Clone, PartialEq)]
pub struct FactoredPsd {
    n: usize,
    lu: Vec<f64>,
    pivots: Vec<usize>,
}

impl FactoredPsd {
    /// The order of the factored matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Solves into a caller-provided buffer without allocating; bit-identical
    /// to [`DenseMatrix::solve_psd`] on the matrix this was factored from.
    ///
    /// # Panics
    ///
    /// Panics if `b` or `out` have the wrong length.
    pub fn solve_into(&self, b: &[f64], out: &mut [f64], zero_mean: bool) {
        let n = self.n;
        assert_eq!(b.len(), n, "dimension mismatch");
        assert_eq!(out.len(), n, "dimension mismatch");
        out.copy_from_slice(b);
        // Replay the recorded row operations on `b` in elimination order.
        for col in 0..n {
            let pivot = self.pivots[col];
            if pivot != col {
                out.swap(col, pivot);
            }
            for r in (col + 1)..n {
                let factor = self.lu[r * n + col];
                if factor == 0.0 {
                    continue;
                }
                out[r] -= factor * out[col];
            }
        }
        // Back substitution against the stored upper triangle.
        for col in (0..n).rev() {
            let mut v = out[col];
            for j in (col + 1)..n {
                v -= self.lu[col * n + j] * out[j];
            }
            out[col] = v / self.lu[col * n + col];
        }
        if zero_mean {
            vector::remove_mean_in_place(out);
        }
    }

    /// Allocating convenience wrapper over [`FactoredPsd::solve_into`].
    pub fn solve(&self, b: &[f64], zero_mean: bool) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        self.solve_into(b, &mut out, zero_mean);
        out
    }
}

fn frobenius(a: &DenseMatrix) -> f64 {
    let mut s = 0.0;
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            s += a.get(i, j).powi(2);
        }
    }
    s.sqrt()
}

/// The extreme generalized eigenvalues `(λ_min, λ_max)` of the pencil
/// `A x = λ B x` restricted to the orthogonal complement of `kernel`
/// (pass the all-ones vector for Laplacian pencils, or an empty slice for
/// non-singular pencils). Used to *certify* that a sparsifier satisfies
/// `(1−ε) L_H ≼ L_G ≼ (1+ε) L_H`.
///
/// Both matrices must be symmetric positive semi-definite with the same
/// kernel.
pub fn generalized_extreme_eigenvalues(
    a: &DenseMatrix,
    b: &DenseMatrix,
    kernel: &[f64],
) -> (f64, f64) {
    assert_eq!(a.rows(), b.rows());
    assert_eq!(a.cols(), b.cols());
    let n = a.rows();
    // Build an orthonormal basis of the complement of `kernel` from the
    // eigenvectors of B (which is PSD with the same kernel): eigenvectors with
    // positive eigenvalue span range(B).
    let (evals, evecs) = b.symmetric_eigen();
    let tol = evals.iter().fold(0.0f64, |m, &v| m.max(v.abs())) * 1e-10 + 1e-300;
    let mut basis_cols: Vec<usize> = Vec::new();
    for (i, &lambda) in evals.iter().enumerate() {
        if lambda > tol {
            basis_cols.push(i);
        }
    }
    let _ = kernel;
    let k = basis_cols.len();
    if k == 0 {
        return (0.0, 0.0);
    }
    // Projected matrices A' = Vᵀ A V, B' = Vᵀ B V where V has the selected
    // eigenvectors as columns. B' is diagonal (the positive eigenvalues).
    let mut vmat = DenseMatrix::zeros(n, k);
    for (j, &col) in basis_cols.iter().enumerate() {
        for r in 0..n {
            vmat.set(r, j, evecs.get(r, col));
        }
    }
    let a_proj = vmat.transpose().matmul(&a.matmul(&vmat));
    // C = B'^{-1/2} A' B'^{-1/2}.
    let mut c = DenseMatrix::zeros(k, k);
    for i in 0..k {
        for j in 0..k {
            let scale = (evals[basis_cols[i]] * evals[basis_cols[j]]).sqrt();
            c.set(i, j, a_proj.get(i, j) / scale);
        }
    }
    let (gen_evals, _) = c.symmetric_eigen();
    (gen_evals[0], gen_evals[k - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_and_transpose() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
        assert_eq!(a.matvec_transpose(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
        let at = a.transpose();
        assert_eq!(at.rows(), 3);
        assert_eq!(at.get(2, 1), 6.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[2.0, 1.0]);
        assert_eq!(c.row(1), &[4.0, 3.0]);
    }

    #[test]
    fn solve_random_system() {
        let a = DenseMatrix::from_rows(&[
            vec![2.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 4.0],
        ]);
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.matvec(&x_true);
        let x = a.solve(&b).unwrap();
        assert!(vector::approx_eq(&x, &x_true, 1e-10));
    }

    #[test]
    fn singular_matrix_returns_none() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        assert!(a.solve(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn solve_psd_handles_laplacian_like_singularity() {
        // Laplacian of a path on 3 vertices.
        let l = DenseMatrix::from_rows(&[
            vec![1.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 1.0],
        ]);
        let b = vec![1.0, 0.0, -1.0]; // orthogonal to ones
        let x = l.solve_psd(&b, true).unwrap();
        let lx = l.matvec(&x);
        assert!(vector::approx_eq(&lx, &b, 1e-6));
        assert!(x.iter().sum::<f64>().abs() < 1e-9);
    }

    #[test]
    fn cholesky_reconstructs_spd_matrix() {
        let a = DenseMatrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let l = a.cholesky().unwrap();
        let reconstructed = l.matmul(&l.transpose());
        for i in 0..2 {
            for j in 0..2 {
                assert!((reconstructed.get(i, j) - a.get(i, j)).abs() < 1e-12);
            }
        }
        let not_pd = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(not_pd.cholesky().is_none());
    }

    #[test]
    fn jacobi_eigen_diagonalizes_symmetric_matrix() {
        let a = DenseMatrix::from_rows(&[
            vec![2.0, 1.0, 0.0],
            vec![1.0, 2.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ]);
        let (evals, evecs) = a.symmetric_eigen();
        // Known eigenvalues: 2 - sqrt(2), 2, 2 + sqrt(2).
        let expected = [2.0 - 2.0f64.sqrt(), 2.0, 2.0 + 2.0f64.sqrt()];
        for (have, want) in evals.iter().zip(expected) {
            assert!((have - want).abs() < 1e-9, "have {have}, want {want}");
        }
        // A v = λ v for each column.
        for c in 0..3 {
            let v: Vec<f64> = (0..3).map(|r| evecs.get(r, c)).collect();
            let av = a.matvec(&v);
            for r in 0..3 {
                assert!((av[r] - evals[c] * v[r]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn generalized_eigenvalues_of_identical_pencils_are_one() {
        let l = DenseMatrix::from_rows(&[
            vec![1.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 1.0],
        ]);
        let (lo, hi) = generalized_extreme_eigenvalues(&l, &l, &[1.0, 1.0, 1.0]);
        assert!((lo - 1.0).abs() < 1e-8);
        assert!((hi - 1.0).abs() < 1e-8);
    }

    #[test]
    fn generalized_eigenvalues_detect_scaling() {
        let l = DenseMatrix::from_rows(&[
            vec![1.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 1.0],
        ]);
        let mut l2 = l.clone();
        for i in 0..3 {
            for j in 0..3 {
                l2.set(i, j, 2.0 * l.get(i, j));
            }
        }
        // Pencil (2L, L): all generalized eigenvalues are 2.
        let (lo, hi) = generalized_extreme_eigenvalues(&l2, &l, &[1.0, 1.0, 1.0]);
        assert!((lo - 2.0).abs() < 1e-8);
        assert!((hi - 2.0).abs() < 1e-8);
    }

    #[test]
    fn factored_psd_is_bit_identical_to_solve_psd() {
        // A pivoting-exercising SPD-ish matrix and a Laplacian (singular,
        // regularized path), several right-hand sides each.
        let cases = [
            DenseMatrix::from_rows(&[
                vec![1e-6, 2.0, 0.0],
                vec![2.0, 3.0, 1.0],
                vec![0.0, 1.0, 4.0],
            ]),
            DenseMatrix::from_rows(&[
                vec![1.0, -1.0, 0.0],
                vec![-1.0, 2.0, -1.0],
                vec![0.0, -1.0, 1.0],
            ]),
        ];
        for a in &cases {
            let factored = a.factor_psd().expect("factorable");
            assert_eq!(factored.n(), 3);
            for (b, zero_mean) in [
                (vec![1.0, 0.0, -1.0], true),
                (vec![0.25, -7.5, 3.25], true),
                (vec![1.0, 2.0, 3.0], false),
            ] {
                let direct = a.solve_psd(&b, zero_mean).expect("solvable");
                let mut replayed = vec![f64::NAN; 3];
                factored.solve_into(&b, &mut replayed, zero_mean);
                assert_eq!(replayed, direct, "solve_into must be bit-identical");
                assert_eq!(factored.solve(&b, zero_mean), direct);
            }
        }
    }

    #[test]
    fn factor_psd_rejects_singular_after_regularization() {
        // A huge off-diagonal with zero diagonal stays singular relative to
        // the tiny λ regularization? No — pivoting handles it. Use the
        // genuinely unsalvageable all-zero matrix instead.
        let zero = DenseMatrix::zeros(2, 2);
        // λ = max(scale, 1)·1e-12 = 1e-12 ≥ 1e-300, so this *does* factor;
        // confirm it matches solve_psd rather than diverging.
        match (zero.factor_psd(), zero.solve_psd(&[1.0, 2.0], false)) {
            (Some(f), Some(x)) => assert_eq!(f.solve(&[1.0, 2.0], false), x),
            (None, None) => {}
            (f, x) => panic!("factor/solve disagree: {:?} vs {:?}", f.is_some(), x),
        }
    }

    #[test]
    fn diag_builder() {
        let d = DenseMatrix::diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.get(1, 1), 2.0);
        assert_eq!(d.get(0, 1), 0.0);
        assert_eq!(d.matvec(&[1.0, 1.0, 1.0]), vec![1.0, 2.0, 3.0]);
    }
}
