//! Compressed sparse row (CSR) matrices.
//!
//! Sparse matrices back the constraint matrices of the LP solver
//! (`A = [B | I | −I | −e_t]ᵀ` in Section 5) and the sparsifier Laplacians.
//! Only the operations the algorithms need are provided: construction from
//! triplets, matrix–vector products (plain and transposed), row access,
//! diagonal scaling and Gram-matrix assembly.

use crate::dense::DenseMatrix;

/// A sparse matrix in compressed sparse row format.
///
/// # Examples
///
/// ```
/// use bcc_linalg::CsrMatrix;
///
/// // [[2, 0], [0, 3]]
/// let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 3.0)]);
/// assert_eq!(m.matvec(&[1.0, 1.0]), vec![2.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from COO triplets; duplicate entries are summed.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        // Two-pass counting-sort build: count entries per row, prefix-sum
        // into row offsets, then scatter every triplet into its row segment
        // — O(nnz) with one flat staging array instead of a `Vec<Vec<_>>`.
        let mut indptr = vec![0usize; rows + 1];
        for &(r, c, _) in triplets {
            assert!(r < rows && c < cols, "triplet index out of range");
            indptr[r + 1] += 1;
        }
        for r in 0..rows {
            indptr[r + 1] += indptr[r];
        }
        // Stage `(column, arrival sequence, value)` per row. The sequence
        // tag makes the per-row sort a total order, so an unstable sort
        // reproduces the stable sort of the old builder exactly — duplicate
        // columns keep their triplet order and thus sum in the same
        // floating-point order.
        let mut staged: Vec<(usize, usize, f64)> = vec![(0, 0, 0.0); triplets.len()];
        let mut cursor = indptr.clone();
        for (seq, &(r, c, v)) in triplets.iter().enumerate() {
            staged[cursor[r]] = (c, seq, v);
            cursor[r] += 1;
        }
        let mut indices = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        let mut dedup_indptr = Vec::with_capacity(rows + 1);
        dedup_indptr.push(0);
        for r in 0..rows {
            let row = &mut staged[indptr[r]..indptr[r + 1]];
            row.sort_unstable_by_key(|&(c, seq, _)| (c, seq));
            let mut last_col = usize::MAX;
            for &(c, _, v) in row.iter() {
                if c == last_col {
                    let n = values.len();
                    values[n - 1] += v;
                } else {
                    indices.push(c);
                    values.push(v);
                    last_col = c;
                }
            }
            dedup_indptr.push(indices.len());
        }
        CsrMatrix {
            rows,
            cols,
            indptr: dedup_indptr,
            indices,
            values,
        }
    }

    /// An `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let triplets: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, i, 1.0)).collect();
        CsrMatrix::from_triplets(n, n, &triplets)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The non-zero entries of row `r` as `(column, value)` pairs.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let start = self.indptr[r];
        let end = self.indptr[r + 1];
        self.indices[start..end]
            .iter()
            .copied()
            .zip(self.values[start..end].iter().copied())
    }

    /// Matrix–vector product `A x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(x, &mut out);
        out
    }

    /// Matrix–vector product `A x` written into a caller-provided buffer of
    /// length [`CsrMatrix::rows`] — allocation-free, bit-identical to
    /// [`CsrMatrix::matvec`].
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        assert_eq!(out.len(), self.rows, "output dimension mismatch");
        for (r, slot) in out.iter_mut().enumerate() {
            *slot = self.row(r).map(|(c, v)| v * x[c]).sum();
        }
    }

    /// Transposed matrix–vector product `Aᵀ y`.
    pub fn matvec_transpose(&self, y: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        self.matvec_transpose_into(y, &mut out);
        out
    }

    /// Transposed matrix–vector product `Aᵀ y` written into a
    /// caller-provided buffer of length [`CsrMatrix::cols`] —
    /// allocation-free, bit-identical to [`CsrMatrix::matvec_transpose`].
    pub fn matvec_transpose_into(&self, y: &[f64], out: &mut [f64]) {
        assert_eq!(y.len(), self.rows, "dimension mismatch");
        assert_eq!(out.len(), self.cols, "output dimension mismatch");
        out.fill(0.0);
        for r in 0..self.rows {
            let yr = y[r];
            if yr == 0.0 {
                continue;
            }
            for (c, v) in self.row(r) {
                out[c] += v * yr;
            }
        }
    }

    /// Returns a new matrix `D A` where `D = diag(d)` scales the rows.
    pub fn scale_rows(&self, d: &[f64]) -> CsrMatrix {
        assert_eq!(d.len(), self.rows, "dimension mismatch");
        let mut out = self.clone();
        for r in 0..self.rows {
            for k in self.indptr[r]..self.indptr[r + 1] {
                out.values[k] *= d[r];
            }
        }
        out
    }

    /// Assembles the Gram matrix `Aᵀ D A` (size `cols × cols`) as a dense
    /// matrix, where `D = diag(d)`. Used for local solves of the projected
    /// systems inside the LP solver; the result is small (`n × n`) even when
    /// `A` has many rows.
    pub fn gram_with_diagonal(&self, d: &[f64]) -> DenseMatrix {
        assert_eq!(d.len(), self.rows, "dimension mismatch");
        let mut out = DenseMatrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let dr = d[r];
            if dr == 0.0 {
                continue;
            }
            let entries: Vec<(usize, f64)> = self.row(r).collect();
            for &(ci, vi) in &entries {
                for &(cj, vj) in &entries {
                    out.add_to(ci, cj, dr * vi * vj);
                }
            }
        }
        out
    }

    /// Converts to a dense matrix (tests and small ground-truth computations).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                out.add_to(r, c, v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[1, 0, 2],
        //  [0, 3, 0]]
        CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)])
    }

    #[test]
    fn construction_and_access() {
        let m = sample();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.nnz(), 3);
        let row0: Vec<_> = m.row(0).collect();
        assert_eq!(row0, vec![(0, 1.0), (2, 2.0)]);
    }

    #[test]
    fn duplicate_triplets_are_summed() {
        let m = CsrMatrix::from_triplets(1, 1, &[(0, 0, 1.0), (0, 0, 2.5)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.matvec(&[1.0]), vec![3.5]);
    }

    #[test]
    fn matvec_and_transpose_agree_with_dense() {
        let m = sample();
        let d = m.to_dense();
        let x = vec![1.0, -1.0, 0.5];
        assert_eq!(m.matvec(&x), d.matvec(&x));
        let y = vec![2.0, -3.0];
        assert_eq!(m.matvec_transpose(&y), d.matvec_transpose(&y));
    }

    #[test]
    fn scale_rows_multiplies_by_diagonal() {
        let m = sample().scale_rows(&[2.0, 10.0]);
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 30.0]);
    }

    #[test]
    fn gram_matrix_matches_dense_computation() {
        let m = sample();
        let d = vec![2.0, 5.0];
        let gram = m.gram_with_diagonal(&d);
        // Aᵀ D A computed densely.
        let dense = m.to_dense();
        let dmat = DenseMatrix::diag(&d);
        let expected = dense.transpose().matmul(&dmat.matmul(&dense));
        for i in 0..3 {
            for j in 0..3 {
                assert!((gram.get(i, j) - expected.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn identity_is_identity() {
        let id = CsrMatrix::identity(4);
        assert_eq!(id.matvec(&[1.0, 2.0, 3.0, 4.0]), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(id.nnz(), 4);
    }

    #[test]
    #[should_panic]
    fn out_of_range_triplets_rejected() {
        CsrMatrix::from_triplets(1, 1, &[(1, 0, 1.0)]);
    }

    /// The old per-row `Vec<Vec<_>>` builder (stable sort + adjacent
    /// duplicate summing), kept as the semantic reference for the
    /// counting-sort build.
    fn reference_from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> CsrMatrix {
        let mut per_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); rows];
        for &(r, c, v) in triplets {
            assert!(r < rows && c < cols, "triplet index out of range");
            per_row[r].push((c, v));
        }
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for row in &mut per_row {
            row.sort_by_key(|&(c, _)| c);
            let mut last_col = usize::MAX;
            for &(c, v) in row.iter() {
                if c == last_col {
                    let n = values.len();
                    values[n - 1] += v;
                } else {
                    indices.push(c);
                    values.push(v);
                    last_col = c;
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    #[test]
    fn counting_sort_build_is_bit_identical_to_the_reference_builder() {
        // Unsorted columns, interleaved rows, duplicate columns whose values
        // do not sum associatively — `(0.1 + 0.2) + 0.3 != 0.1 + (0.2 +
        // 0.3)` in f64 — so any change to the duplicate-summing order would
        // show up as a bit difference.
        let triplets = [
            (1, 2, 0.1),
            (0, 1, 1.0),
            (1, 2, 0.2),
            (0, 0, -2.5),
            (1, 0, 4.0),
            (1, 2, 0.3),
            (0, 1, 0.25),
            (2, 3, 1e-17),
            (2, 3, 1.0),
            (2, 3, -1.0),
        ];
        let fast = CsrMatrix::from_triplets(3, 4, &triplets);
        let reference = reference_from_triplets(3, 4, &triplets);
        assert_eq!(fast, reference);
    }

    #[test]
    fn matvec_into_matches_matvec_bitwise() {
        let m = sample();
        let x = vec![0.1, -0.7, 2.5];
        let mut out = vec![f64::NAN; 2];
        m.matvec_into(&x, &mut out);
        assert_eq!(out, m.matvec(&x));
        let y = vec![1.5, -2.5];
        let mut out_t = vec![f64::NAN; 3];
        m.matvec_transpose_into(&y, &mut out_t);
        assert_eq!(out_t, m.matvec_transpose(&y));
    }
}
