//! Reusable scratch buffers for the iterative solvers.
//!
//! The allocating entry points ([`crate::conjugate_gradient`],
//! [`crate::preconditioned_chebyshev`]) build their work vectors per call.
//! On the serving hot path that is pure overhead: every Chebyshev solve
//! needs the same five `n`-vectors, and a worker solving thousands of
//! right-hand sides on one topology can reuse them verbatim. A
//! [`SolveScratch`] owns that bundle; the `_with` kernel variants
//! ([`crate::cg::conjugate_gradient_with`],
//! [`crate::chebyshev::preconditioned_chebyshev_fixed_with`]) borrow it and
//! leave the solution in [`SolveScratch::x`], performing **zero heap
//! allocations** once the buffers have grown to the instance size.

/// The work-vector bundle of one iterative solve: solution `x`, residual
/// `r`, preconditioned residual `z`, search direction `p` and the operator
/// product `ap`. Reused across solves; buffers grow to the largest `n` seen
/// and are never shrunk implicitly.
#[derive(Debug, Clone, Default)]
pub struct SolveScratch {
    /// The iterate / solution vector.
    pub x: Vec<f64>,
    /// The residual `b − A x`.
    pub r: Vec<f64>,
    /// The preconditioned residual `M⁻¹ r` (aliases `r` for plain CG).
    pub z: Vec<f64>,
    /// The search direction.
    pub p: Vec<f64>,
    /// The operator product `A p`.
    pub ap: Vec<f64>,
}

/// Clears and re-lengthens a buffer to `n` zeros without reallocating when
/// its capacity already suffices.
fn reset_buffer(buffer: &mut Vec<f64>, n: usize) {
    buffer.clear();
    buffer.resize(n, 0.0);
}

impl SolveScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        SolveScratch::default()
    }

    /// A scratch with every buffer pre-sized for dimension `n`, so the first
    /// solve at that size already allocates nothing.
    pub fn with_dimension(n: usize) -> Self {
        let mut scratch = SolveScratch::default();
        scratch.reset(n);
        scratch
    }

    /// Re-lengthens every buffer to `n` zeros. Allocation-free whenever `n`
    /// does not exceed [`SolveScratch::dimension_capacity`].
    pub fn reset(&mut self, n: usize) {
        reset_buffer(&mut self.x, n);
        reset_buffer(&mut self.r, n);
        reset_buffer(&mut self.z, n);
        reset_buffer(&mut self.p, n);
        reset_buffer(&mut self.ap, n);
    }

    /// The largest dimension the scratch can serve without allocating (the
    /// smallest buffer capacity).
    pub fn dimension_capacity(&self) -> usize {
        self.x
            .capacity()
            .min(self.r.capacity())
            .min(self.z.capacity())
            .min(self.p.capacity())
            .min(self.ap.capacity())
    }

    /// Releases all buffer memory (shrink-on-idle for long-lived workers).
    pub fn release(&mut self) {
        self.x = Vec::new();
        self.r = Vec::new();
        self.z = Vec::new();
        self.p = Vec::new();
        self.ap = Vec::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_zeroes_and_grows_to_dimension() {
        let mut scratch = SolveScratch::new();
        scratch.reset(4);
        assert_eq!(scratch.x, vec![0.0; 4]);
        assert_eq!(scratch.ap, vec![0.0; 4]);
        scratch.x[2] = 7.0;
        scratch.reset(4);
        assert_eq!(scratch.x, vec![0.0; 4], "reset clears stale values");
    }

    #[test]
    fn reset_within_capacity_keeps_buffers() {
        let mut scratch = SolveScratch::with_dimension(16);
        let capacity = scratch.dimension_capacity();
        assert!(capacity >= 16);
        scratch.reset(8);
        assert_eq!(scratch.x.len(), 8);
        assert!(scratch.dimension_capacity() >= capacity.min(16));
    }

    #[test]
    fn release_drops_memory() {
        let mut scratch = SolveScratch::with_dimension(32);
        scratch.release();
        assert_eq!(scratch.dimension_capacity(), 0);
    }
}
