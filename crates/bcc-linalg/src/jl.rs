//! Johnson–Lindenstrauss sketches from few shared random bits.
//!
//! Approximating leverage scores (Algorithm 6 / Lemma 4.5) requires a random
//! map `Q ∈ R^{k×m}` with `(1−η)‖x‖₂ ≤ ‖Qx‖₂ ≤ (1+η)‖x‖₂`. The usual
//! Achlioptas construction flips an independent coin per entry — infeasible
//! in the Broadcast Congested Clique because the entry for edge `e` would be
//! sampled by one endpoint and could not be communicated to the other. The
//! paper instead invokes Kane–Nelson \[KN14\]: `O(log(1/δ) log m)` random bits
//! suffice, and those few bits can be sampled by a leader and broadcast.
//!
//! This module implements that pattern: a [`JlSketch`] is generated
//! *deterministically* from a small shared seed (the broadcast bits), so every
//! vertex expands the identical matrix locally. Two expansions are provided —
//! dense Rademacher rows and a sparse Kane–Nelson style expansion with `s`
//! non-zeros per column — both seeded from the same shared bits.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// How the shared bits are expanded into a sketch matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SketchKind {
    /// Dense ±1/√k entries (Achlioptas-style, expanded from the shared seed).
    DenseRademacher,
    /// Sparse Kane–Nelson style: each column has exactly `s` non-zero entries
    /// of value ±1/√s.
    SparseSigned {
        /// Number of non-zeros per column.
        nonzeros_per_column: usize,
    },
}

/// A `k × m` Johnson–Lindenstrauss sketch expanded from a shared seed.
#[derive(Debug, Clone)]
pub struct JlSketch {
    k: usize,
    m: usize,
    /// Column-major sparse representation: for each column, the list of
    /// `(row, value)` pairs.
    columns: Vec<Vec<(usize, f64)>>,
}

impl JlSketch {
    /// Number of rows `k` (the sketch dimension).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of columns `m` (the ambient dimension).
    pub fn m(&self) -> usize {
        self.m
    }

    /// The sketch dimension `k = Θ(log(m)/η²)` required for distortion `η`
    /// with failure probability `1/poly(m)` (Theorem 4.4).
    ///
    /// The leading constant is a laboratory value: the asymptotics are what
    /// the experiments verify.
    pub fn dimension_for(m: usize, eta: f64) -> usize {
        assert!(eta > 0.0 && eta < 1.0, "eta must lie in (0, 1)");
        let m = m.max(2) as f64;
        ((4.0 * m.ln()) / (eta * eta)).ceil() as usize
    }

    /// Number of shared random bits the construction consumes,
    /// `Θ(log²(m))` as in Algorithm 6.
    pub fn shared_bits_needed(m: usize) -> u64 {
        let lg = (m.max(2) as f64).log2().ceil() as u64;
        lg * lg
    }

    /// Expands a sketch from a shared seed. All vertices calling this with the
    /// same arguments obtain the same matrix.
    pub fn from_shared_seed(kind: SketchKind, k: usize, m: usize, shared_seed: u64) -> Self {
        assert!(k >= 1 && m >= 1);
        let mut rng = ChaCha8Rng::seed_from_u64(shared_seed ^ 0x4A4C_5F53_4B45_5443);
        let mut columns = vec![Vec::new(); m];
        match kind {
            SketchKind::DenseRademacher => {
                let scale = 1.0 / (k as f64).sqrt();
                for column in columns.iter_mut() {
                    for row in 0..k {
                        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                        column.push((row, sign * scale));
                    }
                }
            }
            SketchKind::SparseSigned {
                nonzeros_per_column,
            } => {
                let s = nonzeros_per_column.clamp(1, k);
                let scale = 1.0 / (s as f64).sqrt();
                for column in columns.iter_mut() {
                    // Sample s distinct rows.
                    let mut rows: Vec<usize> = (0..k).collect();
                    for i in 0..s {
                        let j = rng.gen_range(i..k);
                        rows.swap(i, j);
                    }
                    for &row in rows.iter().take(s) {
                        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                        column.push((row, sign * scale));
                    }
                    column.sort_by_key(|&(r, _)| r);
                }
            }
        }
        JlSketch { k, m, columns }
    }

    /// Applies the sketch: `Q x ∈ R^k`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.m, "dimension mismatch");
        let mut out = vec![0.0; self.k];
        for (col, entries) in self.columns.iter().enumerate() {
            let xv = x[col];
            if xv == 0.0 {
                continue;
            }
            for &(row, val) in entries {
                out[row] += val * xv;
            }
        }
        out
    }

    /// Applies the transpose: `Qᵀ y ∈ R^m`. Row `j` of `Qᵀ` is column `j` of
    /// `Q`, so vertex-local evaluation only needs the columns of the edges the
    /// vertex knows.
    pub fn apply_transpose(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.k, "dimension mismatch");
        (0..self.m)
            .map(|col| {
                self.columns[col]
                    .iter()
                    .map(|&(row, val)| val * y[row])
                    .sum()
            })
            .collect()
    }

    /// Row `j` of the sketch as a dense vector (`e_jᵀ Q`), used when sketching
    /// matrices row by row.
    pub fn row(&self, j: usize) -> Vec<f64> {
        assert!(j < self.k);
        let mut out = vec![0.0; self.m];
        for (col, entries) in self.columns.iter().enumerate() {
            for &(row, val) in entries {
                if row == j {
                    out[col] = val;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;

    #[test]
    fn same_seed_gives_same_sketch() {
        let a = JlSketch::from_shared_seed(SketchKind::DenseRademacher, 8, 32, 7);
        let b = JlSketch::from_shared_seed(SketchKind::DenseRademacher, 8, 32, 7);
        let c = JlSketch::from_shared_seed(SketchKind::DenseRademacher, 8, 32, 8);
        let x: Vec<f64> = (0..32).map(|i| (i as f64).sin()).collect();
        assert_eq!(a.apply(&x), b.apply(&x));
        assert_ne!(a.apply(&x), c.apply(&x));
    }

    #[test]
    fn sketch_preserves_norms_approximately() {
        let m = 200;
        let eta = 0.5;
        let k = JlSketch::dimension_for(m, eta);
        let sketch = JlSketch::from_shared_seed(SketchKind::DenseRademacher, k, m, 11);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut within = 0;
        let trials = 20;
        for _ in 0..trials {
            let x: Vec<f64> = (0..m).map(|_| rng.gen::<f64>() - 0.5).collect();
            let original = vector::norm2(&x);
            let sketched = vector::norm2(&sketch.apply(&x));
            if sketched >= (1.0 - eta) * original && sketched <= (1.0 + eta) * original {
                within += 1;
            }
        }
        assert!(
            within >= trials - 1,
            "only {within}/{trials} norms preserved"
        );
    }

    #[test]
    fn sparse_sketch_has_expected_sparsity() {
        let sketch = JlSketch::from_shared_seed(
            SketchKind::SparseSigned {
                nonzeros_per_column: 3,
            },
            16,
            40,
            5,
        );
        for col in 0..40 {
            assert_eq!(sketch.columns[col].len(), 3);
        }
        // Sparse sketches also roughly preserve norms.
        let x: Vec<f64> = (0..40).map(|i| ((i * 7) % 11) as f64 - 5.0).collect();
        let ratio = vector::norm2(&sketch.apply(&x)) / vector::norm2(&x);
        assert!(ratio > 0.3 && ratio < 1.9, "ratio = {ratio}");
    }

    #[test]
    fn transpose_is_consistent_with_apply() {
        let sketch = JlSketch::from_shared_seed(SketchKind::DenseRademacher, 6, 15, 2);
        let x: Vec<f64> = (0..15).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..6).map(|i| (i as f64) - 2.0).collect();
        // ⟨Qx, y⟩ = ⟨x, Qᵀy⟩.
        let lhs = vector::dot(&sketch.apply(&x), &y);
        let rhs = vector::dot(&x, &sketch.apply_transpose(&y));
        assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn row_extraction_matches_apply_on_basis_vectors() {
        let sketch = JlSketch::from_shared_seed(SketchKind::DenseRademacher, 4, 9, 13);
        for j in 0..4 {
            let row = sketch.row(j);
            for col in 0..9 {
                let mut e = vec![0.0; 9];
                e[col] = 1.0;
                assert!((sketch.apply(&e)[j] - row[col]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn dimension_and_bits_scale_logarithmically() {
        assert!(JlSketch::dimension_for(1 << 10, 0.5) < JlSketch::dimension_for(1 << 20, 0.5));
        assert!(JlSketch::dimension_for(1 << 10, 0.5) < JlSketch::dimension_for(1 << 10, 0.1));
        assert_eq!(JlSketch::shared_bits_needed(1024), 100);
    }
}
