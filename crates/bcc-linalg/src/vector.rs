//! Dense vector operations.
//!
//! All operations are free functions on `&[f64]` so that the distributed
//! algorithms (where each vertex owns one or a few coordinates) and the
//! centralized ground-truth code can share them.

/// `x + y`.
pub fn add(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "dimension mismatch");
    x.iter().zip(y).map(|(a, b)| a + b).collect()
}

/// `x − y`.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "dimension mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// `α·x`.
pub fn scale(x: &[f64], alpha: f64) -> Vec<f64> {
    x.iter().map(|a| alpha * a).collect()
}

/// In-place `x ← α·x`.
pub fn scale_in_place(x: &mut [f64], alpha: f64) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// In-place `y ← y + α·x`.
pub fn axpy(y: &mut [f64], alpha: f64, x: &[f64]) {
    assert_eq!(x.len(), y.len(), "dimension mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Inner product `⟨x, y⟩`.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dimension mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).max(0.0).sqrt()
}

/// Max norm `‖x‖_∞`.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |acc, v| acc.max(v.abs()))
}

/// 1-norm `‖x‖₁`.
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Weighted Euclidean norm `‖x‖_w = sqrt(Σ_i w_i x_i²)` (Section 4.1).
///
/// # Panics
///
/// Panics if the weights contain negative entries.
pub fn norm_weighted(x: &[f64], w: &[f64]) -> f64 {
    assert_eq!(x.len(), w.len(), "dimension mismatch");
    let s: f64 = x
        .iter()
        .zip(w)
        .map(|(xi, wi)| {
            assert!(*wi >= 0.0, "weights must be non-negative");
            wi * xi * xi
        })
        .sum();
    s.max(0.0).sqrt()
}

/// Mixed norm `‖x‖_{w+1} = ‖x‖_∞ + C_norm·‖x‖_w` (Section 4.1).
pub fn norm_mixed(x: &[f64], w: &[f64], c_norm: f64) -> f64 {
    norm_inf(x) + c_norm * norm_weighted(x, w)
}

/// `M`-norm `‖x‖_M = sqrt(xᵀ M x)` for a matrix given as an `apply` closure.
/// Returns 0 when the quadratic form is (numerically) slightly negative.
pub fn norm_matrix(x: &[f64], apply: impl Fn(&[f64]) -> Vec<f64>) -> f64 {
    dot(x, &apply(x)).max(0.0).sqrt()
}

/// Coordinate-wise product `x ∘ y`.
pub fn hadamard(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "dimension mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).collect()
}

/// Coordinate-wise quotient `x / y`.
///
/// # Panics
///
/// Panics (in debug builds) if a divisor is zero.
pub fn hadamard_div(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "dimension mismatch");
    x.iter()
        .zip(y)
        .map(|(a, b)| {
            debug_assert!(*b != 0.0, "division by zero");
            a / b
        })
        .collect()
}

/// Coordinate-wise application of a scalar function.
pub fn map(x: &[f64], f: impl Fn(f64) -> f64) -> Vec<f64> {
    x.iter().map(|&v| f(v)).collect()
}

/// Coordinate-wise median of three vectors (used by the Lewis-weight fixed
/// point iteration, Algorithm 7).
pub fn median3(a: &[f64], b: &[f64], c: &[f64]) -> Vec<f64> {
    assert!(
        a.len() == b.len() && b.len() == c.len(),
        "dimension mismatch"
    );
    a.iter()
        .zip(b)
        .zip(c)
        .map(|((&x, &y), &z)| median3_scalar(x, y, z))
        .collect()
}

/// Median of three scalars.
pub fn median3_scalar(x: f64, y: f64, z: f64) -> f64 {
    let mut v = [x, y, z];
    v.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("median3 requires comparable values")
    });
    v[1]
}

/// The constant-vector projection `x − mean(x)·1`, i.e. the projection onto
/// the orthogonal complement of the all-ones vector (the Laplacian range).
pub fn remove_mean(x: &[f64]) -> Vec<f64> {
    if x.is_empty() {
        return Vec::new();
    }
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    x.iter().map(|v| v - mean).collect()
}

/// In-place variant of [`remove_mean`]: `x ← x − mean(x)·1`. Same arithmetic
/// (one sum, one subtraction per coordinate), zero allocations.
pub fn remove_mean_in_place(x: &mut [f64]) {
    if x.is_empty() {
        return;
    }
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    for v in x.iter_mut() {
        *v -= mean;
    }
}

/// Returns `true` if `‖x − y‖_∞ ≤ tol`.
pub fn approx_eq(x: &[f64], y: &[f64], tol: f64) -> bool {
    x.len() == y.len() && x.iter().zip(y).all(|(a, b)| (a - b).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_basics() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![4.0, -5.0, 6.0];
        assert_eq!(add(&x, &y), vec![5.0, -3.0, 9.0]);
        assert_eq!(sub(&x, &y), vec![-3.0, 7.0, -3.0]);
        assert_eq!(scale(&x, 2.0), vec![2.0, 4.0, 6.0]);
        assert_eq!(dot(&x, &y), 4.0 - 10.0 + 18.0);
        let mut z = y.clone();
        axpy(&mut z, 2.0, &x);
        assert_eq!(z, vec![6.0, -1.0, 12.0]);
    }

    #[test]
    fn norms() {
        let x = vec![3.0, -4.0];
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm_inf(&x), 4.0);
        assert_eq!(norm1(&x), 7.0);
        let w = vec![1.0, 4.0];
        assert_eq!(norm_weighted(&x, &w), (9.0f64 + 64.0).sqrt());
        assert_eq!(norm_mixed(&x, &w, 2.0), 4.0 + 2.0 * (73.0f64).sqrt());
    }

    #[test]
    #[should_panic]
    fn negative_weights_rejected() {
        norm_weighted(&[1.0], &[-1.0]);
    }

    #[test]
    fn hadamard_ops() {
        let x = vec![2.0, 3.0];
        let y = vec![4.0, 6.0];
        assert_eq!(hadamard(&x, &y), vec![8.0, 18.0]);
        assert_eq!(hadamard_div(&y, &x), vec![2.0, 2.0]);
        assert_eq!(map(&x, |v| v * v), vec![4.0, 9.0]);
    }

    #[test]
    fn median3_is_the_middle_value() {
        for perm in [
            (1.0, 2.0, 3.0),
            (1.0, 3.0, 2.0),
            (2.0, 1.0, 3.0),
            (2.0, 3.0, 1.0),
            (3.0, 1.0, 2.0),
            (3.0, 2.0, 1.0),
        ] {
            assert_eq!(median3_scalar(perm.0, perm.1, perm.2), 2.0, "{perm:?}");
        }
        assert_eq!(median3_scalar(5.0, 5.0, 1.0), 5.0);
        assert_eq!(
            median3(&[1.0, 9.0], &[2.0, 8.0], &[3.0, 7.0]),
            vec![2.0, 8.0]
        );
    }

    #[test]
    fn remove_mean_orthogonal_to_ones() {
        let x = vec![1.0, 2.0, 3.0, 10.0];
        let y = remove_mean(&x);
        assert!(y.iter().sum::<f64>().abs() < 1e-12);
        assert!(remove_mean(&[]).is_empty());
    }

    #[test]
    fn in_place_variants_match_allocating_ones() {
        let x = vec![0.1, -2.75, 33.0, 1e-9];
        let mut scaled = x.clone();
        scale_in_place(&mut scaled, -1.7);
        assert_eq!(scaled, scale(&x, -1.7));
        let mut centered = x.clone();
        remove_mean_in_place(&mut centered);
        assert_eq!(centered, remove_mean(&x));
        let mut empty: Vec<f64> = Vec::new();
        remove_mean_in_place(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn approx_eq_tolerance() {
        assert!(approx_eq(&[1.0, 2.0], &[1.0 + 1e-9, 2.0], 1e-8));
        assert!(!approx_eq(&[1.0, 2.0], &[1.1, 2.0], 1e-8));
        assert!(!approx_eq(&[1.0], &[1.0, 2.0], 1e-8));
    }

    #[test]
    fn matrix_norm_uses_apply() {
        // M = diag(1, 4).
        let apply = |x: &[f64]| vec![x[0], 4.0 * x[1]];
        assert_eq!(norm_matrix(&[3.0, 1.0], apply), (9.0f64 + 4.0).sqrt());
    }
}
