//! Preconditioned Chebyshev iteration (Theorem 2.3 of the paper).
//!
//! Given symmetric positive semi-definite `A ≼ B ≼ κ A`, the iteration
//! produces `y` with `‖x − y‖_A ≤ ε‖x‖_A` (for `A x = b`) after
//! `O(√κ · log(1/ε))` iterations, each consisting of one multiplication by
//! `A`, one solve with `B`, and a constant number of vector operations —
//! exactly the primitive mix the Broadcast Congested Clique Laplacian solver
//! charges rounds for (Corollary 2.4 uses `B = (1 + 1/2)·L_H` and `κ = 3`).

use crate::scratch::SolveScratch;
use crate::vector;

/// Result of a preconditioned Chebyshev solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ChebyshevSolve {
    /// The computed approximate solution `y`.
    pub solution: Vec<f64>,
    /// Number of iterations performed (each is one `A`-multiply and one
    /// `B`-solve).
    pub iterations: usize,
    /// Final Euclidean residual norm `‖b − A y‖₂` (diagnostic only; the
    /// guarantee of Theorem 2.3 is stated in the `A`-norm).
    pub residual_norm: f64,
}

/// The statistics of a scratch-based Chebyshev solve
/// ([`preconditioned_chebyshev_fixed_with`]); the solution itself stays in
/// [`SolveScratch::x`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChebyshevStats {
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final Euclidean residual norm `‖b − A y‖₂`.
    pub residual_norm: f64,
}

/// Number of iterations Theorem 2.3 prescribes: `⌈√κ · ln(2/ε)⌉ + 1`.
pub fn chebyshev_iteration_count(kappa: f64, epsilon: f64) -> usize {
    assert!(kappa >= 1.0, "kappa must be at least 1");
    assert!(
        epsilon > 0.0 && epsilon <= 0.5,
        "epsilon must lie in (0, 1/2]"
    );
    (kappa.sqrt() * (2.0 / epsilon).ln()).ceil() as usize + 1
}

/// Preconditioned Chebyshev iteration for `A x = b` with preconditioner `B`
/// satisfying `A ≼ B ≼ κ A`.
///
/// * `apply_a` — `x ↦ A x`.
/// * `solve_b` — `r ↦ B⁻¹ r` (an exact or high-precision solve).
/// * `kappa` — the relative condition number bound `κ`.
/// * `epsilon` — target accuracy in the `A`-norm, in `(0, 1/2]`.
///
/// The eigenvalues of `B⁻¹A` lie in `[1/κ, 1]`, which is the interval the
/// Chebyshev recurrence is tuned to.
pub fn preconditioned_chebyshev(
    apply_a: impl Fn(&[f64]) -> Vec<f64>,
    solve_b: impl Fn(&[f64]) -> Vec<f64>,
    kappa: f64,
    b: &[f64],
    epsilon: f64,
) -> ChebyshevSolve {
    let iterations = chebyshev_iteration_count(kappa, epsilon);
    preconditioned_chebyshev_fixed(apply_a, solve_b, kappa, b, iterations)
}

/// The same iteration with an explicit iteration count (used by experiments
/// that sweep the iteration budget).
pub fn preconditioned_chebyshev_fixed(
    apply_a: impl Fn(&[f64]) -> Vec<f64>,
    solve_b: impl Fn(&[f64]) -> Vec<f64>,
    kappa: f64,
    b: &[f64],
    iterations: usize,
) -> ChebyshevSolve {
    let mut scratch = SolveScratch::new();
    let stats = preconditioned_chebyshev_fixed_with(
        |x, out: &mut [f64]| out.copy_from_slice(&apply_a(x)),
        |r, out: &mut [f64]| out.copy_from_slice(&solve_b(r)),
        kappa,
        b,
        iterations,
        &mut scratch,
    );
    ChebyshevSolve {
        solution: std::mem::take(&mut scratch.x),
        iterations: stats.iterations,
        residual_norm: stats.residual_norm,
    }
}

/// The same iteration over caller-provided [`SolveScratch`] buffers and
/// writer-style operators: `apply_a(x, out)` stores `A x` in `out`,
/// `solve_b(r, out)` stores `B⁻¹ r`. The solution is left in
/// [`SolveScratch::x`]; a warm scratch (already grown to dimension
/// `b.len()`) plus allocation-free operators make the whole solve
/// allocation-free. Bit-identical to [`preconditioned_chebyshev_fixed`] —
/// same operation order, same arithmetic.
pub fn preconditioned_chebyshev_fixed_with(
    mut apply_a: impl FnMut(&[f64], &mut [f64]),
    mut solve_b: impl FnMut(&[f64], &mut [f64]),
    kappa: f64,
    b: &[f64],
    iterations: usize,
    scratch: &mut SolveScratch,
) -> ChebyshevStats {
    assert!(kappa >= 1.0, "kappa must be at least 1");
    let n = b.len();
    // Eigenvalue interval of B⁻¹A.
    let lambda_min = 1.0 / kappa;
    let lambda_max = 1.0;
    let theta = 0.5 * (lambda_max + lambda_min);
    let delta = 0.5 * (lambda_max - lambda_min);

    scratch.reset(n);
    let SolveScratch { x, r, z, p, ap } = scratch;
    r.copy_from_slice(b);
    let mut alpha = 0.0;

    for k in 0..iterations {
        solve_b(r, z);
        let beta;
        if k == 0 {
            p.copy_from_slice(z);
            alpha = 1.0 / theta;
        } else {
            beta = (0.5 * delta * alpha).powi(2);
            alpha = 1.0 / (theta - beta / alpha);
            for i in 0..n {
                p[i] = z[i] + beta * p[i];
            }
        }
        vector::axpy(x, alpha, p);
        apply_a(p, ap);
        vector::axpy(r, -alpha, ap);
    }
    ChebyshevStats {
        residual_norm: vector::norm2(r),
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;

    #[test]
    fn iteration_count_grows_with_kappa_and_precision() {
        let base = chebyshev_iteration_count(3.0, 0.5);
        assert!(chebyshev_iteration_count(3.0, 1e-6) > base);
        assert!(chebyshev_iteration_count(100.0, 0.5) > base);
        // O(sqrt(kappa)): quadrupling kappa roughly doubles the count.
        let a = chebyshev_iteration_count(4.0, 1e-6);
        let b = chebyshev_iteration_count(16.0, 1e-6);
        assert!((b as f64) < 2.5 * a as f64);
    }

    #[test]
    #[should_panic]
    fn rejects_epsilon_above_half() {
        let _ = chebyshev_iteration_count(2.0, 0.9);
    }

    #[test]
    fn exact_preconditioner_converges_immediately() {
        let a = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x_true = vec![1.0, -1.0];
        let b = a.matvec(&x_true);
        let solve_a = {
            let a = a.clone();
            move |r: &[f64]| a.solve(r).expect("non-singular")
        };
        let result = preconditioned_chebyshev(|x| a.matvec(x), solve_a, 1.0, &b, 1e-10);
        assert!(vector::approx_eq(&result.solution, &x_true, 1e-6));
    }

    #[test]
    fn spectral_sparsifier_style_preconditioner() {
        // A = SPD matrix, B = A scaled by 1.4 (so A ≼ B ≼ 1.4·A, κ = 1.4... actually
        // B = 1.4 A gives A ≼ B and B ≼ 1.4 A, i.e. κ = 1.4).
        let a = DenseMatrix::from_rows(&[
            vec![3.0, -1.0, 0.0],
            vec![-1.0, 4.0, -1.5],
            vec![0.0, -1.5, 5.0],
        ]);
        let x_true = vec![0.3, -1.2, 2.5];
        let b = a.matvec(&x_true);
        let solve_b = {
            let a = a.clone();
            move |r: &[f64]| {
                let scaled: Vec<f64> = r.iter().map(|v| v / 1.4).collect();
                a.solve(&scaled).expect("non-singular")
            }
        };
        let result = preconditioned_chebyshev(|x| a.matvec(x), solve_b, 1.4, &b, 1e-8);
        assert!(vector::approx_eq(&result.solution, &x_true, 1e-5));
        let err = vector::sub(&result.solution, &x_true);
        let err_a = vector::norm_matrix(&err, |v| a.matvec(v));
        let x_a = vector::norm_matrix(&x_true, |v| a.matvec(v));
        assert!(err_a <= 1e-8 * x_a * 10.0, "A-norm error {err_a} too large");
    }

    #[test]
    fn kappa_three_matches_corollary_2_4_setting() {
        // Simulate the Laplacian-solver setting: B = 1.5·A, κ = 3.
        let a = DenseMatrix::from_rows(&[
            vec![2.0, -1.0, -1.0],
            vec![-1.0, 2.0, -1.0],
            vec![-1.0, -1.0, 2.0],
        ]);
        // Work orthogonal to the kernel (ones vector).
        let b = vec![1.0, -0.5, -0.5];
        let solve_b = {
            let a = a.clone();
            move |r: &[f64]| {
                let scaled: Vec<f64> = r.iter().map(|v| v / 1.5).collect();
                a.solve_psd(&scaled, true).expect("solvable")
            }
        };
        let result = preconditioned_chebyshev(|x| a.matvec(x), solve_b, 3.0, &b, 1e-6);
        let lx = a.matvec(&result.solution);
        assert!(vector::approx_eq(&lx, &b, 1e-4));
    }

    #[test]
    fn error_decreases_with_more_iterations() {
        let a = DenseMatrix::from_rows(&[vec![5.0, 1.0], vec![1.0, 2.0]]);
        let b = vec![1.0, 1.0];
        // Weak preconditioner B = 6·I: the eigenvalues of A lie in [1.7, 5.3],
        // so A ≼ B ≼ 10·A holds and the eigenvalues of B⁻¹A lie in [1/10, 1].
        let solve_b = |r: &[f64]| r.iter().map(|v| v / 6.0).collect::<Vec<f64>>();
        let few = preconditioned_chebyshev_fixed(|x| a.matvec(x), solve_b, 10.0, &b, 3);
        let many = preconditioned_chebyshev_fixed(|x| a.matvec(x), solve_b, 10.0, &b, 30);
        assert!(many.residual_norm < few.residual_norm);
    }
}
