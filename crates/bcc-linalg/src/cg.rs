//! Conjugate gradient solvers.
//!
//! CG is used in two places: as the local (free) solver a vertex applies to
//! the sparsifier Laplacian it knows entirely, and as a centralized baseline
//! in the experiments. Operators are passed as closures so graph Laplacians
//! can stay matrix-free.

use crate::scratch::SolveScratch;
use crate::vector;

/// Outcome of an iterative solve.
#[derive(Debug, Clone, PartialEq)]
pub struct IterativeSolve {
    /// The computed solution.
    pub solution: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final residual norm `‖b − A x‖₂`.
    pub residual_norm: f64,
    /// Whether the tolerance was reached within the iteration budget.
    pub converged: bool,
}

/// The statistics of a scratch-based solve ([`conjugate_gradient_with`]);
/// the solution itself stays in [`SolveScratch::x`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterativeStats {
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final residual norm `‖b − A x‖₂`.
    pub residual_norm: f64,
    /// Whether the tolerance was reached within the iteration budget.
    pub converged: bool,
}

/// Solves `A x = b` for a symmetric positive semi-definite operator `A` using
/// (optionally preconditioned) conjugate gradients.
///
/// * `apply_a` — the operator `x ↦ A x`.
/// * `precond` — an optional preconditioner `r ↦ M⁻¹ r`; pass `None` for
///   plain CG.
/// * `tolerance` — relative residual target `‖b − A x‖₂ ≤ tolerance·‖b‖₂`.
///
/// For singular PSD systems (Laplacians) the right-hand side must lie in the
/// range of `A`; the caller typically removes the mean from `b` first.
pub fn conjugate_gradient(
    apply_a: impl Fn(&[f64]) -> Vec<f64>,
    b: &[f64],
    precond: Option<&dyn Fn(&[f64]) -> Vec<f64>>,
    tolerance: f64,
    max_iterations: usize,
) -> IterativeSolve {
    let mut scratch = SolveScratch::new();
    let mut precond_into = precond.map(|m| {
        move |r: &[f64], z: &mut [f64]| {
            z.copy_from_slice(&m(r));
        }
    });
    let stats = conjugate_gradient_with(
        |x, out: &mut [f64]| out.copy_from_slice(&apply_a(x)),
        b,
        precond_into
            .as_mut()
            .map(|m| m as &mut dyn FnMut(&[f64], &mut [f64])),
        tolerance,
        max_iterations,
        &mut scratch,
    );
    IterativeSolve {
        solution: std::mem::take(&mut scratch.x),
        iterations: stats.iterations,
        residual_norm: stats.residual_norm,
        converged: stats.converged,
    }
}

/// The same iteration over caller-provided [`SolveScratch`] buffers and
/// writer-style operators: `apply_a(x, out)` stores `A x` in `out`,
/// `precond` (when given) stores `M⁻¹ r`. The solution is left in
/// [`SolveScratch::x`]; a warm scratch (already grown to dimension
/// `b.len()`) makes the whole solve allocation-free. Bit-identical to
/// [`conjugate_gradient`] — same operation order, same arithmetic.
pub fn conjugate_gradient_with(
    mut apply_a: impl FnMut(&[f64], &mut [f64]),
    b: &[f64],
    mut precond: Option<&mut dyn FnMut(&[f64], &mut [f64])>,
    tolerance: f64,
    max_iterations: usize,
    scratch: &mut SolveScratch,
) -> IterativeStats {
    let n = b.len();
    scratch.reset(n);
    let SolveScratch { x, r, z, p, ap } = scratch;
    r.copy_from_slice(b);
    let b_norm = vector::norm2(b).max(1e-300);
    match precond.as_deref_mut() {
        Some(m) => m(r, z),
        None => z.copy_from_slice(r),
    }
    p.copy_from_slice(z);
    let mut rz = vector::dot(r, z);
    let mut iterations = 0;
    let mut residual_norm = vector::norm2(r);
    while iterations < max_iterations && residual_norm > tolerance * b_norm {
        apply_a(p, ap);
        let pap = vector::dot(p, ap);
        if pap.abs() < 1e-300 {
            break;
        }
        let alpha = rz / pap;
        vector::axpy(x, alpha, p);
        vector::axpy(r, -alpha, ap);
        match precond.as_deref_mut() {
            Some(m) => m(r, z),
            None => z.copy_from_slice(r),
        }
        let rz_new = vector::dot(r, z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
        residual_norm = vector::norm2(r);
        iterations += 1;
    }
    IterativeStats {
        converged: residual_norm <= tolerance * b_norm,
        iterations,
        residual_norm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;

    #[test]
    fn solves_small_spd_system() {
        let a = DenseMatrix::from_rows(&[
            vec![4.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 5.0],
        ]);
        let x_true = vec![1.0, 2.0, -1.0];
        let b = a.matvec(&x_true);
        let result = conjugate_gradient(|x| a.matvec(x), &b, None, 1e-12, 100);
        assert!(result.converged);
        assert!(vector::approx_eq(&result.solution, &x_true, 1e-8));
    }

    #[test]
    fn preconditioning_reduces_iterations() {
        // Badly scaled diagonal system.
        let n = 50;
        let diag: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 100.0).collect();
        let apply = |x: &[f64]| -> Vec<f64> { x.iter().zip(&diag).map(|(a, d)| a * d).collect() };
        let b = vec![1.0; n];
        let plain = conjugate_gradient(apply, &b, None, 1e-10, 1000);
        let jacobi = |r: &[f64]| -> Vec<f64> { r.iter().zip(&diag).map(|(a, d)| a / d).collect() };
        let preconditioned = conjugate_gradient(apply, &b, Some(&jacobi), 1e-10, 1000);
        assert!(preconditioned.converged);
        assert!(plain.converged);
        assert!(preconditioned.iterations <= plain.iterations);
        assert!(preconditioned.iterations <= 3);
    }

    #[test]
    fn singular_laplacian_system_with_compatible_rhs() {
        // Path Laplacian on 3 vertices; b orthogonal to ones.
        let l = DenseMatrix::from_rows(&[
            vec![1.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 1.0],
        ]);
        let b = vec![1.0, 0.0, -1.0];
        let result = conjugate_gradient(|x| l.matvec(x), &b, None, 1e-12, 50);
        assert!(result.converged);
        let lx = l.matvec(&result.solution);
        assert!(vector::approx_eq(&lx, &b, 1e-8));
    }

    #[test]
    fn zero_rhs_returns_zero_immediately() {
        let result = conjugate_gradient(|x| x.to_vec(), &[0.0, 0.0], None, 1e-10, 10);
        assert_eq!(result.solution, vec![0.0, 0.0]);
        assert_eq!(result.iterations, 0);
        assert!(result.converged);
    }

    #[test]
    fn iteration_budget_is_respected() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1e6]]);
        let result = conjugate_gradient(|x| a.matvec(x), &[1.0, 1.0], None, 1e-14, 1);
        assert_eq!(result.iterations, 1);
    }
}
