//! Spanners with probabilistic edges (Section 3.1 of the paper).
//!
//! `Spanner(V, E, w, p, k)` computes a subset `F ⊆ E`, split into `F⁺ ⊎ F⁻`,
//! such that every edge of `F` was *sampled*: it survives (joins `F⁺`) with
//! its maintained probability `p_e`, independently, and otherwise joins `F⁻`.
//! The graph `S = (V, F⁺)` is a `(2k−1)`-spanner of `(V, F⁺ ∪ E'')` for every
//! `E'' ⊆ E∖F` (Lemma 3.1).
//!
//! The algorithm is the Baswana–Sen clustering (Appendix A) with the paper's
//! modification: whenever a vertex would use an edge, the edge's existence is
//! sampled *on the fly* by that vertex inside the [`mod@crate::connect`]
//! procedure, and the opposite endpoint deduces the outcome from the
//! subsequent broadcast (the [`crate::connect::deduce_fate`] rule) — no
//! explicit communication of negative samples is ever needed, which is what
//! makes the algorithm implementable under the broadcast constraint.
//!
//! ### Simulation fidelity
//!
//! The driver below keeps the cluster memberships and mark bits in plain
//! arrays. This is faithful: every cluster change and every mark bit is
//! broadcast by the algorithm (and charged below), so each vertex's local
//! knowledge coincides with those arrays. Edge existence, on the other hand,
//! is *never* centralised: it is decided by exactly one endpoint inside
//! `Connect` and propagated only through the deduction rule, exactly as in
//! the paper.

use std::collections::{BTreeMap, BTreeSet};

use bcc_graph::Graph;
use bcc_runtime::{ceil_log2, payload, Network};
use rand::Rng;

use crate::connect::{connect, Candidate};

/// Parameters of one spanner computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpannerParams {
    /// Stretch parameter `k ≥ 1`; the produced spanner has stretch `2k − 1`.
    pub k: usize,
    /// Master seed for the private randomness of the vertices.
    pub seed: u64,
}

/// Output of [`probabilistic_spanner`]: `F = F⁺ ⊎ F⁻` as index sets into the
/// master graph, plus the orientation information of Lemma 3.1.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpannerOutput {
    /// Edges that exist and belong to the spanner (`F⁺`).
    pub f_plus: Vec<usize>,
    /// Edges that were sampled out (`F⁻`).
    pub f_minus: Vec<usize>,
    /// For every `F⁺` edge, the vertex that added it (the tail of the
    /// orientation used to bound out-degrees).
    pub added_by: BTreeMap<usize, usize>,
}

impl SpannerOutput {
    /// Out-degree of every vertex under the orientation "edges point away
    /// from the vertex that added them".
    pub fn out_degrees(&self, n: usize) -> Vec<usize> {
        let mut deg = vec![0; n];
        for &v in self.added_by.values() {
            deg[v] += 1;
        }
        deg
    }
}

/// Internal per-call state of the spanner computation.
struct SpannerState<'a> {
    graph: &'a Graph,
    weights: &'a [f64],
    active: Vec<bool>,
    /// `F⁻` membership per edge.
    deleted: Vec<bool>,
    /// `F⁺` membership per edge.
    in_spanner: Vec<bool>,
    added_by: BTreeMap<usize, usize>,
    cluster_of: Vec<Option<usize>>,
    k: usize,
    n_pow: f64,
    weight_bits: u64,
}

impl<'a> SpannerState<'a> {
    /// Candidate edges from `v` towards vertices for which `filter` holds,
    /// grouped per neighbor cluster.
    fn candidates_by_cluster(
        &self,
        v: usize,
        p: &[f64],
        mut filter: impl FnMut(usize, usize, f64) -> Option<usize>,
    ) -> BTreeMap<usize, Vec<Candidate>> {
        let mut by_cluster: BTreeMap<usize, Vec<Candidate>> = BTreeMap::new();
        for &e in self.graph.incident_edges(v) {
            if !self.active[e] || self.deleted[e] {
                continue;
            }
            let edge = self.graph.edge(e);
            let u = edge.other(v);
            let w = self.weights[e];
            if let Some(group) = filter(u, e, w) {
                // Edges already known to exist are certain; others carry their
                // maintained probability.
                let probability = if self.in_spanner[e] { 1.0 } else { p[e] };
                by_cluster.entry(group).or_default().push(Candidate {
                    neighbor: u,
                    edge: e,
                    weight: w,
                    probability,
                });
            }
        }
        by_cluster
    }

    fn accept(&mut self, v: usize, candidate: &Candidate) {
        if !self.in_spanner[candidate.edge] {
            self.in_spanner[candidate.edge] = true;
            self.added_by.insert(candidate.edge, v);
        }
    }

    fn reject(&mut self, candidates: &[Candidate]) {
        for c in candidates {
            if !self.in_spanner[c.edge] {
                self.deleted[c.edge] = true;
            }
        }
    }
}

/// Computes a `(2k−1)`-spanner with probabilistic edges in the Broadcast
/// CONGEST model (Section 3.1).
///
/// * `net` — the simulated network the rounds are charged to (its topology
///   should be the communication graph; for this algorithm the communication
///   graph is the input graph itself).
/// * `graph` — the *master* graph; only edges with `active[e] == true`
///   participate.
/// * `weights` — current edge weights (master-indexed; the sparsifier
///   reweights edges between iterations).
/// * `p` — current existence probability of every edge (master-indexed).
/// * `params` — stretch parameter and seed.
///
/// Returns the sampled sets `F⁺`, `F⁻` (Lemma 3.1) and charges
/// `O(k·n^{1/k}·(log n + log W))` rounds (Lemma 3.2) on `net`.
pub fn probabilistic_spanner(
    net: &mut Network,
    graph: &Graph,
    weights: &[f64],
    p: &[f64],
    active: &[bool],
    params: SpannerParams,
) -> SpannerOutput {
    let n = graph.n();
    assert_eq!(weights.len(), graph.m(), "one weight per edge expected");
    assert_eq!(p.len(), graph.m(), "one probability per edge expected");
    assert_eq!(
        active.len(),
        graph.m(),
        "one activity flag per edge expected"
    );
    assert!(params.k >= 1, "k must be at least 1");
    for (idx, &prob) in p.iter().enumerate() {
        assert!(
            (0.0..=1.0).contains(&prob),
            "probability of edge {idx} out of range: {prob}"
        );
    }
    if n == 0 {
        return SpannerOutput::default();
    }

    let max_weight = active
        .iter()
        .zip(weights)
        .filter(|(a, _)| **a)
        .map(|(_, w)| *w)
        .fold(1.0f64, f64::max);
    let weight_bits = u64::from(payload::bits_for_real(max_weight, 1.0));
    let id_bits = u64::from(ceil_log2(n.max(2) as u64));
    // A connection message carries a cluster id, a vertex id and a weight.
    let message_bits = 2 * id_bits + weight_bits + 1;

    let mut state = SpannerState {
        graph,
        weights,
        active: active.to_vec(),
        deleted: vec![false; graph.m()],
        in_spanner: vec![false; graph.m()],
        added_by: BTreeMap::new(),
        cluster_of: (0..n).map(Some).collect(),
        k: params.k,
        n_pow: (n as f64).powf(-1.0 / params.k as f64),
        weight_bits,
    };
    let _ = state.k;
    let _ = state.weight_bits;
    let mut rngs: Vec<_> = (0..n)
        .map(|v| bcc_runtime::vertex_rng(params.seed, v))
        .collect();
    let mut clusters_alive: BTreeSet<usize> = (0..n).collect();

    net.begin_phase("spanner");

    for _phase in 1..params.k {
        // ---- Step 1: cluster marking --------------------------------------
        let marked: BTreeSet<usize> = clusters_alive
            .iter()
            .copied()
            .filter(|&center| rngs[center].gen::<f64>() < state.n_pow)
            .collect();
        // The center broadcasts the mark along the cluster tree (depth ≤ k−1)
        // and every clustered vertex announces (cluster id, mark bit) so that
        // neighbors can classify their incident clusters.
        net.ledger_mut().charge(
            (params.k as u64).saturating_sub(1).max(1),
            n as u64 * id_bits,
        );
        net.share_scalars(id_bits + 1);

        // ---- Step 2: connecting to marked clusters ------------------------
        // The threshold is the (weight, neighbor id) pair of the edge through
        // which `v` joined a marked cluster; step 3 only considers edges that
        // are lexicographically smaller (the Baswana–Sen tie-break).
        let mut w_threshold = vec![(f64::INFINITY, usize::MAX); n];
        let mut next_cluster: Vec<Option<usize>> = state.cluster_of.clone();
        let mut step2_messages = vec![0usize; n];
        for v in 0..n {
            let Some(cluster_v) = state.cluster_of[v] else {
                continue;
            };
            if marked.contains(&cluster_v) {
                continue;
            }
            // Candidates: neighbors lying in marked clusters.
            let cluster_of = state.cluster_of.clone();
            let groups = state.candidates_by_cluster(v, p, |u, _e, _w| {
                cluster_of[u].filter(|c| marked.contains(c)).map(|_| 0usize)
            });
            let candidates = groups.into_values().next().unwrap_or_default();
            step2_messages[v] = 1;
            let outcome = connect(candidates, &mut rngs[v]);
            state.reject(&outcome.rejected);
            match outcome.accepted {
                Some(candidate) => {
                    state.accept(v, &candidate);
                    w_threshold[v] = (candidate.weight, candidate.neighbor);
                    next_cluster[v] = state.cluster_of[candidate.neighbor];
                }
                None => {
                    w_threshold[v] = (f64::INFINITY, usize::MAX);
                    next_cluster[v] = None;
                }
            }
        }
        net.share_varying(&step2_messages, message_bits);

        // ---- Step 3: connections between unmarked clusters ----------------
        for smaller_ids in [true, false] {
            let mut step3_messages = vec![0usize; n];
            for v in 0..n {
                let Some(cluster_v) = state.cluster_of[v] else {
                    continue;
                };
                if marked.contains(&cluster_v) {
                    continue;
                }
                let (threshold_weight, threshold_id) = w_threshold[v];
                let cluster_of = state.cluster_of.clone();
                let groups = state.candidates_by_cluster(v, p, |u, _e, w| {
                    let cu = cluster_of[u]?;
                    if marked.contains(&cu) || cu == cluster_v {
                        return None;
                    }
                    let direction_ok = if smaller_ids {
                        cu < cluster_v
                    } else {
                        cu > cluster_v
                    };
                    // Lexicographically smaller than the marked-cluster
                    // connection (strict, ties broken by neighbor id).
                    let lighter =
                        w < threshold_weight || (w == threshold_weight && u < threshold_id);
                    (direction_ok && lighter).then_some(cu)
                });
                step3_messages[v] = groups.len();
                for (_cluster, candidates) in groups {
                    let outcome = connect(candidates, &mut rngs[v]);
                    state.reject(&outcome.rejected);
                    if let Some(candidate) = outcome.accepted {
                        state.accept(v, &candidate);
                    }
                }
            }
            net.share_varying(&step3_messages, message_bits);
        }

        // ---- End of phase: new clusters take effect ------------------------
        state.cluster_of = next_cluster;
        clusters_alive = marked;
        if clusters_alive.is_empty() {
            // No cluster survived; remaining vertices finish in step 4.
            break;
        }
    }

    // ---- Step 4: connect to the remaining clusters -------------------------
    // 4.1: vertices outside every remaining cluster connect to each
    //      neighboring remaining cluster.
    // 4.2 / 4.3: vertices inside remaining clusters connect to neighboring
    //      remaining clusters with smaller / larger identifiers.
    for (substep, in_cluster, smaller_ids) in [(1, false, false), (2, true, true), (3, true, false)]
    {
        let mut messages = vec![0usize; n];
        for v in 0..n {
            let my_cluster = state.cluster_of[v].filter(|c| clusters_alive.contains(c));
            if in_cluster != my_cluster.is_some() {
                continue;
            }
            let cluster_of = state.cluster_of.clone();
            let groups = state.candidates_by_cluster(v, p, |u, _e, _w| {
                let cu = cluster_of[u]?;
                if !clusters_alive.contains(&cu) {
                    return None;
                }
                match my_cluster {
                    None => Some(cu),
                    Some(mine) => {
                        if cu == mine {
                            return None;
                        }
                        let direction_ok = if smaller_ids { cu < mine } else { cu > mine };
                        direction_ok.then_some(cu)
                    }
                }
            });
            messages[v] = groups.len();
            for (_cluster, candidates) in groups {
                let outcome = connect(candidates, &mut rngs[v]);
                state.reject(&outcome.rejected);
                if let Some(candidate) = outcome.accepted {
                    state.accept(v, &candidate);
                }
            }
        }
        let _ = substep;
        net.share_varying(&messages, message_bits);
    }

    let f_plus: Vec<usize> = (0..graph.m()).filter(|&e| state.in_spanner[e]).collect();
    let f_minus: Vec<usize> = (0..graph.m()).filter(|&e| state.deleted[e]).collect();
    SpannerOutput {
        f_plus,
        f_minus,
        added_by: state.added_by,
    }
}

/// The classical Baswana–Sen `(2k−1)`-spanner (Appendix A): the special case
/// `p ≡ 1`, in which no edge is ever sampled out (`F⁻ = ∅`).
pub fn baswana_sen_spanner(
    net: &mut Network,
    graph: &Graph,
    params: SpannerParams,
) -> SpannerOutput {
    let weights: Vec<f64> = graph.edges().iter().map(|e| e.weight).collect();
    let ones = vec![1.0; graph.m()];
    let active = vec![true; graph.m()];
    probabilistic_spanner(net, graph, &weights, &ones, &active, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_spanner_of;
    use bcc_graph::generators;
    use bcc_runtime::ModelConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn bc_network(g: &Graph) -> Network {
        Network::on_graph(ModelConfig::broadcast_congest(), g.adjacency_lists()).unwrap()
    }

    #[test]
    fn deterministic_spanner_covers_connected_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let g = generators::random_connected(40, 0.2, 16, &mut rng);
        let mut net = bc_network(&g);
        let out = baswana_sen_spanner(&mut net, &g, SpannerParams { k: 3, seed: 99 });
        assert!(out.f_minus.is_empty(), "p = 1 never deletes edges");
        let spanner = g.subgraph(&out.f_plus);
        assert!(spanner.is_connected());
        assert!(is_spanner_of(&spanner, &g, 2 * 3 - 1));
        assert!(net.ledger().total_rounds() > 0);
    }

    #[test]
    fn k_equal_one_returns_whole_graph() {
        let g = generators::complete(6);
        let mut net = bc_network(&g);
        let out = baswana_sen_spanner(&mut net, &g, SpannerParams { k: 1, seed: 1 });
        // Stretch 1 spanner must keep every (unit-weight) edge.
        assert_eq!(out.f_plus.len(), g.m());
    }

    #[test]
    fn spanner_size_shrinks_for_larger_k() {
        let g = generators::complete(40);
        let mut net1 = bc_network(&g);
        let dense = baswana_sen_spanner(&mut net1, &g, SpannerParams { k: 1, seed: 5 });
        let mut net2 = bc_network(&g);
        let sparse = baswana_sen_spanner(&mut net2, &g, SpannerParams { k: 3, seed: 5 });
        assert!(sparse.f_plus.len() < dense.f_plus.len());
        // O(k n^{1+1/k}) for k=3, n=40 is well below the 780 edges of K_40.
        assert!(sparse.f_plus.len() < 600, "got {}", sparse.f_plus.len());
    }

    #[test]
    fn probabilistic_edges_split_into_plus_and_minus() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let g = generators::erdos_renyi(30, 0.4, 8, &mut rng);
        let weights: Vec<f64> = g.edges().iter().map(|e| e.weight).collect();
        let p = vec![0.25; g.m()];
        let active = vec![true; g.m()];
        let mut net = bc_network(&g);
        let out = probabilistic_spanner(
            &mut net,
            &g,
            &weights,
            &p,
            &active,
            SpannerParams { k: 2, seed: 3 },
        );
        // F+ and F- are disjoint subsets of the edges.
        let plus: std::collections::BTreeSet<_> = out.f_plus.iter().collect();
        let minus: std::collections::BTreeSet<_> = out.f_minus.iter().collect();
        assert!(plus.is_disjoint(&minus));
        assert!(!out.f_plus.is_empty());
        assert!(!out.f_minus.is_empty());
        // Every F+ edge has an orientation owner.
        assert_eq!(out.added_by.len(), out.f_plus.len());
    }

    #[test]
    fn spanner_property_holds_relative_to_untouched_edges() {
        // Lemma 3.1: (V, F+) is a (2k-1)-spanner of (V, F+ ∪ E'') for any
        // E'' ⊆ E \ F. Take the maximal E'' = E \ (F+ ∪ F−).
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let g = generators::random_connected(35, 0.3, 4, &mut rng);
        let weights: Vec<f64> = g.edges().iter().map(|e| e.weight).collect();
        let p = vec![0.5; g.m()];
        let active = vec![true; g.m()];
        let k = 3;
        let mut net = bc_network(&g);
        let out = probabilistic_spanner(
            &mut net,
            &g,
            &weights,
            &p,
            &active,
            SpannerParams { k, seed: 21 },
        );
        let touched: std::collections::BTreeSet<usize> = out
            .f_plus
            .iter()
            .chain(out.f_minus.iter())
            .copied()
            .collect();
        let mut reference_edges = out.f_plus.clone();
        reference_edges.extend((0..g.m()).filter(|e| !touched.contains(e)));
        let reference = g.subgraph(&reference_edges);
        let spanner = g.subgraph(&out.f_plus);
        assert!(is_spanner_of(&spanner, &reference, 2 * k - 1));
    }

    #[test]
    fn inactive_edges_are_ignored() {
        let g = generators::complete(8);
        let weights: Vec<f64> = g.edges().iter().map(|e| e.weight).collect();
        let p = vec![1.0; g.m()];
        let mut active = vec![false; g.m()];
        // Activate only a spanning star around vertex 0.
        for &e in g.incident_edges(0) {
            active[e] = true;
        }
        let mut net = bc_network(&g);
        let out = probabilistic_spanner(
            &mut net,
            &g,
            &weights,
            &p,
            &active,
            SpannerParams { k: 2, seed: 7 },
        );
        for e in out.f_plus.iter().chain(out.f_minus.iter()) {
            assert!(active[*e], "edge {e} was not active");
        }
    }

    #[test]
    fn out_degree_orientation_is_reported() {
        let g = generators::complete(20);
        let mut net = bc_network(&g);
        let out = baswana_sen_spanner(&mut net, &g, SpannerParams { k: 2, seed: 2 });
        let deg = out.out_degrees(20);
        assert_eq!(deg.iter().sum::<usize>(), out.f_plus.len());
    }

    #[test]
    fn rounds_are_charged_per_lemma_3_2_shape() {
        // Larger k means more phases but fewer messages per phase; the round
        // count must stay well below m (which a naive "announce every edge"
        // algorithm would need).
        let g = generators::complete(64);
        let mut net = bc_network(&g);
        let _ = baswana_sen_spanner(&mut net, &g, SpannerParams { k: 3, seed: 9 });
        let rounds = net.ledger().total_rounds();
        assert!(rounds > 0);
        assert!(
            rounds < g.m() as u64 / 4,
            "rounds {rounds} should be far below m = {}",
            g.m()
        );
    }
}
