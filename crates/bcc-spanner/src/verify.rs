//! Verification utilities: stretch and size checks used by tests and the
//! experiment harness (these run centrally and are not part of the
//! distributed algorithms).

use bcc_graph::{traversal, Graph};

/// Checks whether `spanner` has stretch at most `alpha` with respect to
/// `reference`: for every edge `(u, v)` of `reference`,
/// `d_spanner(u, v) ≤ alpha · w(u, v)`.
///
/// Checking the inequality on edges is equivalent to checking it on all
/// vertex pairs (the standard spanner argument: concatenate the per-edge
/// detours along a shortest path).
///
/// Both graphs must be on the same vertex set.
pub fn is_spanner_of(spanner: &Graph, reference: &Graph, alpha: usize) -> bool {
    max_stretch(spanner, reference)
        .map(|s| s <= alpha as f64 + 1e-9)
        .unwrap_or(false)
}

/// The maximum multiplicative stretch of `spanner` over the edges of
/// `reference`, or `None` if some edge's endpoints are disconnected in the
/// spanner.
pub fn max_stretch(spanner: &Graph, reference: &Graph) -> Option<f64> {
    assert_eq!(spanner.n(), reference.n(), "vertex sets must agree");
    let n = reference.n();
    // Run Dijkstra in the spanner from every vertex that is an endpoint of
    // some reference edge.
    let mut needed = vec![false; n];
    for e in reference.edges() {
        needed[e.u] = true;
    }
    let mut worst: f64 = 0.0;
    for source in 0..n {
        if !needed[source] {
            continue;
        }
        let dist = traversal::dijkstra(spanner, source);
        for e in reference.edges() {
            if e.u != source {
                continue;
            }
            let d = dist[e.v];
            if !d.is_finite() {
                return None;
            }
            worst = worst.max(d / e.weight);
        }
    }
    Some(worst)
}

/// The Baswana–Sen size bound `O(k · n^{1 + 1/k})`, with an explicit constant
/// used by the experiment harness to compare measured sizes against the
/// theory (Lemma 3.1 states the expectation bound).
pub fn expected_size_bound(n: usize, k: usize, constant: f64) -> f64 {
    constant * k as f64 * (n as f64).powf(1.0 + 1.0 / k as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::generators;

    #[test]
    fn graph_is_a_stretch_one_spanner_of_itself() {
        let g = generators::grid(3, 3);
        assert!(is_spanner_of(&g, &g, 1));
        assert_eq!(max_stretch(&g, &g).unwrap(), 1.0);
    }

    #[test]
    fn spanning_tree_of_cycle_has_stretch_n_minus_one() {
        let g = generators::cycle(6);
        // Remove one edge -> path, stretch of the removed edge is 5.
        let tree = g.subgraph(&(0..5).collect::<Vec<_>>());
        let stretch = max_stretch(&tree, &g).unwrap();
        assert!((stretch - 5.0).abs() < 1e-9);
        assert!(is_spanner_of(&tree, &g, 5));
        assert!(!is_spanner_of(&tree, &g, 4));
    }

    #[test]
    fn disconnected_spanner_is_rejected() {
        let g = generators::path(4);
        let broken = g.subgraph(&[0, 2]); // drops the middle edge
        assert_eq!(max_stretch(&broken, &g), None);
        assert!(!is_spanner_of(&broken, &g, 100));
    }

    #[test]
    fn size_bound_is_monotone_in_n() {
        assert!(expected_size_bound(100, 2, 1.0) > expected_size_bound(50, 2, 1.0));
        assert!(expected_size_bound(100, 2, 1.0) > expected_size_bound(100, 5, 1.0));
    }
}
