//! The `Connect` procedure (Algorithm 2 of the paper).
//!
//! Given the set `N` of candidate neighbors of a vertex `v` (each reachable
//! through an edge that exists with a known probability), `Connect` scans the
//! candidates in increasing order of edge weight (ties broken towards smaller
//! identifiers) and samples each edge in turn: the first edge whose sample
//! succeeds is the connection, every edge sampled *before* it is now known not
//! to exist and is returned in `N⁻`.
//!
//! The crucial property exploited by the paper is that the outcome of the
//! sampling is *deducible by the other endpoint* from the broadcast `v` makes
//! afterwards, so the negative samples never need to be communicated
//! explicitly.

use rand::Rng;

/// A candidate edge considered by [`connect`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The neighboring vertex this edge leads to.
    pub neighbor: usize,
    /// Index of the edge in the working graph.
    pub edge: usize,
    /// Weight of the edge (used for the sort order).
    pub weight: f64,
    /// Probability that the edge still exists.
    pub probability: f64,
}

/// Result of one `Connect` call.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectOutcome {
    /// The accepted candidate, or `None` (the paper's `⊥`) if every sample
    /// failed or the candidate set was empty.
    pub accepted: Option<Candidate>,
    /// Candidates whose samples failed before the accepted one — these edges
    /// are now known not to exist (they join `F⁻`).
    pub rejected: Vec<Candidate>,
}

/// The sort order used by `Connect`: ascending weight, ties broken by the
/// smaller neighbor identifier first.
pub fn candidate_order(a: &Candidate, b: &Candidate) -> std::cmp::Ordering {
    a.weight
        .partial_cmp(&b.weight)
        .expect("edge weights are finite")
        .then(a.neighbor.cmp(&b.neighbor))
}

/// Runs `Connect(N, p)` for one vertex using its private randomness.
///
/// Candidates may be passed in any order; they are sorted internally.
pub fn connect(mut candidates: Vec<Candidate>, rng: &mut impl Rng) -> ConnectOutcome {
    candidates.sort_by(candidate_order);
    let mut rejected = Vec::new();
    for candidate in candidates {
        let r: f64 = rng.gen();
        if r <= candidate.probability {
            return ConnectOutcome {
                accepted: Some(candidate),
                rejected,
            };
        }
        rejected.push(candidate);
    }
    ConnectOutcome {
        accepted: None,
        rejected,
    }
}

/// The deduction rule the *other* endpoint applies after hearing `v`'s
/// broadcast (the three bullet points repeated in steps 2, 3.1, 3.2, 4 of the
/// paper). `my_weight`/`my_id` describe the edge between the listener `u` and
/// the broadcaster, `accepted` is what the broadcaster announced.
///
/// Returns what the listener learns about its own edge to the broadcaster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeFate {
    /// The broadcaster connected through this very edge: it is in the spanner
    /// (`F⁺`).
    InSpanner,
    /// The broadcaster's scan passed over this edge and its sample failed: the
    /// edge does not exist (`F⁻`).
    Deleted,
    /// The broadcaster accepted an edge that precedes this one in the scan
    /// order, so this edge was never sampled; nothing is learned.
    Undecided,
}

/// Applies the implicit-communication deduction rule.
pub fn deduce_fate(my_id: usize, my_weight: f64, accepted: Option<(usize, f64)>) -> EdgeFate {
    match accepted {
        None => EdgeFate::Deleted,
        Some((accepted_id, accepted_weight)) => {
            if accepted_id == my_id {
                EdgeFate::InSpanner
            } else if accepted_weight > my_weight
                || (accepted_weight == my_weight && accepted_id > my_id)
            {
                // The broadcaster scanned me before the accepted edge, so my
                // sample must have failed.
                EdgeFate::Deleted
            } else {
                EdgeFate::Undecided
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cand(neighbor: usize, weight: f64, probability: f64) -> Candidate {
        Candidate {
            neighbor,
            edge: neighbor,
            weight,
            probability,
        }
    }

    #[test]
    fn certain_edges_accept_the_lightest() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let out = connect(
            vec![cand(5, 3.0, 1.0), cand(2, 1.0, 1.0), cand(9, 2.0, 1.0)],
            &mut rng,
        );
        assert_eq!(out.accepted.unwrap().neighbor, 2);
        assert!(out.rejected.is_empty());
    }

    #[test]
    fn ties_break_towards_smaller_id() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let out = connect(vec![cand(7, 1.0, 1.0), cand(3, 1.0, 1.0)], &mut rng);
        assert_eq!(out.accepted.unwrap().neighbor, 3);
    }

    #[test]
    fn empty_candidate_set_returns_bot() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let out = connect(Vec::new(), &mut rng);
        assert_eq!(out.accepted, None);
        assert!(out.rejected.is_empty());
    }

    #[test]
    fn zero_probability_edges_are_all_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let out = connect(vec![cand(1, 1.0, 0.0), cand(2, 2.0, 0.0)], &mut rng);
        assert_eq!(out.accepted, None);
        assert_eq!(out.rejected.len(), 2);
        // Rejections appear in scan order.
        assert_eq!(out.rejected[0].neighbor, 1);
        assert_eq!(out.rejected[1].neighbor, 2);
    }

    #[test]
    fn rejected_prefix_precedes_accepted_edge() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        // First candidate never exists, second always does.
        let out = connect(vec![cand(1, 1.0, 0.0), cand(2, 2.0, 1.0)], &mut rng);
        let accepted = out.accepted.unwrap();
        assert_eq!(accepted.neighbor, 2);
        assert_eq!(out.rejected.len(), 1);
        assert!(candidate_order(&out.rejected[0], &accepted).is_lt());
    }

    #[test]
    fn acceptance_rate_tracks_probability() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let trials = 4000;
        let mut accepted = 0;
        for _ in 0..trials {
            let out = connect(vec![cand(1, 1.0, 0.25)], &mut rng);
            if out.accepted.is_some() {
                accepted += 1;
            }
        }
        let rate = accepted as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.03, "rate = {rate}");
    }

    #[test]
    fn deduction_rules_match_the_paper() {
        // Broadcast named me.
        assert_eq!(deduce_fate(4, 2.0, Some((4, 2.0))), EdgeFate::InSpanner);
        // Broadcast was ⊥.
        assert_eq!(deduce_fate(4, 2.0, None), EdgeFate::Deleted);
        // Accepted edge is heavier: my edge was scanned first and failed.
        assert_eq!(deduce_fate(4, 2.0, Some((9, 3.0))), EdgeFate::Deleted);
        // Equal weight, accepted id larger: my edge was scanned first.
        assert_eq!(deduce_fate(4, 2.0, Some((9, 2.0))), EdgeFate::Deleted);
        // Accepted edge is lighter: my edge was never sampled.
        assert_eq!(deduce_fate(4, 2.0, Some((1, 1.0))), EdgeFate::Undecided);
        // Equal weight, accepted id smaller: never sampled.
        assert_eq!(deduce_fate(4, 2.0, Some((1, 2.0))), EdgeFate::Undecided);
    }
}
