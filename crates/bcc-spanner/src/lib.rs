//! # bcc-spanner
//!
//! Spanner algorithms in the Broadcast CONGEST model for the reproduction of
//! *"The Laplacian Paradigm in the Broadcast Congested Clique"* (Forster &
//! de Vos, PODC 2022):
//!
//! * [`mod@connect`] — the `Connect` sampling procedure (Algorithm 2) and the
//!   implicit-communication deduction rule.
//! * [`probabilistic`] — the `(2k−1)`-spanner with probabilistic edges of
//!   Section 3.1, plus the classical Baswana–Sen special case (`p ≡ 1`,
//!   Appendix A).
//! * [`bundle`] — `t`-bundle spanners (Algorithm 3).
//! * [`verify`] — centralized stretch/size verification used by tests and
//!   experiments.
//!
//! ## Example
//!
//! ```
//! use bcc_graph::generators;
//! use bcc_runtime::{ModelConfig, Network};
//! use bcc_spanner::{baswana_sen_spanner, SpannerParams, verify};
//!
//! let g = generators::complete(16);
//! let mut net = Network::on_graph(ModelConfig::broadcast_congest(), g.adjacency_lists()).unwrap();
//! let out = baswana_sen_spanner(&mut net, &g, SpannerParams { k: 2, seed: 42 });
//! let spanner = g.subgraph(&out.f_plus);
//! assert!(verify::is_spanner_of(&spanner, &g, 3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bundle;
pub mod connect;
pub mod probabilistic;
pub mod verify;

pub use bundle::{bundle_spanner, BundleOutput};
pub use connect::{connect, Candidate, ConnectOutcome, EdgeFate};
pub use probabilistic::{baswana_sen_spanner, probabilistic_spanner, SpannerOutput, SpannerParams};
