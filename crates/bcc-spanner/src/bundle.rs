//! `t`-bundle spanners (Algorithm 3 of the paper).
//!
//! A `t`-bundle spanner of stretch `α` is a union `T = T₁ ∪ ⋯ ∪ T_t` where
//! each `T_i` is an `α`-spanner of `G ∖ (T₁ ∪ ⋯ ∪ T_{i−1})` (Definition 2.2).
//! The sparsification framework of Koutis–Xu needs such bundles because an
//! edge outside a `t`-bundle is "well connected" `t` times over and can be
//! sampled away safely.

use bcc_graph::Graph;
use bcc_runtime::Network;

use crate::probabilistic::{probabilistic_spanner, SpannerOutput, SpannerParams};

/// Output of [`bundle_spanner`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BundleOutput {
    /// `B = ∪ᵢ F⁺ᵢ` — the bundle edges (indices into the master graph).
    pub bundle: Vec<usize>,
    /// `C = ∪ᵢ F⁻ᵢ` — edges sampled out during the bundle construction.
    pub sampled_out: Vec<usize>,
    /// The per-spanner outputs, in construction order.
    pub layers: Vec<SpannerOutput>,
}

/// Computes a `t`-bundle of `(2k−1)`-spanners with probabilistic edges
/// (Algorithm 3): the `i`-th spanner is computed on the active edges minus
/// everything previous spanners returned (both `F⁺` and `F⁻`).
///
/// Rounds are charged on `net` by the underlying spanner calls,
/// `O(t·k·n^{1/k}·(log n + log W))` in total (Lemma 3.2).
pub fn bundle_spanner(
    net: &mut Network,
    graph: &Graph,
    weights: &[f64],
    p: &[f64],
    active: &[bool],
    params: SpannerParams,
    t: usize,
) -> BundleOutput {
    assert!(t >= 1, "a bundle needs at least one spanner");
    let mut remaining = active.to_vec();
    let mut output = BundleOutput::default();
    for layer in 0..t {
        let layer_params = SpannerParams {
            k: params.k,
            // Derive a distinct but reproducible seed per layer.
            seed: params.seed.wrapping_add(0x9E37_79B9 * (layer as u64 + 1)),
        };
        let result = probabilistic_spanner(net, graph, weights, p, &remaining, layer_params);
        for &e in &result.f_plus {
            remaining[e] = false;
            output.bundle.push(e);
        }
        for &e in &result.f_minus {
            remaining[e] = false;
            output.sampled_out.push(e);
        }
        let exhausted = result.f_plus.is_empty() && result.f_minus.is_empty();
        output.layers.push(result);
        if exhausted {
            // No active edges were touched; further layers would be identical.
            break;
        }
    }
    output.bundle.sort_unstable();
    output.sampled_out.sort_unstable();
    output
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_spanner_of;
    use bcc_graph::generators;
    use bcc_runtime::ModelConfig;

    fn bc_network(g: &Graph) -> Network {
        Network::on_graph(ModelConfig::broadcast_congest(), g.adjacency_lists()).unwrap()
    }

    #[test]
    fn bundle_layers_are_disjoint() {
        let g = generators::complete(24);
        let weights: Vec<f64> = g.edges().iter().map(|e| e.weight).collect();
        let ones = vec![1.0; g.m()];
        let active = vec![true; g.m()];
        let mut net = bc_network(&g);
        let out = bundle_spanner(
            &mut net,
            &g,
            &weights,
            &ones,
            &active,
            SpannerParams { k: 2, seed: 4 },
            3,
        );
        let mut seen = std::collections::BTreeSet::new();
        for layer in &out.layers {
            for &e in &layer.f_plus {
                assert!(seen.insert(e), "edge {e} appears in two layers");
            }
        }
        assert_eq!(seen.len(), out.bundle.len());
        assert!(out.sampled_out.is_empty(), "p = 1 never samples out");
    }

    #[test]
    fn each_layer_spans_the_graph_minus_previous_layers() {
        let g = generators::complete(16);
        let weights: Vec<f64> = g.edges().iter().map(|e| e.weight).collect();
        let ones = vec![1.0; g.m()];
        let active = vec![true; g.m()];
        let k = 2;
        let mut net = bc_network(&g);
        let out = bundle_spanner(
            &mut net,
            &g,
            &weights,
            &ones,
            &active,
            SpannerParams { k, seed: 8 },
            2,
        );
        // Layer 1 is a spanner of G.
        let layer1 = g.subgraph(&out.layers[0].f_plus);
        assert!(is_spanner_of(&layer1, &g, 2 * k - 1));
        // Layer 2 is a spanner of G minus layer 1.
        let removed: std::collections::BTreeSet<usize> =
            out.layers[0].f_plus.iter().copied().collect();
        let rest: Vec<usize> = (0..g.m()).filter(|e| !removed.contains(e)).collect();
        let g_minus = g.subgraph(&rest);
        let layer2 = g.subgraph(&out.layers[1].f_plus);
        assert!(is_spanner_of(&layer2, &g_minus, 2 * k - 1));
    }

    #[test]
    fn bundle_stops_early_when_edges_run_out() {
        let g = generators::path(6);
        let weights: Vec<f64> = g.edges().iter().map(|e| e.weight).collect();
        let ones = vec![1.0; g.m()];
        let active = vec![true; g.m()];
        let mut net = bc_network(&g);
        let out = bundle_spanner(
            &mut net,
            &g,
            &weights,
            &ones,
            &active,
            SpannerParams { k: 2, seed: 5 },
            10,
        );
        // A path is its own only spanner; the second layer finds nothing and
        // the loop terminates long before 10 layers.
        assert_eq!(out.bundle.len(), g.m());
        assert!(out.layers.len() <= 3);
    }

    #[test]
    fn bundle_size_grows_with_t() {
        let g = generators::complete(20);
        let weights: Vec<f64> = g.edges().iter().map(|e| e.weight).collect();
        let ones = vec![1.0; g.m()];
        let active = vec![true; g.m()];
        let mut net1 = bc_network(&g);
        let small = bundle_spanner(
            &mut net1,
            &g,
            &weights,
            &ones,
            &active,
            SpannerParams { k: 2, seed: 6 },
            1,
        );
        let mut net2 = bc_network(&g);
        let large = bundle_spanner(
            &mut net2,
            &g,
            &weights,
            &ones,
            &active,
            SpannerParams { k: 2, seed: 6 },
            4,
        );
        assert!(large.bundle.len() > small.bundle.len());
    }
}
